"""Critical-segment extraction from the LP optimum (Section V).

The paper observes that for latch-controlled circuits "the notion of a
critical path is clearly inadequate"; instead the circuit has several
critical combinational delay *segments* whose criticality is "directly
related to associated slack variables in the inequality constraints".
This module reads those slacks (and shadow prices) off a solved SMO
program and chains the critical arcs into segments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.core.constraints import SMOProgram
from repro.errors import LPError
from repro.lp.result import LPResult


@dataclass(frozen=True)
class CriticalArc:
    """A combinational arc whose propagation constraint is binding."""

    src: str
    dst: str
    constraint: str
    dual: float


@dataclass
class CriticalReport:
    """Binding structure at the MLP optimum."""

    arcs: list[CriticalArc] = field(default_factory=list)
    #: maximal chains of critical arcs (each a list of synchronizer names)
    segments: list[list[str]] = field(default_factory=list)
    #: latches whose setup constraint is binding
    critical_setups: list[str] = field(default_factory=list)
    #: binding clock constraints (C1/C2/C3 names)
    critical_clock: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        lines = ["critical segments:"]
        for seg in self.segments:
            lines.append("  " + " -> ".join(seg))
        if self.critical_setups:
            lines.append("binding setups: " + ", ".join(self.critical_setups))
        if self.critical_clock:
            lines.append("binding clock constraints: " + ", ".join(self.critical_clock))
        return "\n".join(lines)


def critical_segments(
    smo: SMOProgram, result: LPResult, tol: float = 1e-7
) -> CriticalReport:
    """Extract critical arcs, segments and binding constraints.

    An arc is critical when its L2R (or FS) row is binding at the optimum.
    Segments are the maximal weakly-connected chains formed by critical
    arcs; they generalize the critical path: several disjoint segments can
    be simultaneously critical, and each typically spans only part of a
    combinational stage (the rest of the slack having been "borrowed").
    """
    if not result.ok:
        raise LPError(f"cannot extract criticality from a {result.status.value} result")

    report = CriticalReport()
    binding = set(result.binding_constraints(tol))

    for name, (src, dst) in smo.arc_of_constraint.items():
        if name in binding:
            report.arcs.append(
                CriticalArc(src, dst, name, result.duals.get(name, 0.0))
            )

    for name in smo.family("L1"):
        if name in binding:
            # L1 names look like "L1[latch]".
            report.critical_setups.append(name[3:-1])
    for tag in ("C1", "C2", "C3"):
        for name in smo.family(tag):
            if name in binding:
                report.critical_clock.append(name)

    g = nx.DiGraph()
    for arc in report.arcs:
        g.add_edge(arc.src, arc.dst)
    for component in nx.weakly_connected_components(g):
        sub = g.subgraph(component)
        # Order the segment by a DFS walk from a source-like node.
        starts = [n for n in sub.nodes if sub.in_degree(n) == 0] or list(sub.nodes)
        order = list(nx.dfs_preorder_nodes(sub, source=starts[0]))
        report.segments.append(order)
    report.segments.sort(key=len, reverse=True)
    return report
