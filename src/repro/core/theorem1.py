"""An executable rendition of the paper's Theorem 1 proof (Section IV).

The proof of ``Tc*(P1) = Tc*(P2)`` constructs an *augmented* problem P3:
starting from a P2 optimum, wherever a departure variable floats above the
value the nonlinear constraints L2 dictate, an equality constraint is
added --

* case (a): ``A_i <= 0`` but ``D_i > 0``      ->  add ``D_i = 0``;
* case (b): ``A_i > 0``  but ``D_i > A_i``    ->  add ``D_i = A_i``;

-- and, because lowering one departure can invalidate another's, the
procedure is repeated "as often as necessary" until the constraints are
equivalent to P1's.  The theorem's stipulations are that the optimum
never gets worse along the way and that the final point solves P1.

Algorithm MLP replaces this construction with the cheaper fixpoint slide;
this module keeps the construction itself as an executable, testable
artifact.  Realization notes: after the first solve the clock variables
are held at their optimal values (the proof's argument tracks the optimal
solution point, and Theorem 1 guarantees this loses nothing), so each
case-(b) equality pins the departure to the concrete arrival value, and a
pinned latch whose arrival later drops is simply re-pinned -- exactly the
"add further equality constraints ... and repeat" step of the proof.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.circuit.graph import TimingGraph
from repro.clocking.schedule import ClockSchedule
from repro.core.constraints import (
    ConstraintOptions,
    build_maxplus_system,
    build_program,
    d_var,
    schedule_from_values,
)
from repro.lp.backends import solve
from repro.lp.expr import var
from repro.maxplus.system import MaxPlusSystem

_NEG_INF = float("-inf")


@dataclass
class P3Result:
    """Outcome of the literal Theorem-1 construction."""

    period: float
    schedule: ClockSchedule
    departures: dict[str, float]
    rounds: int
    #: equality pins added or updated per round: (latch, case) pairs where
    #: case is "zero" (a) or "arrival" (b)
    history: list[list[tuple[str, str]]] = field(default_factory=list)
    #: Tc after every LP solve; Theorem 1 says all entries are equal
    period_trace: list[float] = field(default_factory=list)
    #: True when the round budget ran out and the construction's limit was
    #: taken directly (see :func:`solve_p3` notes on geometric tails)
    snapped_to_limit: bool = False


def _violations(
    system: MaxPlusSystem, values: dict[str, float], tol: float
) -> list[tuple[str, str, float]]:
    """Latches whose departure exceeds the L2 max, with the repair target."""
    fanin = system.fanin()
    out = []
    for node in system.nodes:
        if node in system.frozen:
            continue
        arrival = _NEG_INF
        for arc in fanin[node]:
            arrival = max(arrival, values[arc.src] + arc.weight)
        floor = system.floor(node)
        target = max(floor, arrival)
        if values[node] > target + tol:
            case = "zero" if arrival <= floor else "arrival"
            out.append((node, case, target))
    return out


def solve_p3(
    graph: TimingGraph,
    options: ConstraintOptions | None = None,
    backend: str | None = None,
    tol: float = 1e-7,
    max_rounds: int | None = None,
) -> P3Result:
    """Solve P1 by the augmentation procedure of the Theorem 1 proof.

    Round 0 solves P2 and freezes the clock at its optimum.  Each later
    round re-solves the LP with the accumulated departure equalities,
    detects the latches violating the nonlinear constraints L2, and adds
    (or updates) their case-(a)/(b) pins.  Terminates when the LP optimum
    satisfies L2 exactly.

    Around a negative-total-weight latch cycle the paper's "repeat as
    often as necessary" has a geometric tail: each repetition lowers the
    cycle's departures by the fixed cycle weight, so finitely many rounds
    only approach the limit.  When the round budget runs out, the limit is
    taken directly (the least fixpoint at the frozen optimal clock, which
    is what the repetitions converge to) and the result is flagged with
    ``snapped_to_limit``.  The theorem's conclusion -- same ``Tc``, P1
    constraints satisfied -- holds either way.
    """
    options = options or ConstraintOptions()
    if max_rounds is None:
        max_rounds = 10 * graph.l + 20

    # Round 0: plain P2.
    smo0 = build_program(graph, options, name="P3-round0")
    base = solve(smo0.program, backend=backend).raise_for_status()
    schedule = schedule_from_values(graph, base.values)
    system = build_maxplus_system(graph, schedule, options)
    frozen_clock = replace(
        options,
        fixed_period=schedule.period,
        fixed_starts={p.name: p.start for p in schedule.phases},
        fixed_widths={p.name: p.width for p in schedule.phases},
    )

    pins: dict[str, float] = {}
    history: list[list[tuple[str, str]]] = []
    period_trace = [base.objective]
    departures = {
        s.name: base.values[d_var(s.name)] for s in graph.synchronizers
    }

    for round_idx in range(1, max_rounds + 1):
        violations = _violations(system, departures, tol)
        if not violations:
            return P3Result(
                period=period_trace[0],
                schedule=schedule,
                departures=departures,
                rounds=round_idx,
                history=history,
                period_trace=period_trace,
            )
        round_pins: list[tuple[str, str]] = []
        for latch, case, target in violations:
            pins[latch] = target
            round_pins.append((latch, case))
        history.append(round_pins)

        smo = build_program(graph, frozen_clock, name=f"P3-round{round_idx}")
        for latch, value in pins.items():
            smo.program.add_eq(var(d_var(latch)), value, name=f"P3[{latch}]")
        result = solve(smo.program, backend=backend).raise_for_status()
        period_trace.append(result.objective)
        departures = {
            s.name: result.values[d_var(s.name)] for s in graph.synchronizers
        }

    # Geometric tail: take the limit of the construction directly.
    from repro.maxplus.fixpoint import least_fixpoint

    limit = least_fixpoint(system)
    return P3Result(
        period=period_trace[0],
        schedule=schedule,
        departures=limit.values,
        rounds=max_rounds,
        history=history,
        period_trace=period_trace,
        snapped_to_limit=True,
    )
