"""Feasibility queries and binary-search minimum period.

These helpers answer "can the circuit run at period X with this clock
shape?" and locate the smallest such X by bisection.  They are the building
blocks of the Agrawal-style baseline (Section II reviews Agrawal's bounded
binary search) and are useful on their own for what-if analysis.  Note that
unlike Algorithm MLP, the search keeps the *shape* of the clock fixed
(phase starts and widths scale proportionally with the period), so its
answer is optimal only over that one-parameter family.
"""

from __future__ import annotations

from typing import Callable

from repro.circuit.graph import TimingGraph
from repro.clocking.schedule import ClockSchedule
from repro.core.analysis import analyze
from repro.core.constraints import ConstraintOptions
from repro.errors import AnalysisError

ScheduleTemplate = Callable[[float], ClockSchedule]


def proportional_template(reference: ClockSchedule) -> ScheduleTemplate:
    """A template that scales a reference schedule to any period."""
    if reference.period <= 0:
        raise AnalysisError("reference schedule must have a positive period")

    def template(period: float) -> ClockSchedule:
        return reference.scaled(period / reference.period)

    return template


def feasible_period(
    graph: TimingGraph,
    template: ScheduleTemplate,
    period: float,
    options: ConstraintOptions | None = None,
) -> bool:
    """True if the circuit meets timing at ``template(period)``."""
    return analyze(graph, template(period), options).feasible


def min_period_search(
    graph: TimingGraph,
    template: ScheduleTemplate,
    lo: float = 0.0,
    hi: float = 1e6,
    tol: float = 1e-6,
    options: ConstraintOptions | None = None,
    max_steps: int = 200,
) -> float:
    """Smallest feasible period of the template family, by bisection.

    ``hi`` must be feasible (raises :class:`AnalysisError` otherwise); ``lo``
    is assumed infeasible or zero.  Under proportional scaling feasibility
    is monotone in the period for well-formed circuits, so bisection
    converges to the boundary within ``tol``.
    """
    if hi <= lo:
        raise AnalysisError(f"need hi > lo, got lo={lo}, hi={hi}")
    if not feasible_period(graph, template, hi, options):
        raise AnalysisError(
            f"upper bound {hi:g} is itself infeasible; raise hi"
        )
    if lo > 0 and feasible_period(graph, template, lo, options):
        return lo
    steps = 0
    while hi - lo > tol and steps < max_steps:
        mid = 0.5 * (lo + hi)
        if feasible_period(graph, template, mid, options):
            hi = mid
        else:
            lo = mid
        steps += 1
    return hi
