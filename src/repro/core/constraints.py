"""Generation of the SMO timing constraints (Section III of the paper).

The constraint families, named as in the paper:

* **C1** periodicity: ``T_i <= Tc`` and ``s_i <= Tc`` for each phase;
* **C2** phase ordering: ``s_i <= s_{i+1}``;
* **C3** phase nonoverlap: ``s_i >= s_j + T_j - C_ji * Tc`` for every
  input/output phase pair ``K_ij = 1``;
* **C4** nonnegativity of ``Tc``, ``T_i``, ``s_i`` (implicit variable
  bounds in the LP);
* **L1** latch setup: ``D_i + Delta_DCi <= T_{p_i}`` (the paper's
  "realistic" form, eq. 11/16);
* **L2R** relaxed propagation: ``D_i >= D_j + Delta_DQj + Delta_ji +
  S_{p_j p_i}`` for every combinational arc j->i (eq. 19);
* **L3** nonnegativity of ``D_i`` (implicit variable bound).

Edge-triggered flip-flops (present in the paper's GaAs case study) pin
their departure variable to the triggering edge (family **FF**) and replace
the latch-style setup constraint with per-fanin arrival constraints
(family **FS**), since a flip-flop provides no transparency to absorb late
arrivals.

Every generated coefficient is 0 or +/-1 -- the "exclusively topological"
property the paper highlights in Section VI -- which
:meth:`SMOProgram.assert_topological` verifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.circuit.elements import EdgeKind, FlipFlop
from repro.circuit.graph import TimingGraph
from repro.clocking.schedule import ClockSchedule
from repro.clocking.skew import SkewBound
from repro.errors import CircuitError, LPError
from repro.lp.expr import var
from repro.lp.model import LinearProgram, Sense
from repro.maxplus.compiled import prime_weights
from repro.maxplus.system import MaxPlusSystem, WeightedArc

#: LP variable name for the clock period.
TC = "Tc"


def s_var(phase: str) -> str:
    """LP variable name for the start time ``s`` of a phase."""
    return f"s[{phase}]"


def t_var(phase: str) -> str:
    """LP variable name for the active-interval width ``T`` of a phase."""
    return f"T[{phase}]"


def d_var(sync: str) -> str:
    """LP variable name for the departure time ``D`` of a synchronizer."""
    return f"D[{sync}]"


@dataclass(frozen=True)
class ConstraintOptions:
    """Optional requirements beyond the paper's minimal set C1-C4/L1-L3.

    The paper notes (Section III-A) that "further requirements, such as
    minimum phase width, minimum phase separation, and clock skew, can be
    easily added"; these options implement them:

    * ``min_width`` -- lower bound on every phase width (family **XW**);
    * ``min_separation`` -- extra spacing added to the C3 nonoverlap
      constraints;
    * ``setup_margin`` -- a global skew/jitter margin added to every setup
      requirement;
    * ``fixed_period`` / ``fixed_starts`` / ``fixed_widths`` -- pin clock
      variables (family **FIX**), turning the design problem into analysis
      or partial optimization;
    * ``zero_departure_phases`` -- force ``D_i = 0`` for every latch on the
      listed phases (family **NR**); this is the null-retardation device the
      NRIP baseline builds on;
    * ``max_period`` -- upper bound on ``Tc``, useful for feasibility
      queries ("can this circuit run at 4 ns?");
    * ``skew`` -- per-phase :class:`~repro.clocking.skew.SkewBound` bounds.
      The generated system is then *worst-case skew aware*: a schedule it
      accepts meets timing no matter where each phase's edges land within
      its bounds.  Concretely (family **XS** plus tightened rows):

      - latch departures are floored at the latest possible phase opening
        (``D_i >= late_i``), and flip-flop departures are pinned to the
        latest possible triggering edge;
      - setup is checked against the earliest possible closing/triggering
        edge (deadline reduced by ``early_i``);
      - phase nonoverlap C3 is padded by ``early_in + late_out``.
    """

    min_width: float = 0.0
    min_separation: float = 0.0
    setup_margin: float = 0.0
    fixed_period: float | None = None
    fixed_starts: Mapping[str, float] | None = None
    fixed_widths: Mapping[str, float] | None = None
    zero_departure_phases: tuple[str, ...] = ()
    max_period: float | None = None
    skew: Mapping[str, SkewBound] | None = None

    def __post_init__(self) -> None:
        if self.min_width < 0:
            raise LPError(f"min_width must be >= 0, got {self.min_width}")
        if self.min_separation < 0:
            raise LPError(f"min_separation must be >= 0, got {self.min_separation}")

    def skew_of(self, phase: str) -> SkewBound:
        """The skew bound of a phase (zero bound when none is configured)."""
        if not self.skew:
            return _NO_SKEW
        return self.skew.get(phase, _NO_SKEW)


_NO_SKEW = SkewBound(0.0, 0.0)


@dataclass
class SMOProgram:
    """A generated SMO constraint system.

    ``families`` maps each constraint-family tag (``C1``, ``C2``, ``C3``,
    ``L1``, ``L2R``, ``FF``, ``FS``, plus extension families) to the list of
    constraint names generated for it; ``arc_of_constraint`` maps each L2R/FS
    row back to the circuit arc it came from, which is what critical-segment
    extraction uses.

    ``rhs_delay_sign`` records, per arc constraint, the derivative of its
    right-hand side with respect to that arc's combinational delay (+1 for
    L2R rows, -1 for FS rows).  The SMO coefficient matrix is exclusively
    topological, so a delay change moves only these constants --
    :func:`recost_arc_delay` exploits that to rebuild a perturbed program
    without re-walking the circuit.
    """

    program: LinearProgram
    graph: TimingGraph
    options: ConstraintOptions
    families: dict[str, list[str]] = field(default_factory=dict)
    arc_of_constraint: dict[str, tuple[str, str]] = field(default_factory=dict)
    rhs_delay_sign: dict[str, float] = field(default_factory=dict)

    @property
    def explicit_constraint_count(self) -> int:
        """Number of explicit LP rows (what the simplex actually sees)."""
        return len(self.program)

    @property
    def paper_constraint_count(self) -> int:
        """Constraint count under the paper's convention.

        The paper's tally for the GaAs example (91) counts the explicit
        inequality rows together with the nonnegativity constraints C4
        (``Tc`` and each ``s_i``, ``T_i``) and L3 (each ``D_i``), which this
        library keeps as implicit variable bounds.
        """
        k = self.graph.k
        return self.explicit_constraint_count + (2 * k + 1) + self.graph.l

    def family(self, tag: str) -> list[str]:
        return list(self.families.get(tag, []))

    def assert_topological(self) -> None:
        """Verify the Section VI property: all coefficients in {0, +/-1}.

        Only the base SMO families are required to be topological; extension
        families (duty cycles etc.) may introduce other coefficients.
        """
        base = {"C1", "C2", "C3", "L1", "L2R", "FF", "FS", "NR"}
        names = {
            name for tag, names in self.families.items() if tag in base
            for name in names
        }
        for con in self.program.constraints:
            if con.name not in names:
                continue
            for coeff in con.lhs.terms.values():
                if coeff not in (1.0, -1.0):
                    raise LPError(
                        f"non-topological coefficient {coeff} in {con.name}"
                    )


def _ordering_flag(graph: TimingGraph, phase_i: str, phase_j: str) -> int:
    """The paper's C_ij over the circuit's phase ordering (eq. 1)."""
    return 0 if graph.phase_index(phase_i) < graph.phase_index(phase_j) else 1


def _shift_expr(graph: TimingGraph, phase_from: str, phase_to: str):
    """The phase-shift operator S_{from,to} as a linear expression (eq. 12).

    ``S_ij = s_i - (s_j + C_ij * Tc)``: adding it to a time referenced to
    the start of phase ``i`` (= ``phase_from``) re-references it to the
    start of phase ``j`` (= ``phase_to``).
    """
    c = _ordering_flag(graph, phase_from, phase_to)
    expr = var(s_var(phase_from)) - var(s_var(phase_to))
    if c:
        expr = expr - var(TC)
    return expr


def build_program(
    graph: TimingGraph,
    options: ConstraintOptions | None = None,
    name: str = "P2",
    setup_slack_var: str | None = None,
) -> SMOProgram:
    """Build the LP relaxation P2 (minimize Tc subject to C1-C4, L1, L2R, L3).

    The returned :class:`SMOProgram` carries the family index used for
    constraint counting, critical-segment extraction, and the NRIP baseline.

    When ``setup_slack_var`` names a variable, that variable is added to
    the left-hand side of every setup row (L1 and FS); callers can then
    maximize it to find the best uniform setup margin (see
    :mod:`repro.core.tuning`).  The default objective stays ``minimize Tc``
    either way; slack-maximizing callers replace it.
    """
    options = options or ConstraintOptions()
    lp = LinearProgram(name=name)
    smo = SMOProgram(program=lp, graph=graph, options=options)

    def add(tag: str, constraint) -> None:
        smo.families.setdefault(tag, []).append(constraint.name)

    tc = var(TC)
    lp.declare(TC)
    for phase in graph.phase_names:
        lp.declare(s_var(phase))
        lp.declare(t_var(phase))
    for sync in graph.synchronizers:
        lp.declare(d_var(sync.name))

    lp.minimize(tc)

    # ---- C1: periodicity --------------------------------------------------
    for phase in graph.phase_names:
        add("C1", lp.add_le(var(t_var(phase)), tc, name=f"C1_T[{phase}]"))
        add("C1", lp.add_le(var(s_var(phase)), tc, name=f"C1_s[{phase}]"))

    # ---- C2: phase ordering -----------------------------------------------
    for a, b in zip(graph.phase_names, graph.phase_names[1:]):
        add("C2", lp.add_le(var(s_var(a)), var(s_var(b)), name=f"C2[{a}<{b}]"))

    # ---- C3: phase nonoverlap over the K matrix ---------------------------
    for i, j in graph.io_phase_pairs():
        pi, pj = graph.phase_names[i], graph.phase_names[j]
        cji = _ordering_flag(graph, pj, pi)
        rhs = var(s_var(pj)) + var(t_var(pj)) - (cji * tc if cji else 0)
        if options.min_separation:
            rhs = rhs + options.min_separation
        # Worst-case skew: the input phase may start early and the output
        # phase may end late; keep them separated even then.
        pad = options.skew_of(pi).early + options.skew_of(pj).late
        if pad:
            rhs = rhs + pad
        add("C3", lp.add_ge(var(s_var(pi)), rhs, name=f"C3[{pi}/{pj}]"))

    # ---- L1 / FS: setup; L2R: relaxed propagation -------------------------
    # These families contain one row per latch/arc -- the only parts of the
    # program that grow with circuit size -- so they are emitted through the
    # pre-normalized :meth:`LinearProgram.add_row` fast path: coefficient
    # dicts are assembled directly from per-phase-pair shift templates
    # instead of chaining LinExpr arithmetic per row.  The produced rows
    # (names, coefficient sets, senses, right-hand sides) are identical to
    # the expression-based construction they replace.
    margin = options.setup_margin
    for sync in graph.synchronizers:
        if sync.is_latch:
            # With skew the closing edge may come early_i sooner.
            early = options.skew_of(sync.phase).early
            terms = {d_var(sync.name): 1.0}
            if setup_slack_var:
                terms[setup_slack_var] = 1.0
            terms[t_var(sync.phase)] = -1.0
            add(
                "L1",
                lp.add_row(
                    f"L1[{sync.name}]",
                    terms,
                    Sense.LE,
                    -(sync.setup + margin + early),
                ),
            )

    # Shift templates S_{from,to} per phase pair, as coefficient dicts:
    # ``plain`` is the operator itself (FS rows carry it on the lhs),
    # ``negated`` its sign flip (L2R rows move it across the inequality).
    shift_plain: dict[tuple[str, str], dict[str, float]] = {}
    shift_negated: dict[tuple[str, str], dict[str, float]] = {}
    for pf in graph.phase_names:
        for pt in graph.phase_names:
            c = _ordering_flag(graph, pf, pt)
            plain: dict[str, float] = {}
            if pf != pt:
                plain[s_var(pf)] = 1.0
                plain[s_var(pt)] = -1.0
            if c:
                plain[TC] = -1.0
            shift_plain[(pf, pt)] = plain
            shift_negated[(pf, pt)] = {n: -v for n, v in plain.items()}

    for arc in graph.arcs:
        src = graph[arc.src]
        dst = graph[arc.dst]
        pair = (src.phase, dst.phase)
        if dst.is_latch:
            if arc.src == arc.dst:
                # Self-loop: the departure terms cancel, leaving only the
                # (negated) shift operator -- same as the expression path.
                terms = dict(shift_negated[pair])
            else:
                terms = {d_var(dst.name): 1.0, d_var(src.name): -1.0}
                terms.update(shift_negated[pair])
            con = lp.add_row(
                f"L2R[{arc.src}->{arc.dst}]",
                terms,
                Sense.GE,
                src.delay + arc.delay,
            )
            add("L2R", con)
            smo.rhs_delay_sign[con.name] = 1.0
        else:
            assert isinstance(dst, FlipFlop)
            # With skew the triggering edge may come early_i sooner.
            dst_early = options.skew_of(dst.phase).early
            terms = {d_var(src.name): 1.0}
            terms.update(shift_plain[pair])
            if setup_slack_var:
                terms[setup_slack_var] = 1.0
            if dst.edge is not EdgeKind.RISE:
                terms[t_var(dst.phase)] = -1.0
            con = lp.add_row(
                f"FS[{arc.src}->{arc.dst}]",
                terms,
                Sense.LE,
                -(src.delay + arc.delay + dst.setup + margin + dst_early),
            )
            add("FS", con)
            smo.rhs_delay_sign[con.name] = -1.0
        smo.arc_of_constraint[con.name] = (arc.src, arc.dst)

    # ---- FF: pin flip-flop departures to their triggering edge ------------
    # Under skew, downstream consumers must survive the *latest* launch, so
    # the departure is pinned to the latest possible edge position.
    for ff in graph.flipflops:
        late = options.skew_of(ff.phase).late
        if ff.edge is EdgeKind.RISE:
            con = lp.add_eq(var(d_var(ff.name)), late, name=f"FF[{ff.name}]")
        else:
            con = lp.add_eq(
                var(d_var(ff.name)) - var(t_var(ff.phase)),
                late,
                name=f"FF[{ff.name}]",
            )
        add("FF", con)

    # ---- XS: skew floors on latch departures ------------------------------
    # A latch cannot launch before its (possibly late) opening edge.
    if options.skew:
        for sync in graph.latches:
            late = options.skew_of(sync.phase).late
            if late:
                add(
                    "XS",
                    lp.add_ge(
                        var(d_var(sync.name)), late, name=f"XS[{sync.name}]"
                    ),
                )

    # ---- NR: null departure (retardation) on selected phases --------------
    for phase in options.zero_departure_phases:
        if phase not in graph.phase_names:
            raise CircuitError(
                f"zero_departure_phases names unknown phase {phase!r}"
            )
        for sync in graph.synchronizers:
            if sync.phase == phase and sync.is_latch:
                con = lp.add_eq(
                    var(d_var(sync.name)), 0.0, name=f"NR[{sync.name}]"
                )
                add("NR", con)

    # ---- Extensions --------------------------------------------------------
    if options.min_width:
        for phase in graph.phase_names:
            add(
                "XW",
                lp.add_ge(
                    var(t_var(phase)), options.min_width, name=f"XW[{phase}]"
                ),
            )
    if options.max_period is not None:
        add("XP", lp.add_le(tc, options.max_period, name="XP[Tc]"))
    if options.fixed_period is not None:
        add("FIX", lp.add_eq(tc, options.fixed_period, name="FIX[Tc]"))
    for mapping, maker, tag in (
        (options.fixed_starts, s_var, "s"),
        (options.fixed_widths, t_var, "T"),
    ):
        if mapping:
            for phase, value in mapping.items():
                if phase not in graph.phase_names:
                    raise CircuitError(
                        f"fixed_{tag} names unknown phase {phase!r}"
                    )
                add(
                    "FIX",
                    lp.add_eq(var(maker(phase)), value, name=f"FIX[{tag}[{phase}]]"),
                )
    return smo


def recost_arc_delay(
    smo: SMOProgram, src: str, dst: str, value: float
) -> SMOProgram:
    """Re-cost an already-built program for a new ``src -> dst`` arc delay.

    Because every SMO coefficient is topological (0 or +/-1, Section VI), a
    combinational delay change never touches the constraint matrix -- only
    the constant side of the affected L2R/FS rows.  This rebuilds exactly
    those right-hand sides (``d rhs / d delay`` is recorded per row in
    :attr:`SMOProgram.rhs_delay_sign`) and shares everything else with the
    original program, so a parametric sweep pays O(rows) bookkeeping per
    point instead of a full :func:`build_program` circuit walk.

    The returned program is *structurally identical* to the original (same
    variables, constraint names and senses), which is precisely the
    condition under which an optimal :class:`~repro.lp.basis.Basis` from
    one point can warm-start the next.
    """
    arc = smo.graph.arc(src, dst)
    if arc is None:
        raise CircuitError(f"no combinational arc {src!r} -> {dst!r}")
    targets = {
        name
        for name, pair in smo.arc_of_constraint.items()
        if pair == (src, dst)
    }
    if not targets:  # pragma: no cover - every arc generates a row
        raise CircuitError(f"arc {src!r} -> {dst!r} generated no constraints")
    delta = float(value) - arc.delay
    updates: dict[str, float] = {}
    if delta:
        for con in smo.program.constraints:
            if con.name in targets:
                updates[con.name] = con.rhs + smo.rhs_delay_sign[con.name] * delta
    return SMOProgram(
        program=smo.program.with_rhs(updates) if updates else smo.program,
        graph=smo.graph.with_arc_delay(src, dst, float(value)),
        options=smo.options,
        families=smo.families,
        arc_of_constraint=smo.arc_of_constraint,
        rhs_delay_sign=smo.rhs_delay_sign,
    )


def build_maxplus_system(
    graph: TimingGraph,
    schedule: ClockSchedule,
    options: ConstraintOptions | None = None,
) -> MaxPlusSystem:
    """The propagation constraints L2 as a max-plus system at a fixed clock.

    With the clock variables frozen at a concrete schedule, eq. (17) becomes
    ``D_i = max(0, max_j(D_j + w_ji))`` with constant weights
    ``w_ji = Delta_DQj + Delta_ji + S_{p_j p_i}``.  Flip-flops enter as
    frozen nodes pinned to their triggering edge.  When ``options`` carries
    skew bounds, departure floors move to the latest possible enabling edge
    (worst-case launch).
    """
    _check_phases(graph, schedule)
    options = options or ConstraintOptions()
    nodes = list(graph.names)
    floors: dict[str, float] = {}
    frozen: set[str] = set()
    for sync in graph.synchronizers:
        late = options.skew_of(sync.phase).late
        if sync.is_latch:
            floors[sync.name] = late
        else:
            assert isinstance(sync, FlipFlop)
            frozen.add(sync.name)
            if sync.edge is EdgeKind.RISE:
                floors[sync.name] = late
            else:
                floors[sync.name] = schedule[sync.phase].width + late
    # Flip-flop departures do not depend on arrivals; only latch-bound arcs
    # become max-plus arcs.  Weights are computed vectorized: a k x k table
    # of phase shifts indexed by the (src, dst) phase ids of every arc.  The
    # addition order matches the scalar form ``(src.delay + arc.delay) +
    # shift`` bit for bit.
    live = [a for a in graph.arcs if graph[a.dst].is_latch]
    m = len(live)
    weights = np.zeros(m)
    if m:
        pidx = {name: i for i, name in enumerate(graph.phase_names)}
        shift = np.empty((graph.k, graph.k))
        for pf, i in pidx.items():
            for pt, j in pidx.items():
                shift[i, j] = schedule.phase_shift(pf, pt)
        src_delays = np.fromiter(
            (graph[a.src].delay for a in live), dtype=np.float64, count=m
        )
        arc_delays = np.fromiter((a.delay for a in live), dtype=np.float64, count=m)
        sp = np.fromiter(
            (pidx[graph[a.src].phase] for a in live), dtype=np.intp, count=m
        )
        dp = np.fromiter(
            (pidx[graph[a.dst].phase] for a in live), dtype=np.intp, count=m
        )
        weights = (src_delays + arc_delays) + shift[sp, dp]
    arcs = [
        WeightedArc(a.src, a.dst, w) for a, w in zip(live, weights.tolist())
    ]
    system = MaxPlusSystem(nodes=nodes, arcs=arcs, floors=floors, frozen=frozen)
    # Hand the already-computed weight vector to the array-kernel compiler
    # so a later compile_system() call re-costs without re-walking the arcs.
    prime_weights(system, weights)
    return system


def _check_phases(graph: TimingGraph, schedule: ClockSchedule) -> None:
    if tuple(schedule.names) != tuple(graph.phase_names):
        raise CircuitError(
            f"schedule phases {schedule.names} do not match circuit phases "
            f"{graph.phase_names} (same names, same order, required)"
        )


def schedule_from_values(
    graph: TimingGraph, values: Mapping[str, float], tol: float = 1e-7
) -> ClockSchedule:
    """Assemble a :class:`ClockSchedule` from LP solution values.

    Values within ``tol`` below zero (floating-point dust from the simplex)
    are snapped to exactly zero.  Callers that know their solver's actual
    tolerance should pass it instead of relying on the permissive default.
    """
    from repro.clocking.phase import ClockPhase  # local import to avoid cycle

    def clean(x: float) -> float:
        return 0.0 if -tol < x < 0.0 else x

    phases = [
        ClockPhase(name, clean(values[s_var(name)]), clean(values[t_var(name)]))
        for name in graph.phase_names
    ]
    return ClockSchedule(clean(values[TC]), phases)
