"""Algorithm MLP: optimal cycle time calculation by modified LP (Section IV).

The design problem P1 (minimize Tc subject to C1-C4 and the nonlinear latch
constraints L1-L3) is solved in two steps, following Theorem 1:

1. Solve the LP relaxation P2 (propagation equalities relaxed to ``>=``).
   By Theorem 1 its optimal Tc equals P1's.
2. Hold the clock variables at the LP optimum and "slide" the departure
   times down to a fixpoint of the max constraints (steps 3-5 of the
   paper's listing), turning the LP point into a feasible P1 solution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.circuit.graph import TimingGraph
from repro.clocking.schedule import ClockSchedule
from repro.core.analysis import TimingReport, analyze
from repro.core.constraints import (
    ConstraintOptions,
    SMOProgram,
    build_maxplus_system,
    build_program,
    d_var,
    s_var,
    schedule_from_values,
    t_var,
)
from repro.errors import ReproError
from repro.lp.backends import AUTO_SPARSE_ROWS, solve
from repro.lp.expr import LinExpr, var
from repro.lp.result import LPResult
from repro.maxplus.fixpoint import slide
from repro.obs import trace


@dataclass(frozen=True)
class MLPOptions:
    """Knobs for :func:`minimize_cycle_time`.

    ``iteration`` selects how the departure-time slide is performed:
    ``"jacobi"`` is the paper's listing, ``"gauss-seidel"`` and ``"event"``
    are the more efficient variants the paper suggests.  ``verify`` re-runs
    the independent fixed-schedule analyzer on the result and raises if the
    produced schedule is not actually feasible (it always should be).

    ``compact`` selects among the (generally non-unique, see the paper's
    Fig. 6 discussion) optimal schedules: after the minimum Tc is found, a
    second LP pass holds Tc fixed and minimizes the sum of phase starts,
    phase widths and departure times, yielding a canonical "compact"
    schedule that is deterministic across LP backends.  The optimal cycle
    time is unaffected.

    ``warm_start`` enables basis reuse on repeated solves: when True and a
    caller supplies the previous solve's optimal basis (sweeps and the
    batch engine thread one through automatically), warm-start-capable
    backends (``"revised"``) start phase 2 directly from it.  Warm
    starting is purely a performance device -- an unusable basis falls
    back to a cold start inside the solver, so reported optima are
    unaffected either way.

    ``kernel`` selects the execution engine for the slide (step 3-5
    fixpoint iteration): ``"dict"`` runs the reference implementation over
    Python dicts, ``"array"`` the compiled numpy kernels of
    :mod:`repro.maxplus.compiled`, and ``"auto"`` (the default) picks the
    array kernels on circuits large enough for the lowering to pay off --
    restricted to method/size combinations whose array kernel is
    bit-identical to the dict kernel, so the choice never changes a
    reported schedule or period.

    ``sanitize`` runs the :mod:`repro.lint.sanitize` a-posteriori checker
    on the finished result: every explicit SMO row, the implicit C4/L3
    bounds and L2 tightness are re-verified at the solved point, and a
    violation raises :class:`~repro.errors.ReproError` (it would indicate
    a solver/kernel bug, not a property of the circuit).  The per-run
    :class:`~repro.lint.sanitize.SanitizeReport` lands in
    ``result.extra["sanitize"]``.

    ``backend`` names the LP backend (see
    :func:`repro.lp.backends.available_backends`).  The graph-native
    ``"cycle"`` backend solves the Tc minimization by parametric
    critical-cycle search over the difference-constraint graph (see
    :mod:`repro.cycle`) -- no simplex tableau for the hard,
    free-period solve.  The ``compact`` tie-break pass still runs when
    enabled (routed to the revised simplex, since its objective is not
    ``Tc``), keeping the canonical schedule identical across backends;
    disable ``compact`` to stay entirely on the graph path and take the
    cycle solver's own schedule -- the shortest-path potentials at the
    optimum.  ``"cycle+check"`` additionally cross-checks the optimum
    against the revised simplex *and* forces the sanitizer on,
    regardless of ``sanitize``.
    """

    backend: str | None = None
    iteration: str = "jacobi"
    verify: bool = True
    compact: bool = True
    tol: float = 1e-9
    warm_start: bool = True
    kernel: str = "auto"
    sanitize: bool = False


@dataclass
class OptimalClockResult:
    """Outcome of Algorithm MLP.

    ``period`` is the optimal cycle time (equal for P1 and P2 by Theorem 1);
    ``schedule`` is the optimal clock schedule; ``departures`` are the P1
    departure times after the slide; ``lp_departures`` are the raw P2 values
    before the slide; ``slide_sweeps`` counts the update iterations of
    steps 3-5 (the paper reports 0-3 in practice).
    """

    period: float
    schedule: ClockSchedule
    departures: dict[str, float]
    lp_departures: dict[str, float]
    lp_result: LPResult
    #: the raw Tc-minimizing solve (before any compact tie-break pass);
    #: its duals are the true sensitivities dTc*/d(rhs) -- use these for
    #: parametric/criticality reasoning.  Equal to ``lp_result`` when the
    #: compact pass is disabled.
    lp_tc_result: LPResult = None  # type: ignore[assignment]
    smo: SMOProgram = None  # type: ignore[assignment]
    slide_sweeps: int = 0
    slide_method: str = "jacobi"
    #: magnitude of the last value update the slide applied before
    #: converging (0.0 when the LP point was already a fixpoint).
    slide_residual: float = 0.0
    report: TimingReport | None = None
    extra: dict[str, object] = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        return self.report.feasible if self.report is not None else True


def _compact_pass(
    graph: TimingGraph,
    options: ConstraintOptions,
    mlp: "MLPOptions",
    optimal_period: float,
    fallback: LPResult,
    stages: dict[str, float] | None = None,
) -> LPResult:
    """Re-optimize with Tc pinned at the optimum for a canonical schedule.

    Minimizes ``sum(s_i) + sum(T_i) + sum(D_i)``: phases start as early and
    stay as narrow as the constraints allow, and departures hug the phase
    openings.  Any feasible point of this pass is an alternate optimum of
    P2, so Theorem 1 still applies.
    """
    pinned = replace(options, fixed_period=optimal_period)
    build_start = time.perf_counter()
    smo2 = build_program(graph, pinned, name="P2-compact")
    if stages is not None:
        stages["constraint_gen"] = (
            stages.get("constraint_gen", 0.0) + time.perf_counter() - build_start
        )
    tie_break = LinExpr()
    for phase in graph.phase_names:
        tie_break = tie_break + var(s_var(phase)) + var(t_var(phase))
    for sync in graph.synchronizers:
        tie_break = tie_break + var(d_var(sync.name))
    smo2.program.minimize(tie_break)
    # The cycle backends cannot honour a non-Tc objective and would only
    # fall back; route the tie-break pass straight to a simplex -- the
    # dense revised solver at paper scale (bit-stable against the
    # existing golden schedules), the sparse revised solver above the
    # dense-materialization threshold.  The sparse backend is routed the
    # same way: the tie-break LP can still have alternate optima, and at
    # paper scale the dense revised solver is the canonical vertex
    # picker, keeping the reported schedule backend-independent.
    backend = mlp.backend
    if (backend or "").startswith(("cycle", "sparse")):
        backend = (
            "revised"
            if len(smo2.program) <= AUTO_SPARSE_ROWS
            else "sparse"
        )
    result = solve(smo2.program, backend=backend)
    if not result.ok:  # pragma: no cover - the pinned LP is always feasible
        return fallback
    # Restore the cycle-time objective value for downstream consumers.
    result.objective = optimal_period
    return result


def minimize_cycle_time(
    graph: TimingGraph,
    options: ConstraintOptions | None = None,
    mlp: MLPOptions | None = None,
    warm_start=None,
    smo: SMOProgram | None = None,
) -> OptimalClockResult:
    """Find the minimum cycle time and an optimal clock schedule (Algorithm MLP).

    ``warm_start`` optionally supplies a previous solve's optimal
    :class:`~repro.lp.basis.Basis` for the Tc pass (used when
    ``mlp.warm_start`` is enabled and the backend supports it; see
    :mod:`repro.lp.revised_simplex`); ``smo`` optionally supplies a
    pre-built constraint system for ``graph``/``options`` -- the
    parametric sweep passes the re-costed program from
    :func:`repro.core.constraints.recost_arc_delay` here to skip the
    circuit walk.  Both are pure performance devices: the reported optimum
    is identical with or without them.

    Raises :class:`repro.errors.InfeasibleError` when the constraint system
    has no solution (e.g. contradictory fixed clock values) and
    :class:`repro.errors.ReproError` if verification of the result fails,
    which would indicate a bug rather than a property of the circuit.
    """
    options = options or ConstraintOptions()
    mlp = mlp or MLPOptions()
    stages: dict[str, float] = {}

    # Step 1: solve the LP relaxation P2.
    build_start = time.perf_counter()
    with trace.span("constraint_gen", stage="program") as cg_span:
        if smo is None:
            smo = build_program(graph, options)
        cg_span.set("constraints", len(smo.program.constraints))
    stages["constraint_gen"] = time.perf_counter() - build_start
    basis_in = warm_start if mlp.warm_start else None
    tc_result = solve(
        smo.program, backend=mlp.backend, warm_start=basis_in, context=smo
    ).raise_for_status()
    lp_solves = 1
    lp_iterations = tc_result.iterations
    lp_seconds = tc_result.solve_seconds

    lp_result = tc_result
    cycle_info = tc_result.extra.get("cycle")
    if mlp.compact:
        lp_result = _compact_pass(
            graph, options, mlp, tc_result.objective, tc_result, stages
        )
        if lp_result is not tc_result:
            lp_solves += 1
            lp_iterations += lp_result.iterations
            lp_seconds += lp_result.solve_seconds
    stages["lp_solve"] = lp_seconds

    schedule = schedule_from_values(graph, lp_result.values, tol=max(mlp.tol, 1e-9))
    lp_departures = {
        sync.name: lp_result.values[d_var(sync.name)]
        for sync in graph.synchronizers
    }

    # Steps 2-5: slide the departures to a fixpoint of the max constraints,
    # holding the clock variables at their LP-optimal values.
    build_start = time.perf_counter()
    with trace.span("constraint_gen", stage="maxplus"):
        system = build_maxplus_system(graph, schedule, options)
    stages["constraint_gen"] += time.perf_counter() - build_start
    slide_start = time.perf_counter()
    with trace.span("slide", method=mlp.iteration, kernel=mlp.kernel):
        fix = slide(
            system,
            lp_departures,
            method=mlp.iteration,
            tol=mlp.tol,
            kernel=mlp.kernel,
        )
    stages["slide"] = time.perf_counter() - slide_start

    result = OptimalClockResult(
        period=schedule.period,
        schedule=schedule,
        departures=fix.values,
        lp_departures=lp_departures,
        lp_result=lp_result,
        lp_tc_result=tc_result,
        smo=smo,
        slide_sweeps=fix.iterations,
        slide_method=fix.method,
        slide_residual=fix.residual,
    )
    result.extra["stages"] = stages
    result.extra["lp_solves"] = lp_solves
    result.extra["lp_iterations"] = lp_iterations
    result.extra["slide_residual"] = fix.residual
    # Warm-start bookkeeping for the Tc pass (the compact tie-break pass is
    # a different program -- extra FIX row, different objective -- so it is
    # always solved cold and never offered a basis).
    outcome = tc_result.extra.get("warm_start")
    result.extra["warm_start"] = outcome
    result.extra["warm_start_hits"] = 1 if outcome == "hit" else 0
    result.extra["warm_start_misses"] = 1 if outcome == "miss" else 0
    result.extra["refactorizations"] = int(
        tc_result.extra.get("refactorizations", 0)
    ) + int(
        lp_result.extra.get("refactorizations", 0)
        if lp_result is not tc_result
        else 0
    )
    basis_out = tc_result.extra.get("basis")
    if basis_out is not None:
        result.extra["basis"] = basis_out
    if isinstance(cycle_info, dict):
        result.extra["cycle"] = cycle_info

    # "cycle+check" is the self-verifying mode: LP cross-check happened in
    # the backend; schedule feasibility is asserted by forcing the
    # sanitizer on here.
    if mlp.sanitize or mlp.backend == "cycle+check":
        # Local import: repro.lint imports from this package.
        from repro.lint.sanitize import sanitize_solution

        sanitize_start = time.perf_counter()
        with trace.span("sanitize") as san_span:
            check = sanitize_solution(
                graph,
                schedule,
                fix.values,
                options=options,
                smo=smo,
                tol=max(mlp.tol, 1e-9) * 1e3,
            )
            san_span.set("ok", check.ok)
            san_span.set("checked", check.checked)
            san_span.set("min_slack", check.min_slack)
        stages["sanitize"] = time.perf_counter() - sanitize_start
        result.extra["sanitize"] = check
        if not check.ok:
            raise ReproError(
                "internal error: sanitizer rejected the MLP result:\n"
                + check.format()
            )

    if mlp.verify:
        verify_start = time.perf_counter()
        with trace.span("analysis") as an_span:
            report = analyze(graph, schedule, options)
            an_span.set("feasible", report.feasible)
            an_span.set("worst_slack", report.worst_slack)
        stages["analysis"] = time.perf_counter() - verify_start
        result.report = report
        if not report.feasible:
            raise ReproError(
                "internal error: MLP produced an infeasible schedule "
                f"(worst slack {report.worst_slack:g}); please report this"
            )
    return result
