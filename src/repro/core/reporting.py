"""Text reports for optimization and analysis results."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.circuit.graph import TimingGraph
from repro.core.analysis import TimingReport
from repro.core.mlp import OptimalClockResult
from repro.render.ascii_art import clock_diagram, schedule_table


def format_optimal_result(
    result: OptimalClockResult, graph: TimingGraph | None = None
) -> str:
    """A human-readable summary of an MLP run (schedule + departures)."""
    lines = [
        f"optimal cycle time: {result.period:g}",
        schedule_table(result.schedule),
        "",
        clock_diagram(result.schedule),
        "",
        "departure times (relative to each synchronizer's phase):",
    ]
    width = max((len(n) for n in result.departures), default=4)
    for name in sorted(result.departures):
        before = result.lp_departures.get(name)
        after = result.departures[name]
        note = ""
        if before is not None and abs(before - after) > 1e-9:
            note = f"   (LP gave {before:g}, slid down)"
        lines.append(f"  {name:<{width}}  D = {after:<10g}{note}")
    lines.append(
        f"slide: {result.slide_method}, {result.slide_sweeps} iteration(s), "
        f"residual {result.slide_residual:g}"
    )
    return "\n".join(lines)


def format_comparison(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
    title: str = "",
) -> str:
    """Align a list of row dicts into a fixed-width table.

    Floats are rendered with ``%g``; missing keys render blank.  Used by
    the benchmark harnesses to print the paper's tables and figure series.
    """
    def cell(value: object) -> str:
        if value is None:
            return ""
        if isinstance(value, float):
            return f"{value:g}"
        return str(value)

    grid = [[cell(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in grid)) if grid else len(col)
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in grid:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def format_analysis(report: TimingReport) -> str:
    """Delegate to :class:`TimingReport`'s own rendering (one place to edit)."""
    return str(report)
