"""Clock tuning at a fixed cycle time: maximize the worst setup slack.

A common variant of the design problem: the period is dictated from
outside (a system clock, a market requirement) and the question is how to
*place* the phases to maximize robustness.  This module solves

    maximize sigma
    subject to  C1-C4, L2R, and the setup rows tightened by sigma

at a caller-given Tc.  A positive optimal sigma is the uniform margin the
schedule guarantees on every setup check; a negative one quantifies by how
much the target period is infeasible (the most-violated setup constraint
cannot do better than sigma).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.circuit.graph import TimingGraph
from repro.clocking.schedule import ClockSchedule
from repro.core.analysis import TimingReport, analyze
from repro.core.constraints import (
    ConstraintOptions,
    SMOProgram,
    build_program,
    schedule_from_values,
)
from repro.lp.backends import solve
from repro.lp.expr import var

#: LP variable name of the uniform setup slack.
SLACK = "sigma"


@dataclass
class TuningResult:
    """Outcome of :func:`maximize_slack`."""

    period: float
    slack: float
    schedule: ClockSchedule
    smo: SMOProgram
    report: TimingReport | None = None

    @property
    def meets_timing(self) -> bool:
        return self.slack >= -1e-9


def maximize_slack(
    graph: TimingGraph,
    period: float,
    options: ConstraintOptions | None = None,
    backend: str | None = None,
    verify: bool = True,
) -> TuningResult:
    """Best-possible uniform setup margin at a fixed cycle time.

    Implemented as the SMO system with ``Tc`` pinned and the slack folded
    into the setup margin: maximizing sigma over ``D_i + setup + sigma <=
    T_p`` (and the flip-flop analogues).  The slack variable is free, so a
    target period that fails only on *setup* yields a negative optimal
    slack quantifying the shortfall.  A period that is structurally
    impossible -- the propagation constraints around some latch loop cannot
    close at that Tc no matter how much setup is sacrificed -- still raises
    :class:`repro.errors.InfeasibleError`, since sigma does not relax L2R.
    """
    options = options or ConstraintOptions()
    pinned = replace(options, fixed_period=period)

    smo = build_program(graph, pinned, name="tuning", setup_slack_var=SLACK)
    if not (smo.family("L1") or smo.family("FS")):
        # No setup requirements at all: any feasible schedule has infinite
        # margin.  Solve the plain system for a witness schedule.
        plain = build_program(graph, pinned)
        witness = solve(plain.program, backend=backend).raise_for_status()
        return TuningResult(
            period=period,
            slack=float("inf"),
            schedule=schedule_from_values(graph, witness.values),
            smo=plain,
        )
    smo.program.set_free(SLACK)
    smo.program.minimize(-var(SLACK))
    result = solve(smo.program, backend=backend).raise_for_status()

    slack = result.values[SLACK]
    schedule = schedule_from_values(graph, result.values)
    out = TuningResult(period=period, slack=slack, schedule=schedule, smo=smo)
    if verify:
        report = analyze(graph, schedule, options)
        out.report = report
        # The independent analyzer must confirm at least the LP's slack
        # (it may do better: the analyzer uses exact fixpoint departures).
        assert report.worst_slack >= slack - 1e-6, (
            report.worst_slack,
            slack,
        )
    return out
