"""One-call timing signoff: structure + clock + setup + hold together.

``signoff`` is the "is this design done?" entry point: it bundles the
structural preconditions of Section III, the clock constraints C1-C4, the
long-path analysis (L1/L2), and the short-path/hold extension into a
single report with a single verdict.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.graph import TimingGraph
from repro.circuit.validate import StructureReport, check_structure
from repro.clocking.schedule import ClockSchedule
from repro.core.analysis import TimingReport, analyze
from repro.core.constraints import ConstraintOptions
from repro.core.shortpath import HoldReport, check_hold


@dataclass
class SignoffReport:
    """Combined verdict over every check the library implements."""

    structure: StructureReport
    timing: TimingReport
    hold: HoldReport

    @property
    def ok(self) -> bool:
        return self.structure.ok and self.timing.feasible and self.hold.feasible

    @property
    def failures(self) -> list[str]:
        """Human-readable list of everything that failed."""
        problems: list[str] = list(self.structure.errors)
        problems.extend(self.timing.clock_violations)
        if self.timing.divergent_cycle:
            problems.append(self.timing.divergent_cycle)
        for t in self.timing.setup_violations:
            problems.append(
                f"setup violation at {t.name}: slack {t.slack:g}"
            )
        for t in self.hold.violations:
            problems.append(f"hold violation at {t.name}: slack {t.slack:g}")
        return problems

    def __str__(self) -> str:
        lines = [f"signoff: {'PASS' if self.ok else 'FAIL'}"]
        lines.append(
            f"  setup worst slack: {self.timing.worst_slack:g}   "
            f"hold worst slack: {self.hold.worst_slack:g}"
        )
        for w in self.structure.warnings:
            lines.append(f"  warning: {w}")
        for f in self.failures:
            lines.append(f"  FAIL: {f}")
        return "\n".join(lines)


def signoff(
    graph: TimingGraph,
    schedule: ClockSchedule,
    options: ConstraintOptions | None = None,
) -> SignoffReport:
    """Run every check against a concrete schedule and combine the verdicts."""
    return SignoffReport(
        structure=check_structure(graph, schedule),
        timing=analyze(graph, schedule, options),
        hold=check_hold(graph, schedule),
    )
