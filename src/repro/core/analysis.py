"""Fixed-schedule timing analysis (the paper's *analysis* problem).

Given a circuit and a concrete clock schedule, decide whether the timing
constraints are satisfied: compute the steady-state departure times as the
least fixpoint of the propagation constraints L2 and then check every setup
requirement and the clock constraints C1-C4.  This is the verification dual
of the design problem solved by :mod:`repro.core.mlp`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.elements import EdgeKind, FlipFlop
from repro.circuit.graph import TimingGraph
from repro.clocking.schedule import ClockSchedule
from repro.core.constraints import ConstraintOptions, build_maxplus_system
from repro.errors import DivergentTimingError
from repro.maxplus.fixpoint import least_fixpoint

_NEG_INF = float("-inf")


@dataclass(frozen=True)
class SyncTiming:
    """Steady-state timing at one synchronizer (times relative to its phase).

    ``arrival`` is the paper's A_i (``-inf`` when the synchronizer has no
    fanin); ``departure`` is D_i; ``output`` is Q_i = D_i + Delta_DQ;
    ``slack`` is the margin on the setup requirement (negative = violated);
    ``waiting`` is how long an early-arriving signal idles at a closed latch
    (the gaps in the paper's Fig. 6 strips).
    """

    name: str
    phase: str
    arrival: float
    departure: float
    output: float
    slack: float
    tol: float = 1e-6

    @property
    def waiting(self) -> float:
        if self.arrival == _NEG_INF:
            return 0.0
        return max(0.0, self.departure - self.arrival)

    @property
    def ok(self) -> bool:
        """True if the setup requirement is met (within solver tolerance)."""
        return self.slack >= -self.tol


@dataclass
class TimingReport:
    """Result of :func:`analyze`: verdict, slacks and steady-state times."""

    schedule: ClockSchedule
    timings: dict[str, SyncTiming]
    clock_violations: list[str] = field(default_factory=list)
    divergent_cycle: str | None = None
    iterations: int = 0

    @property
    def feasible(self) -> bool:
        if self.divergent_cycle is not None or self.clock_violations:
            return False
        return all(t.ok for t in self.timings.values())

    @property
    def worst_slack(self) -> float:
        if self.divergent_cycle is not None:
            return _NEG_INF
        return min((t.slack for t in self.timings.values()), default=float("inf"))

    @property
    def setup_violations(self) -> list[SyncTiming]:
        return [t for t in self.timings.values() if not t.ok]

    def departures(self) -> dict[str, float]:
        return {name: t.departure for name, t in self.timings.items()}

    def borrowing(self, tol: float = 1e-9) -> dict[str, float]:
        """Time borrowed through each transparent latch (positive D_i only).

        A positive departure time means the signal flowed through the open
        latch ``D_i`` after the phase began -- the "borrowing" that
        edge-triggered analyses cannot model and that Fig. 7's slope-1/2
        region illustrates.  Latches whose data waited for the phase
        (``D_i = 0``) borrow nothing.
        """
        return {
            name: t.departure
            for name, t in self.timings.items()
            if t.departure > tol
        }

    @property
    def total_borrowed(self) -> float:
        """Sum of all borrowed time -- 0 exactly when edge-triggering would do."""
        return sum(self.borrowing().values())

    def __str__(self) -> str:
        lines = [
            f"schedule: {self.schedule}",
            f"feasible: {self.feasible}   worst slack: {self.worst_slack:g}",
        ]
        if self.divergent_cycle:
            lines.append(f"divergent cycle: {self.divergent_cycle}")
        for v in self.clock_violations:
            lines.append(f"clock violation: {v}")
        header = f"{'sync':<12} {'phase':<8} {'A':>9} {'D':>9} {'Q':>9} {'slack':>9}"
        lines.append(header)
        for t in self.timings.values():
            arr = "-inf" if t.arrival == _NEG_INF else f"{t.arrival:.4g}"
            lines.append(
                f"{t.name:<12} {t.phase:<8} {arr:>9} {t.departure:>9.4g} "
                f"{t.output:>9.4g} {t.slack:>9.4g}"
            )
        return "\n".join(lines)


def _arrival(
    graph: TimingGraph, schedule: ClockSchedule, departures: dict[str, float], name: str
) -> float:
    """A_i = max over fanin arcs of (D_j + Delta_DQj + Delta_ji + S_{pj pi})."""
    best = _NEG_INF
    dst_phase = graph[name].phase
    for arc in graph.fanin(name):
        src = graph[arc.src]
        value = (
            departures[arc.src]
            + src.delay
            + arc.delay
            + schedule.phase_shift(src.phase, dst_phase)
        )
        best = max(best, value)
    return best


def analyze(
    graph: TimingGraph,
    schedule: ClockSchedule,
    options: ConstraintOptions | None = None,
    method: str = "event",
    tol: float = 1e-6,
) -> TimingReport:
    """Verify ``graph`` against a fixed ``schedule``.

    Computes steady-state departure times (least fixpoint of L2), arrival
    times, and setup slacks for every synchronizer; also records violations
    of the clock constraints C1-C4.  A divergent fixpoint (positive latch
    cycle) is reported rather than raised, with ``feasible = False``.
    """
    options = options or ConstraintOptions()
    margin = options.setup_margin

    clock_violations = [
        str(v) for v in schedule.violations(k_matrix=graph.k_matrix(), tol=tol)
    ]
    if options.min_width:
        for p in schedule.phases:
            if p.width < options.min_width - 1e-9:
                clock_violations.append(
                    f"XW: phase {p.name} width {p.width:g} below minimum "
                    f"{options.min_width:g}"
                )
    if options.skew:
        # Re-check C3 with the worst-case skew padding used by the
        # constraint generator: the input phase may start early and the
        # output phase may end late.
        for i, j in graph.io_phase_pairs():
            pi, pj = schedule.phases[i], schedule.phases[j]
            cji = 0 if j < i else 1
            pad = options.skew_of(pi.name).early + options.skew_of(pj.name).late
            bound = pj.start + pj.width - cji * schedule.period + pad
            if pi.start < bound - tol:
                clock_violations.append(
                    f"C3+skew: phase {pi.name} must start after the skewed "
                    f"end of {pj.name} ({pi.start:g} < {bound:g})"
                )

    system = build_maxplus_system(graph, schedule, options)
    try:
        fix = least_fixpoint(system, method=method)
    except DivergentTimingError as err:
        return TimingReport(
            schedule=schedule,
            timings={},
            clock_violations=clock_violations,
            divergent_cycle=str(err),
        )

    departures = fix.values
    timings: dict[str, SyncTiming] = {}
    for sync in graph.synchronizers:
        arrival = _arrival(graph, schedule, departures, sync.name)
        departure = departures[sync.name]
        # With skew the closing/triggering edge may come early.
        early = options.skew_of(sync.phase).early
        if sync.is_latch:
            # L1 (eq. 16): D_i + Delta_DC <= T_{p_i}.
            slack = (
                schedule[sync.phase].width
                - early
                - departure
                - sync.setup
                - margin
            )
        else:
            assert isinstance(sync, FlipFlop)
            # Arrival must beat the triggering edge by the setup time.
            if sync.edge is EdgeKind.RISE:
                deadline = -early
            else:
                deadline = schedule[sync.phase].width - early
            if arrival == _NEG_INF:
                slack = float("inf")
            else:
                slack = deadline - arrival - sync.setup - margin
        timings[sync.name] = SyncTiming(
            name=sync.name,
            phase=sync.phase,
            arrival=arrival,
            departure=departure,
            output=departure + sync.delay,
            slack=slack,
            tol=tol,
        )
    return TimingReport(
        schedule=schedule,
        timings=timings,
        clock_violations=clock_violations,
        iterations=fix.iterations,
    )
