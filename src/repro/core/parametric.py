"""Parametric delay sweeps: the piecewise-linear Tc(Delta) curves of Fig. 7.

Linear-programming theory guarantees that the optimal cycle time is a
piecewise-linear convex function of any single delay parameter.  The sweep
utilities evaluate Tc over a grid, recover the linear segments and their
breakpoints, and optionally refine breakpoint locations by bisection --
reproducing, for example 1, the paper's three segments (flat at 80 ns,
slope 1/2, slope 1) with breakpoints at Delta_41 = 20 and 100 ns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.circuit.graph import TimingGraph
from repro.core.constraints import ConstraintOptions, build_program, recost_arc_delay
from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.errors import ReproError
from repro.lp.backends import supports_warm_start
from repro.lp.basis import Basis


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated point of a sweep."""

    parameter: float
    period: float


class BasisChain:
    """Nearest-neighbor store of optimal bases along a one-parameter sweep.

    Optimal bases vary slowly along a delay sweep, but a basis from a
    *distant* point is often primal-infeasible at the new right-hand side
    (the guard then falls back to a cold solve).  Keeping every solved
    point's basis and seeding each new solve from the geometrically
    nearest one raises the warm-start hit rate substantially over a
    "last solved wins" chain -- bisection in particular revisits
    midpoints far from the most recent solve.
    """

    def __init__(self) -> None:
        self._entries: list[tuple[float, Basis]] = []
        #: pivot count of the chain's first cold solve -- the anchor the
        #: engine uses to estimate ``pivots_saved`` on warm hits.
        self.cold_hint: int = 0

    def get(self, x: float) -> Basis | None:
        """The stored basis nearest to parameter value ``x`` (None if empty)."""
        if not self._entries:
            return None
        return min(self._entries, key=lambda entry: abs(entry[0] - x))[1]

    def put(self, x: float, basis: Basis | None) -> None:
        if basis is None:
            return
        self._entries.append((float(x), basis))


@dataclass(frozen=True)
class Segment:
    """A maximal linear piece of the swept curve."""

    start: float
    end: float
    slope: float
    intercept: float  # value extrapolated to parameter = 0

    def value(self, x: float) -> float:
        return self.intercept + self.slope * x


@dataclass
class SweepResult:
    """Points and recovered piecewise-linear structure of a delay sweep."""

    points: list[SweepPoint]
    segments: list[Segment] = field(default_factory=list)

    @property
    def parameters(self) -> list[float]:
        return [p.parameter for p in self.points]

    @property
    def periods(self) -> list[float]:
        return [p.period for p in self.points]

    @property
    def breakpoints(self) -> list[float]:
        """Parameter values where the slope changes."""
        return [seg.start for seg in self.segments[1:]]

    @property
    def slopes(self) -> list[float]:
        return [seg.slope for seg in self.segments]

    def period_at(self, x: float) -> float:
        """Interpolate the curve at ``x`` using the recovered segments."""
        if not self.segments:
            raise ReproError("sweep has no recovered segments")
        for seg in self.segments:
            if seg.start - 1e-12 <= x <= seg.end + 1e-12:
                return seg.value(x)
        raise ReproError(f"{x} outside swept range")


def _fit_segments(points: Sequence[SweepPoint], slope_tol: float) -> list[Segment]:
    if len(points) < 2:
        return []
    segments: list[Segment] = []
    slopes = []
    for a, b in zip(points, points[1:]):
        dx = b.parameter - a.parameter
        if dx <= 0:
            raise ReproError("sweep grid must be strictly increasing")
        slopes.append((b.period - a.period) / dx)
    start_idx = 0
    for i in range(1, len(slopes) + 1):
        boundary = i == len(slopes) or abs(slopes[i] - slopes[start_idx]) > slope_tol
        if boundary:
            a = points[start_idx]
            b = points[i]
            slope = (b.period - a.period) / (b.parameter - a.parameter)
            segments.append(
                Segment(
                    start=a.parameter,
                    end=b.parameter,
                    slope=slope,
                    intercept=a.period - slope * a.parameter,
                )
            )
            start_idx = i
    return segments


def sweep(
    evaluate: Callable[[float], float],
    grid: Sequence[float],
    slope_tol: float = 1e-6,
) -> SweepResult:
    """Evaluate ``evaluate`` over ``grid`` and recover linear segments."""
    if len(grid) < 2:
        raise ReproError("sweep needs at least two grid points")
    pts = [SweepPoint(float(x), float(evaluate(float(x)))) for x in grid]
    return SweepResult(points=pts, segments=_fit_segments(pts, slope_tol))


def sweep_delay(
    graph: TimingGraph,
    src: str,
    dst: str,
    grid: Sequence[float],
    options: ConstraintOptions | None = None,
    mlp: MLPOptions | None = None,
    slope_tol: float = 1e-6,
    jobs: int = 1,
    engine=None,
) -> SweepResult:
    """Optimal Tc as a function of one combinational arc delay.

    This is exactly the experiment of the paper's Fig. 7 (sweeping
    Delta_41 of example 1).

    Evaluation goes through :class:`repro.engine.runner.Engine`: grid
    points are deduplicated by content hash and evaluated adaptively
    (convexity lets proven-linear spans be interpolated instead of
    solved), so the sweep performs fewer LP solves than it has grid
    points.  ``jobs`` sets the worker count for a throwaway engine;
    passing ``engine`` instead shares its cache and metrics across
    sweeps.  The result is independent of the worker count -- a
    ``jobs=4`` run returns bit-identical segments to a serial run.
    """
    # Imported here because repro.engine.runner imports this module.
    from repro.engine.jobspec import SweepJob
    from repro.engine.runner import Engine

    if engine is None:
        engine = Engine(jobs=jobs)
    job = SweepJob(
        graph=graph,
        src=src,
        dst=dst,
        grid=tuple(float(x) for x in grid),
        options=options,
        mlp=mlp,
        slope_tol=slope_tol,
        label=f"sweep {src}->{dst}",
    )
    return engine.map_sweep(job)


def _reconstruct_pieces(
    evaluate: Callable[[float], float],
    lo: float,
    f_lo: float,
    hi: float,
    f_hi: float,
    value_tol: float,
    min_width: float,
) -> list[tuple[float, float, float, float]]:
    """Recursively split [lo, hi] until each piece is linear (chord test)."""
    mid = 0.5 * (lo + hi)
    if hi - lo <= min_width:
        return [(lo, f_lo, hi, f_hi)]
    f_mid = evaluate(mid)
    chord = 0.5 * (f_lo + f_hi)
    if abs(f_mid - chord) <= value_tol:
        return [(lo, f_lo, hi, f_hi)]
    left = _reconstruct_pieces(evaluate, lo, f_lo, mid, f_mid, value_tol, min_width)
    right = _reconstruct_pieces(evaluate, mid, f_mid, hi, f_hi, value_tol, min_width)
    return left + right


def exact_sweep(
    evaluate: Callable[[float], float],
    lo: float,
    hi: float,
    value_tol: float = 1e-7,
    slope_tol: float = 1e-6,
    min_width: float = 1e-6,
) -> SweepResult:
    """Recover the exact piecewise-linear structure of a convex curve.

    Unlike :func:`sweep`, which samples a fixed grid, this adaptively
    bisects (convexity makes the chord test exact up to tolerance) and then
    intersects neighboring segment lines, so breakpoint locations come out
    to solver precision with a number of evaluations proportional to the
    number of segments -- the parametric-programming capability Section VI
    anticipates.
    """
    if hi <= lo:
        raise ReproError(f"need hi > lo, got lo={lo}, hi={hi}")
    f_lo, f_hi = evaluate(lo), evaluate(hi)
    pieces = _reconstruct_pieces(evaluate, lo, f_lo, hi, f_hi, value_tol, min_width)

    # Pieces that bottomed out at the recursion resolution straddle a kink
    # and carry a blended slope; drop them (their extent is below the
    # resolution anyway) and recover the kink by intersecting neighbors.
    threshold = max(8.0 * min_width, (hi - lo) * 1e-9)
    wide = [p for p in pieces if (p[2] - p[0]) > threshold]
    if not wide:  # pathological: keep everything rather than nothing
        wide = pieces

    # Merge pieces with equal slopes, then intersect neighbors for exact
    # breakpoints.
    merged: list[tuple[float, float]] = []  # (slope, intercept)
    for a, fa, b, fb in wide:
        slope = (fb - fa) / (b - a)
        intercept = fa - slope * a
        if merged and abs(slope - merged[-1][0]) <= slope_tol:
            continue
        merged.append((slope, intercept))

    segments: list[Segment] = []
    boundaries = [lo]
    for idx in range(1, len(merged)):
        (s1, c1), (s2, c2) = merged[idx - 1], merged[idx]
        boundaries.append((c1 - c2) / (s2 - s1))
    boundaries.append(hi)
    for (slope, intercept), a, b in zip(
        merged, boundaries, boundaries[1:]
    ):
        segments.append(Segment(start=a, end=b, slope=slope, intercept=intercept))

    points = [SweepPoint(lo, f_lo), SweepPoint(hi, f_hi)]
    return SweepResult(points=points, segments=segments)


def exact_sweep_delay(
    graph: TimingGraph,
    src: str,
    dst: str,
    lo: float,
    hi: float,
    options: ConstraintOptions | None = None,
    mlp: MLPOptions | None = None,
    value_tol: float = 1e-7,
    slope_tol: float = 1e-6,
    engine=None,
) -> SweepResult:
    """Exact piecewise-linear Tc(Delta_{src,dst}) over [lo, hi].

    Returns segments whose breakpoints are located by line intersection
    rather than grid resolution; for example 1 this recovers the Fig. 7
    breakpoints at 20 and 100 ns to solver precision.

    Every evaluation is routed through an engine cache, so the duplicate
    ``evaluate(x)`` calls the recursive chord test makes at shared piece
    endpoints are served from the cache instead of re-solved.
    """
    from repro.engine.runner import Engine

    if engine is None:
        engine = Engine(jobs=1)
    evaluate = delay_evaluator(
        graph, src, dst, options=options, mlp=mlp, engine=engine
    )
    return exact_sweep(
        evaluate, lo, hi, value_tol=value_tol, slope_tol=slope_tol
    )


def delay_evaluator(
    graph: TimingGraph,
    src: str,
    dst: str,
    options: ConstraintOptions | None = None,
    mlp: MLPOptions | None = None,
    engine=None,
) -> Callable[[float], float]:
    """A cached ``x -> optimal Tc`` evaluator for one arc delay.

    Without an engine this is the direct Algorithm-MLP call; with one,
    repeated evaluations at the same ``x`` hit the result cache.  The
    sweep consumes only the period, so the default options skip the verify
    and compact passes (one LP solve per distinct ``x``) and use the
    revised backend so successive evaluations warm-start from the previous
    point's optimal basis.

    Warm chaining works in both modes: the direct path re-costs one
    constraint system per value (:func:`recost_arc_delay`) and hands the
    last optimal basis to the next solve; the engine path threads the
    basis through the job's non-hashed ``warm_start`` slot, so cache keys
    -- and therefore results -- are identical to a cold run.
    """
    mlp = mlp or MLPOptions(verify=False, compact=False, backend="revised")
    chain_warm = mlp.warm_start and supports_warm_start(mlp.backend)
    chain = BasisChain()
    if engine is None:
        state: dict = {"smo": None}

        def evaluate(value: float) -> float:
            if state["smo"] is None:
                state["smo"] = build_program(graph, options or ConstraintOptions())
            smo = recost_arc_delay(state["smo"], src, dst, float(value))
            warm = chain.get(value) if chain_warm else None
            result = minimize_cycle_time(
                smo.graph, options, mlp, warm_start=warm, smo=smo
            )
            if chain_warm:
                chain.put(value, result.extra.get("basis"))
            return result.period

        return evaluate

    from repro.engine.jobspec import MinimizeJob

    def evaluate_cached(value: float) -> float:
        job = MinimizeJob(
            graph=graph,
            options=options,
            mlp=mlp,
            arc_override=(src, dst, float(value)),
            label=f"{src}->{dst}={value:g}",
            warm_start=chain.get(value) if chain_warm else None,
            cold_pivots_hint=chain.cold_hint,
        )
        result = engine.run_jobs([job])[0]
        if not result.ok:
            raise ReproError(
                f"evaluation failed at {value:g}: {result.error}"
            )
        if chain_warm:
            basis_data = result.payload.get("basis")
            if basis_data:
                chain.put(value, Basis.from_dict(basis_data))
            if not chain.cold_hint:
                chain.cold_hint = int(result.metrics.get("lp_iterations", 0))
        return float(result.value)

    return evaluate_cached


def refine_breakpoint(
    evaluate: Callable[[float], float],
    lo: float,
    hi: float,
    tol: float = 1e-4,
) -> float:
    """Locate a slope change of a convex piecewise-linear curve in [lo, hi].

    Uses the chord test: the curve departs from the chord exactly around
    the breakpoint; ternary-style bisection on the deviation converges to
    the kink.
    """
    f_lo, f_hi = evaluate(lo), evaluate(hi)
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        f_mid = evaluate(mid)
        chord = f_lo + (f_hi - f_lo) * (mid - lo) / (hi - lo)
        # Convexity: curve <= chord; the kink is on the side of the larger gap.
        left_gap = (f_lo + f_mid) / 2 - evaluate((lo + mid) / 2)
        right_gap = (f_mid + f_hi) / 2 - evaluate((mid + hi) / 2)
        tiny = 1e-12 * max(1.0, abs(f_lo), abs(f_hi))
        if chord - f_mid > tiny and left_gap <= tiny and right_gap <= tiny:
            # Both halves are linear yet the midpoint sits below the full
            # chord: the midpoint is exactly the kink.
            return mid
        if left_gap >= right_gap:
            hi, f_hi = mid, f_mid
        else:
            lo, f_lo = mid, f_mid
    return 0.5 * (lo + hi)
