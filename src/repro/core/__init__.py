"""The paper's primary contribution: SMO constraints and Algorithm MLP.

* :mod:`repro.core.constraints` -- generate the clock constraints C1-C4 and
  latch constraints L1/L2R/L3 for any circuit and clocking scheme
  (Section III), as a linear program with purely topological coefficients;
* :mod:`repro.core.mlp` -- Algorithm MLP: solve the LP relaxation P2, then
  slide departure times to a P1 fixpoint (Section IV, Theorem 1);
* :mod:`repro.core.analysis` -- the *analysis* problem: verify a circuit
  against a fixed clock schedule;
* :mod:`repro.core.critical` -- critical segments from LP slacks/duals;
* :mod:`repro.core.parametric` -- piecewise-linear Tc(delay) sweeps (Fig. 7);
* :mod:`repro.core.shortpath` -- hold-time (short-path) extension.
"""

from repro.core.analysis import SyncTiming, TimingReport, analyze
from repro.core.constraints import (
    TC,
    ConstraintOptions,
    SMOProgram,
    build_maxplus_system,
    build_program,
    d_var,
    s_var,
    t_var,
)
from repro.core.critical import CriticalReport, critical_segments
from repro.core.minperiod import feasible_period, min_period_search
from repro.core.mlp import MLPOptions, OptimalClockResult, minimize_cycle_time
from repro.core.parametric import (
    SweepPoint,
    SweepResult,
    exact_sweep,
    exact_sweep_delay,
    sweep_delay,
)
from repro.core.shortpath import HoldReport, check_hold, required_padding
from repro.core.signoff import SignoffReport, signoff
from repro.core.theorem1 import P3Result, solve_p3
from repro.core.tuning import TuningResult, maximize_slack

__all__ = [
    "ConstraintOptions",
    "SMOProgram",
    "build_program",
    "build_maxplus_system",
    "TC",
    "s_var",
    "t_var",
    "d_var",
    "SyncTiming",
    "TimingReport",
    "analyze",
    "MLPOptions",
    "OptimalClockResult",
    "minimize_cycle_time",
    "CriticalReport",
    "critical_segments",
    "SweepPoint",
    "SweepResult",
    "sweep_delay",
    "exact_sweep",
    "exact_sweep_delay",
    "HoldReport",
    "check_hold",
    "required_padding",
    "feasible_period",
    "min_period_search",
    "TuningResult",
    "maximize_slack",
    "P3Result",
    "solve_p3",
    "SignoffReport",
    "signoff",
]
