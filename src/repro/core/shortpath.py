"""Short-path (hold-time) analysis: the early-arrival extension.

The paper treats only the long-path (late-arrival) problem and cites Unger
for the short-path side; this module supplies that complement.  For a fixed
clock schedule it computes the *earliest* steady-state departure and
arrival times (a min-plus fixpoint, the dual of the long-path max-plus
system) and checks that no latch's newly-launched data races around and
overwrites the previous cycle's value before it is safely held:

    a_i + Tc >= close(p_i) + hold_i

where ``a_i`` is the earliest arrival relative to the start of phase
``p_i`` and ``close(p_i)`` is the latch's closing edge (``T_{p_i}``; for a
rising-edge flip-flop the sampling edge, 0).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.elements import EdgeKind, FlipFlop
from repro.circuit.graph import TimingGraph
from repro.clocking.schedule import ClockSchedule
from repro.errors import AnalysisError

_POS_INF = float("inf")


@dataclass(frozen=True)
class HoldTiming:
    """Earliest-arrival record for one synchronizer."""

    name: str
    phase: str
    early_arrival: float  # +inf when no fanin
    early_departure: float
    slack: float  # margin on the hold requirement (negative = violated)
    tol: float = 1e-9

    @property
    def ok(self) -> bool:
        """True if the hold requirement is met (within float tolerance)."""
        return self.slack >= -self.tol


@dataclass
class HoldReport:
    """Result of :func:`check_hold`."""

    schedule: ClockSchedule
    timings: dict[str, HoldTiming] = field(default_factory=dict)
    iterations: int = 0
    #: set when the earliest-arrival fixpoint does not exist (a positive
    #: min-plus cycle: the schedule is unclockable, so hold is moot)
    divergent: str | None = None

    @property
    def feasible(self) -> bool:
        if self.divergent is not None:
            return False
        return all(t.ok for t in self.timings.values())

    @property
    def worst_slack(self) -> float:
        if self.divergent is not None:
            return float("-inf")
        return min((t.slack for t in self.timings.values()), default=_POS_INF)

    @property
    def violations(self) -> list[HoldTiming]:
        return [t for t in self.timings.values() if not t.ok]


def _early_fixpoint(
    graph: TimingGraph, schedule: ClockSchedule, tol: float = 1e-9
) -> tuple[dict[str, float], int]:
    """Earliest departures: least fixpoint of d_i = max(0, min-arrival_i).

    Uses the conservative convention that a synchronizer with no fanin can
    launch a new value as soon as its phase opens (d = 0).  The map is
    monotone in the departures, so iteration from all-zeros converges to
    the least (earliest, most pessimistic) consistent solution.
    """
    departures = {name: 0.0 for name in graph.names}
    for ff in graph.flipflops:
        departures[ff.name] = (
            0.0 if ff.edge is EdgeKind.RISE else schedule[ff.phase].width
        )
    sweeps = 0
    for sweeps in range(1, len(graph.names) + 3):
        changed = False
        for sync in graph.synchronizers:
            if not sync.is_latch:
                continue  # flip-flop departures are pinned to the edge
            earliest_arrival = _POS_INF
            for arc in graph.fanin(sync.name):
                src = graph[arc.src]
                value = (
                    departures[arc.src]
                    + src.delay  # contamination conservatively = 0 would be
                    # even more pessimistic; we use the declared latch delay
                    + arc.min_delay
                    + schedule.phase_shift(src.phase, sync.phase)
                )
                earliest_arrival = min(earliest_arrival, value)
            new = 0.0 if earliest_arrival == _POS_INF else max(0.0, earliest_arrival)
            if abs(new - departures[sync.name]) > tol:
                departures[sync.name] = new
                changed = True
        if not changed:
            return departures, sweeps
    # A positive min-plus cycle: earliest arrivals recede every sweep.
    # The schedule cannot support a periodic steady state at all.
    raise AnalysisError(
        "earliest-arrival fixpoint diverges: the schedule admits no "
        "periodic steady state (positive short-path cycle)"
    )


def check_hold(graph: TimingGraph, schedule: ClockSchedule) -> HoldReport:
    """Check every synchronizer's hold requirement under ``schedule``.

    The next cycle's earliest arrival (``a_i + Tc`` in absolute time) must
    come no sooner than ``hold`` after the element stops listening to its
    input: the closing edge ``T_{p_i}`` for latches and falling-edge
    flip-flops, the sampling edge (time 0) for rising-edge flip-flops.

    A schedule with no periodic steady state (divergent earliest-arrival
    fixpoint) is reported as infeasible via ``HoldReport.divergent`` rather
    than raised.
    """
    try:
        departures, sweeps = _early_fixpoint(graph, schedule)
    except AnalysisError as err:
        return HoldReport(schedule=schedule, divergent=str(err))
    tc = schedule.period
    report = HoldReport(schedule=schedule, iterations=sweeps)
    for sync in graph.synchronizers:
        earliest = _POS_INF
        for arc in graph.fanin(sync.name):
            src = graph[arc.src]
            value = (
                departures[arc.src]
                + src.delay
                + arc.min_delay
                + schedule.phase_shift(src.phase, sync.phase)
            )
            earliest = min(earliest, value)
        if isinstance(sync, FlipFlop) and sync.edge is EdgeKind.RISE:
            close = 0.0
        else:
            close = schedule[sync.phase].width
        if earliest == _POS_INF:
            slack = _POS_INF
        else:
            slack = (earliest + tc) - (close + sync.hold)
        report.timings[sync.name] = HoldTiming(
            name=sync.name,
            phase=sync.phase,
            early_arrival=earliest,
            early_departure=departures[sync.name],
            slack=slack,
        )
    return report


def required_padding(
    graph: TimingGraph, schedule: ClockSchedule
) -> dict[tuple[str, str], float]:
    """Minimum-delay padding that repairs every hold violation.

    For each synchronizer whose hold slack is negative, every fanin arc
    capable of delivering the earliest (racing) arrival needs its short
    path slowed by the shortfall.  Returns the per-arc extra ``min_delay``
    to insert (the classic hold-fix buffer-insertion recipe); arcs that
    are not on any violating early path are absent from the mapping.

    The returned padding is *sufficient*: adding it (to both min and max
    delays, the conservative buffer model) and re-running
    :func:`check_hold` yields no violations, provided the padded max delays
    still meet setup -- which the caller should re-verify with
    :func:`repro.core.analysis.analyze`.
    """
    report = check_hold(graph, schedule)
    padding: dict[tuple[str, str], float] = {}
    departures, _ = _early_fixpoint(graph, schedule)
    for timing in report.timings.values():
        if timing.ok:
            continue
        shortfall = -timing.slack
        for arc in graph.fanin(timing.name):
            src = graph[arc.src]
            arrival = (
                departures[arc.src]
                + src.delay
                + arc.min_delay
                + schedule.phase_shift(src.phase, timing.phase)
            )
            # Any early path within `shortfall` of the racing arrival must
            # be slowed enough to clear the hold window.
            deficit = (timing.early_arrival + shortfall) - arrival
            if deficit > 0:
                key = (arc.src, arc.dst)
                padding[key] = max(padding.get(key, 0.0), deficit)
    return padding


def apply_padding(
    graph: TimingGraph, padding: dict[tuple[str, str], float]
) -> TimingGraph:
    """Insert hold-fix buffers: per-arc delay added to both min and max.

    A buffer slows the fast paths through an arc but also its slow ones,
    so the padding is added to the arc's ``min_delay`` *and* ``delay``
    (the conservative model); re-verify setup afterwards.
    """
    from repro.circuit.graph import DelayArc

    arcs = []
    for arc in graph.arcs:
        extra = padding.get((arc.src, arc.dst), 0.0)
        arcs.append(
            DelayArc(
                arc.src,
                arc.dst,
                arc.delay + extra,
                arc.min_delay + extra,
                arc.label,
            )
        )
    return TimingGraph(graph.phase_names, graph.synchronizers, arcs)
