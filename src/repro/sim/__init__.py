"""Cycle-accurate latch-level simulation.

An independent cross-check of the analytical machinery: instead of solving
the max-plus fixpoint in phase-relative coordinates, the simulator plays
the circuit forward in *absolute time*, cycle by cycle, applying the
physical rules directly -- a latch passes data while open, holds it while
closed, and data takes real combinational delays to travel.  If the
analytical model is right, the simulated departure times settle into a
periodic steady state that matches :func:`repro.core.analysis.analyze`
exactly, and setup violations appear at the same latches.
"""

from repro.sim.simulator import CycleRecord, SimulationResult, simulate

__all__ = ["CycleRecord", "SimulationResult", "simulate"]
