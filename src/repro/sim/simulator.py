"""Forward simulation of a latch circuit under a concrete clock schedule."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping

from repro.circuit.elements import EdgeKind, FlipFlop
from repro.circuit.graph import TimingGraph
from repro.clocking.schedule import ClockSchedule
from repro.clocking.skew import SkewBound
from repro.errors import AnalysisError

_NEG_INF = float("-inf")


@dataclass(frozen=True)
class CycleRecord:
    """Timing of one synchronizer in one simulated cycle (absolute times)."""

    sync: str
    cycle: int
    open_time: float
    close_time: float
    arrival: float  # -inf when nothing has arrived yet
    departure: float
    setup_slack: float

    @property
    def ok(self) -> bool:
        return self.setup_slack >= -1e-9

    @property
    def relative_departure(self) -> float:
        """Departure re-referenced to the phase start (the paper's D_i)."""
        return self.departure - self.open_time


@dataclass
class SimulationResult:
    """Outcome of :func:`simulate`."""

    schedule: ClockSchedule
    records: dict[tuple[str, int], CycleRecord] = field(default_factory=dict)
    cycles: int = 0
    settled_at: int | None = None  # first cycle of periodic steady state

    @property
    def converged(self) -> bool:
        return self.settled_at is not None

    def steady_departures(self) -> dict[str, float]:
        """Phase-relative departures in the periodic steady state."""
        if self.settled_at is None:
            raise AnalysisError("simulation did not reach a steady state")
        last = self.cycles - 1
        return {
            name: self.records[(name, last)].relative_departure
            for name in {k[0] for k in self.records}
        }

    def violations(self, from_cycle: int | None = None) -> list[CycleRecord]:
        """Setup violations at or after ``from_cycle`` (default: steady state)."""
        start = from_cycle if from_cycle is not None else (self.settled_at or 0)
        return [
            r
            for r in self.records.values()
            if r.cycle >= start and not r.ok
        ]

    @property
    def feasible(self) -> bool:
        """True if the steady state meets every setup requirement."""
        return self.converged and not self.violations()

    def clean_after(self, warmup: int) -> bool:
        """True if no setup violation occurs from cycle ``warmup`` on.

        The right verdict for jittered runs, which never settle into an
        exactly periodic steady state.
        """
        return not self.violations(from_cycle=warmup)


def simulate(
    graph: TimingGraph,
    schedule: ClockSchedule,
    cycles: int = 64,
    tol: float = 1e-9,
    jitter: Mapping[str, SkewBound] | None = None,
    seed: int = 0,
) -> SimulationResult:
    """Play the circuit forward for up to ``cycles`` clock cycles.

    Initial condition: in "cycle -1" every synchronizer is assumed to have
    launched its reset value exactly at its enabling instant.  The
    simulation then applies, per cycle and in phase order:

    * latch: departure = max(arrival, phase opening); setup requires the
      arrival to precede the closing edge by the setup time;
    * rising-edge flip-flop: departure pinned to the phase opening;
    * falling-edge flip-flop: departure pinned to the phase closing edge.

    The run stops early once relative departures repeat from one cycle to
    the next (periodic steady state).  Within a cycle, same-cycle data
    dependencies always point from earlier to later phases (crossing the
    cycle boundary otherwise), so processing synchronizers in phase order
    is exact.

    ``jitter`` injects clock uncertainty: each phase's edges in each cycle
    shift by an independent uniform draw from its
    :class:`~repro.clocking.skew.SkewBound` (``[-early, +late]``),
    deterministic given ``seed``.  With jitter active the run never
    settles into a perfectly periodic steady state, so it executes all
    ``cycles`` cycles and the verdict comes from
    ``violations(from_cycle=...)`` / ``feasible``; this is the stochastic
    cross-check of the worst-case skew-aware optimizer.
    """
    if cycles < 1:
        raise AnalysisError(f"need at least one cycle, got {cycles}")
    if schedule.period <= 0:
        raise AnalysisError("simulation requires a positive clock period")
    if tuple(schedule.names) != tuple(graph.phase_names):
        raise AnalysisError(
            f"schedule phases {schedule.names} do not match circuit phases "
            f"{graph.phase_names}"
        )
    tc = schedule.period
    result = SimulationResult(schedule=schedule)

    rng = random.Random(seed)
    offsets: dict[tuple[str, int], float] = {}
    if jitter:
        for bad in set(jitter) - set(schedule.names):
            raise AnalysisError(f"jitter bound for unknown phase {bad!r}")
        for n in range(-1, cycles):
            for name in schedule.names:
                bound = jitter.get(name, SkewBound())
                offsets[(name, n)] = rng.uniform(-bound.early, bound.late)

    def phase_of(name: str):
        return schedule[graph[name].phase]

    def open_time(name: str, n: int) -> float:
        nominal = phase_of(name).start + n * tc
        return nominal + offsets.get((graph[name].phase, n), 0.0)

    # departure[(name, n)] -- absolute departure time in cycle n.  Cycle -1
    # seeds the reset state.
    departure: dict[tuple[str, int], float] = {}
    for sync in graph.synchronizers:
        if isinstance(sync, FlipFlop) and sync.edge is EdgeKind.FALL:
            departure[(sync.name, -1)] = open_time(sync.name, -1) + phase_of(
                sync.name
            ).width
        else:
            departure[(sync.name, -1)] = open_time(sync.name, -1)

    order = sorted(
        graph.synchronizers, key=lambda s: graph.phase_index(s.phase)
    )
    prev_relative: dict[str, float] | None = None

    for n in range(cycles):
        for sync in order:
            arrival = _NEG_INF
            for arc in graph.fanin(sync.name):
                src = graph[arc.src]
                # An arc stays within the cycle when the source phase
                # strictly precedes the destination phase (C_ij = 0) and
                # crosses the boundary otherwise (C_ij = 1), mirroring the
                # phase-shift operator.
                crossing = (
                    0
                    if graph.phase_index(src.phase) < graph.phase_index(sync.phase)
                    else 1
                )
                src_cycle = n - crossing
                value = departure[(arc.src, src_cycle)] + src.delay + arc.delay
                arrival = max(arrival, value)

            opening = open_time(sync.name, n)
            closing = opening + phase_of(sync.name).width
            if isinstance(sync, FlipFlop):
                if sync.edge is EdgeKind.RISE:
                    depart = opening
                    deadline = opening
                else:
                    depart = closing
                    deadline = closing
                slack = (
                    float("inf")
                    if arrival == _NEG_INF
                    else deadline - sync.setup - arrival
                )
            else:
                depart = opening if arrival == _NEG_INF else max(arrival, opening)
                # The paper's "realistic" setup form (eq. 11): the departing
                # signal, not just the raw arrival, must precede the closing
                # edge by the setup time.  This matches analyze() exactly.
                slack = closing - sync.setup - depart
            departure[(sync.name, n)] = depart
            result.records[(sync.name, n)] = CycleRecord(
                sync=sync.name,
                cycle=n,
                open_time=opening,
                close_time=closing,
                arrival=arrival,
                departure=depart,
                setup_slack=slack,
            )
        relative = {
            s.name: departure[(s.name, n)] - open_time(s.name, n) for s in order
        }
        result.cycles = n + 1
        if prev_relative is not None and all(
            abs(relative[k] - prev_relative[k]) <= tol for k in relative
        ):
            result.settled_at = n
            break
        prev_relative = relative
    return result
