"""Static analysis over SMO constraint systems (see ``docs/LINT.md``).

Three passes, usable independently or together through :func:`run_lint`:

1. **Constraint-graph diagnostics** (:mod:`repro.lint.graphdiag`): lower
   the generated LP to a parametric difference-constraint graph, detect
   infeasibility by Bellman-Ford with a negative-cycle certificate naming
   the offending C1-C4/L1-L3 rows, and compute a provable Tc lower bound
   (equal to the LP optimum when nothing is skipped) by Karp's
   minimum-cycle-mean -- no LP solve required.
2. **Rule engine** (:mod:`repro.lint.rules`): coded structural and
   schedule-dependent checks (``LINT1xx``/``LINT2xx``), absorbing the
   legacy :func:`repro.circuit.validate.check_structure` messages.
3. **Sanitizer** (:mod:`repro.lint.sanitize`): a-posteriori verification
   of a solved schedule against every P1 constraint with per-row slack.
"""

from repro.lint.graphdiag import (
    ConstraintGraph,
    DiffEdge,
    GraphDiagnostics,
    InfeasibilityCertificate,
    TcBound,
    build_constraint_graph,
    clear_graph_cache,
    constraint_graph_for,
    diagnose,
    find_negative_cycle,
    graph_cache_stats,
    karp_min_cycle_mean,
    structural_negative_cycle,
    structure_fingerprint,
    tc_lower_bound,
)
from repro.lint.report import LintFinding, LintReport, Severity
from repro.lint.rules import LintRule, get_rule, registered_rules, run_lint, run_rules
from repro.lint.sanitize import (
    ConstraintSlack,
    SanitizeReport,
    sanitize_result,
    sanitize_solution,
    solution_assignment,
)

__all__ = [
    "ConstraintGraph",
    "ConstraintSlack",
    "DiffEdge",
    "GraphDiagnostics",
    "InfeasibilityCertificate",
    "LintFinding",
    "LintReport",
    "LintRule",
    "SanitizeReport",
    "Severity",
    "TcBound",
    "build_constraint_graph",
    "clear_graph_cache",
    "constraint_graph_for",
    "diagnose",
    "find_negative_cycle",
    "get_rule",
    "graph_cache_stats",
    "karp_min_cycle_mean",
    "structure_fingerprint",
    "registered_rules",
    "run_lint",
    "run_rules",
    "sanitize_result",
    "sanitize_solution",
    "solution_assignment",
    "structural_negative_cycle",
    "tc_lower_bound",
]
