"""Structured findings for the lint subsystem.

A :class:`LintFinding` is one diagnosed problem -- identified by a stable
rule code, carrying a severity, a human-readable message and an optional
fix hint -- and a :class:`LintReport` aggregates the findings of one run
over a ``(circuit, schedule)`` pair.  Reports render to plain text for the
CLI and to JSON-serializable dicts for machine consumers (the batch
engine's payloads and the ``repro lint --format json`` output).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator


class Severity(str, enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings violate the paper's stated preconditions or prove
    the constraint system infeasible -- solving is pointless; ``WARNING``
    findings are legal but usually unintended; ``INFO`` findings are
    advisory observations.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]


_SEVERITY_RANK = {Severity.ERROR: 2, Severity.WARNING: 1, Severity.INFO: 0}


@dataclass(frozen=True)
class LintFinding:
    """One diagnosed problem.

    ``code`` is the stable rule identifier (``LINT1xx`` structural,
    ``LINT2xx`` schedule-dependent, ``LINT3xx`` constraint-graph; see
    ``docs/LINT.md``); ``subjects`` names the circuit objects involved
    (latches, phases, arcs, constraint rows).
    """

    code: str
    severity: Severity
    message: str
    subjects: tuple[str, ...] = ()
    fix_hint: str | None = None
    data: dict[str, Any] = field(default_factory=dict, compare=False)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "subjects": list(self.subjects),
        }
        if self.fix_hint:
            out["fix_hint"] = self.fix_hint
        if self.data:
            out["data"] = dict(self.data)
        return out

    def __str__(self) -> str:
        return f"{self.severity.value}[{self.code}] {self.message}"


@dataclass
class LintReport:
    """All findings of one lint run, plus the machine diagnostics blob.

    ``diagnostics`` carries the constraint-graph analysis results (the
    infeasibility certificate and the Tc lower bound) when the graph pass
    ran; rule-only runs leave it ``None``.
    """

    findings: list[LintFinding] = field(default_factory=list)
    diagnostics: dict[str, Any] | None = None
    source: str = ""

    def add(self, finding: LintFinding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Iterable[LintFinding]) -> None:
        self.findings.extend(findings)

    def __iter__(self) -> Iterator[LintFinding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    @property
    def errors(self) -> list[LintFinding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[LintFinding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no error-severity finding is present."""
        return not self.errors

    def by_severity(self) -> list[LintFinding]:
        """Findings sorted most severe first (stable within a severity)."""
        return sorted(
            self.findings, key=lambda f: (-f.severity.rank, f.code)
        )

    def counts(self) -> dict[str, int]:
        out = {"error": 0, "warning": 0, "info": 0}
        for finding in self.findings:
            out[finding.severity.value] += 1
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "source": self.source,
            "ok": self.ok,
            "counts": self.counts(),
            "findings": [f.to_dict() for f in self.by_severity()],
            "diagnostics": self.diagnostics,
        }

    def format(self) -> str:
        """Plain-text rendering for the CLI."""
        lines: list[str] = []
        head = self.source or "lint"
        counts = self.counts()
        summary = ", ".join(
            f"{n} {kind}{'s' if n != 1 else ''}"
            for kind, n in counts.items()
            if n
        )
        lines.append(f"{head}: {summary or 'clean'}")
        for finding in self.by_severity():
            lines.append(f"  {finding}")
            if finding.fix_hint:
                lines.append(f"      hint: {finding.fix_hint}")
        return "\n".join(lines)
