"""A-posteriori verification of solved schedules against every P1 row.

Algorithm MLP ends with a clock schedule and slid departure times that are
claimed to satisfy P1: every explicit SMO row (C1-C3, L1, L2R, FF, FS and
the configured extensions), the implicit nonnegativity bounds (C4/L3), and
-- beyond the LP relaxation -- *tightness* of the propagation equalities
L2 (each departure must be a fixpoint of the max constraints, not merely
above one).  The sanitizer re-derives all of that from scratch: it
evaluates the full constraint system at the solution point with
per-constraint slacks and re-applies the max-plus update map once, so a
regression anywhere in the warm-start, kernel or slide machinery shows up
as a named violated row instead of a silently wrong schedule downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from repro.circuit.graph import TimingGraph
from repro.clocking.schedule import ClockSchedule
from repro.core.constraints import (
    TC,
    ConstraintOptions,
    SMOProgram,
    build_maxplus_system,
    build_program,
    d_var,
    s_var,
    t_var,
)
from repro.errors import AnalysisError
from repro.lp.model import Sense

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports lint)
    from repro.core.mlp import OptimalClockResult


@dataclass(frozen=True)
class ConstraintSlack:
    """Signed slack of one constraint at the solution point.

    Positive slack means satisfied with margin; negative means violated by
    that amount.  Equality rows report ``-|lhs - rhs|`` (never positive).
    """

    name: str
    family: str
    slack: float

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "family": self.family, "slack": self.slack}


@dataclass
class SanitizeReport:
    """Outcome of :func:`sanitize_solution`.

    ``violations`` lists the rows whose slack is below ``-tol``;
    ``tightness_residual`` is ``max |F(D) - D|`` of the max-plus update map
    at the departure vector (nonzero means some departure is not actually a
    fixpoint -- feasible for the LP relaxation P2, but not a valid P1
    point).  ``worst`` is the most negative slack observed (0 when clean).
    """

    checked: int = 0
    tol: float = 1e-6
    violations: list[ConstraintSlack] = field(default_factory=list)
    tightness_residual: float = 0.0
    min_slack: float = 0.0
    min_slack_constraint: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations and self.tightness_residual <= self.tol

    @property
    def worst(self) -> float:
        if not self.violations:
            return 0.0
        return min(v.slack for v in self.violations)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "checked": self.checked,
            "tol": self.tol,
            "violations": [v.to_dict() for v in self.violations],
            "tightness_residual": self.tightness_residual,
            "min_slack": self.min_slack,
            "min_slack_constraint": self.min_slack_constraint,
        }

    def format(self) -> str:
        if self.ok:
            return (
                f"sanitize: clean ({self.checked} constraints, min slack "
                f"{self.min_slack:g} at {self.min_slack_constraint or '-'}, "
                f"tightness residual {self.tightness_residual:g})"
            )
        lines = [
            f"sanitize: {len(self.violations)} violated constraint(s) "
            f"of {self.checked} (tol {self.tol:g})"
        ]
        for violation in sorted(self.violations, key=lambda v: v.slack):
            lines.append(
                f"  {violation.name} [{violation.family}]: "
                f"slack {violation.slack:g}"
            )
        if self.tightness_residual > self.tol:
            lines.append(
                f"  L2 tightness residual {self.tightness_residual:g} "
                "(departures are not a fixpoint)"
            )
        return "\n".join(lines)


def solution_assignment(
    graph: TimingGraph,
    schedule: ClockSchedule,
    departures: Mapping[str, float],
) -> dict[str, float]:
    """The LP variable assignment encoded by a solved schedule."""
    values: dict[str, float] = {TC: schedule.period}
    for phase in schedule.phases:
        values[s_var(phase.name)] = phase.start
        values[t_var(phase.name)] = phase.width
    for sync in graph.synchronizers:
        if sync.name not in departures:
            raise AnalysisError(
                f"sanitize: no departure time for synchronizer {sync.name!r}"
            )
        values[d_var(sync.name)] = departures[sync.name]
    return values


def sanitize_solution(
    graph: TimingGraph,
    schedule: ClockSchedule,
    departures: Mapping[str, float],
    options: ConstraintOptions | None = None,
    smo: SMOProgram | None = None,
    tol: float = 1e-6,
) -> SanitizeReport:
    """Re-verify a solved point against every P1 constraint.

    ``smo`` optionally reuses an already-built constraint system (it must
    match ``graph``/``options``); otherwise one is generated.  The check
    covers every explicit row with signed slack, the implicit C4/L3
    nonnegativity bounds, and L2 equality tightness via one application of
    the max-plus update map.
    """
    options = options or ConstraintOptions()
    if smo is None:
        smo = build_program(graph, options)
    values = solution_assignment(graph, schedule, departures)
    family_of = {
        name: tag for tag, names in smo.families.items() for name in names
    }
    report = SanitizeReport(tol=tol)
    min_slack = float("inf")
    min_name = ""

    def record(name: str, family: str, slack: float) -> None:
        nonlocal min_slack, min_name
        report.checked += 1
        if slack < min_slack:
            min_slack = slack
            min_name = name
        if slack < -tol:
            report.violations.append(ConstraintSlack(name, family, slack))

    for con in smo.program.constraints:
        value = con.lhs.evaluate(values)
        if con.sense is Sense.LE:
            slack = con.rhs - value
        elif con.sense is Sense.GE:
            slack = value - con.rhs
        else:
            slack = -abs(value - con.rhs)
        record(con.name, family_of.get(con.name, "?"), slack)

    # Implicit nonnegativity bounds (C4 for clock variables, L3 for
    # departures) -- the LP keeps these as variable bounds, so they never
    # appear as rows, but P1 requires them all the same.
    free = smo.program.free_variables
    if TC not in free:
        record(f"C4[{TC}]", "C4", values[TC])
    for phase in graph.phase_names:
        if s_var(phase) not in free:
            record(f"C4[{s_var(phase)}]", "C4", values[s_var(phase)])
        if t_var(phase) not in free:
            record(f"C4[{t_var(phase)}]", "C4", values[t_var(phase)])
    for sync in graph.synchronizers:
        if d_var(sync.name) not in free:
            record(f"L3[{d_var(sync.name)}]", "L3", values[d_var(sync.name)])

    # L2 tightness: the relaxation L2R only lower-bounds departures; a P1
    # point needs them *equal* to the max of their predecessors (eq. 17).
    system = build_maxplus_system(graph, schedule, options)
    report.tightness_residual = system.residual(dict(departures))
    report.checked += 1

    report.min_slack = 0.0 if min_slack == float("inf") else min_slack
    report.min_slack_constraint = min_name
    return report


def sanitize_result(
    graph: TimingGraph,
    result: "OptimalClockResult",
    options: ConstraintOptions | None = None,
    tol: float = 1e-6,
) -> SanitizeReport:
    """Sanitize an :class:`~repro.core.mlp.OptimalClockResult` in place.

    Reuses the result's own constraint system when it was kept, so the
    check runs against exactly the rows the solver saw.
    """
    smo = result.smo if result.smo is not None else None
    return sanitize_solution(
        graph,
        result.schedule,
        result.departures,
        options=options,
        smo=smo,
        tol=tol,
    )
