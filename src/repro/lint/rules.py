"""The lint rule registry: named, coded checks over circuits and schedules.

Rules come in two classes, mirrored in their code ranges:

* ``LINT1xx`` -- structural rules over the :class:`TimingGraph` alone (the
  legacy ``circuit/validate.py`` checks live here, with their original
  messages preserved verbatim);
* ``LINT2xx`` -- schedule-dependent rules, which run only when a concrete
  :class:`ClockSchedule` is supplied.

Each rule is a plain function registered with :func:`rule`; callers run
them through :func:`run_rules` (selected subsets) or :func:`run_lint`
(everything, plus the constraint-graph diagnostics of
:mod:`repro.lint.graphdiag`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.circuit.graph import TimingGraph
from repro.circuit.validate import check_loop_phases
from repro.clocking.schedule import ClockSchedule
from repro.core.constraints import ConstraintOptions
from repro.lint.graphdiag import GraphDiagnostics, diagnose
from repro.lint.report import LintFinding, LintReport, Severity

RuleCheck = Callable[
    [TimingGraph, ClockSchedule | None, ConstraintOptions],
    Iterable[LintFinding],
]


@dataclass(frozen=True)
class LintRule:
    """One registered check.

    ``needs_schedule`` rules are skipped when no schedule is available;
    ``legacy`` marks the rules whose findings reproduce the historical
    :func:`repro.circuit.validate.check_structure` messages.
    """

    code: str
    severity: Severity
    description: str
    check: RuleCheck
    needs_schedule: bool = False
    legacy: bool = False
    fix_hint: str | None = None


_REGISTRY: dict[str, LintRule] = {}


def rule(
    code: str,
    severity: Severity,
    description: str,
    needs_schedule: bool = False,
    legacy: bool = False,
    fix_hint: str | None = None,
) -> Callable[[RuleCheck], RuleCheck]:
    """Register a rule function under a stable code."""

    def register(check: RuleCheck) -> RuleCheck:
        if code in _REGISTRY:
            raise ValueError(f"duplicate lint rule code {code!r}")
        _REGISTRY[code] = LintRule(
            code=code,
            severity=severity,
            description=description,
            check=check,
            needs_schedule=needs_schedule,
            legacy=legacy,
            fix_hint=fix_hint,
        )
        return check

    return register


def registered_rules() -> tuple[LintRule, ...]:
    """All rules, in registration order."""
    return tuple(_REGISTRY.values())


def get_rule(code: str) -> LintRule:
    return _REGISTRY[code]


def _finding(
    rule_def: LintRule,
    message: str,
    subjects: Sequence[str] = (),
    severity: Severity | None = None,
) -> LintFinding:
    return LintFinding(
        code=rule_def.code,
        severity=severity or rule_def.severity,
        message=message,
        subjects=tuple(subjects),
        fix_hint=rule_def.fix_hint,
    )


# ----------------------------------------------------------------------
# Structural rules (LINT1xx) -- graph only
# ----------------------------------------------------------------------
@rule(
    "LINT101",
    Severity.ERROR,
    "all-latch feedback loop on a single phase (or simultaneously active "
    "phases, given a schedule) is transparent and oscillates",
    legacy=True,
    fix_hint="clock the loop's latches on nonoverlapping phases, or break "
    "the loop with a flip-flop",
)
def _loop_phases(
    graph: TimingGraph,
    schedule: ClockSchedule | None,
    options: ConstraintOptions,
) -> Iterable[LintFinding]:
    rule_def = _REGISTRY["LINT101"]
    for message in check_loop_phases(graph, schedule):
        yield _finding(rule_def, message)


@rule(
    "LINT103",
    Severity.ERROR,
    "latch propagation delay below its setup time violates the paper's "
    "Delta_DQ >= Delta_DC assumption",
    legacy=True,
    fix_hint="increase the latch delay or reduce its setup time",
)
def _setup_exceeds_delay(
    graph: TimingGraph,
    schedule: ClockSchedule | None,
    options: ConstraintOptions,
) -> Iterable[LintFinding]:
    rule_def = _REGISTRY["LINT103"]
    for sync in graph.latches:
        if sync.delay < sync.setup:
            yield _finding(
                rule_def,
                f"latch {sync.name!r}: Delta_DQ = {sync.delay:g} is smaller "
                f"than Delta_DC = {sync.setup:g}; the paper assumes "
                f"Delta_DQ >= Delta_DC",
                subjects=(sync.name,),
            )


@rule(
    "LINT111",
    Severity.WARNING,
    "clock phase controls no synchronizer",
    legacy=True,
    fix_hint="drop the unused phase or assign synchronizers to it",
)
def _unclocked_phase(
    graph: TimingGraph,
    schedule: ClockSchedule | None,
    options: ConstraintOptions,
) -> Iterable[LintFinding]:
    rule_def = _REGISTRY["LINT111"]
    used = {s.phase for s in graph.synchronizers}
    for phase in graph.phase_names:
        if phase not in used:
            yield _finding(
                rule_def,
                f"phase {phase!r} controls no synchronizer",
                subjects=(phase,),
            )


@rule(
    "LINT112",
    Severity.WARNING,
    "synchronizer with no fanin and no fanout",
    legacy=True,
    fix_hint="wire the synchronizer into the datapath or remove it",
)
def _isolated_synchronizer(
    graph: TimingGraph,
    schedule: ClockSchedule | None,
    options: ConstraintOptions,
) -> Iterable[LintFinding]:
    rule_def = _REGISTRY["LINT112"]
    for name in graph.names:
        if not graph.fanin(name) and not graph.fanout(name):
            yield _finding(
                rule_def,
                f"synchronizer {name!r} is isolated (no fanin, no fanout)",
                subjects=(name,),
            )


@rule(
    "LINT120",
    Severity.INFO,
    "dead-end synchronizer: receives data but drives nothing",
)
def _dead_end(
    graph: TimingGraph,
    schedule: ClockSchedule | None,
    options: ConstraintOptions,
) -> Iterable[LintFinding]:
    rule_def = _REGISTRY["LINT120"]
    for name in graph.names:
        if graph.fanin(name) and not graph.fanout(name):
            yield _finding(
                rule_def,
                f"synchronizer {name!r} has fanin but no fanout "
                "(dead end: its departure constrains nothing)",
                subjects=(name,),
            )


@rule(
    "LINT121",
    Severity.INFO,
    "source synchronizer: drives data but receives none",
)
def _unreachable(
    graph: TimingGraph,
    schedule: ClockSchedule | None,
    options: ConstraintOptions,
) -> Iterable[LintFinding]:
    rule_def = _REGISTRY["LINT121"]
    for name in graph.names:
        if graph.fanout(name) and not graph.fanin(name):
            yield _finding(
                rule_def,
                f"synchronizer {name!r} has fanout but no fanin "
                "(primary source: its departure floats at the phase opening)",
                subjects=(name,),
            )


@rule(
    "LINT122",
    Severity.WARNING,
    "degenerate arc: zero-delay self-loop",
    fix_hint="remove the self-loop or give it a positive delay",
)
def _degenerate_arc(
    graph: TimingGraph,
    schedule: ClockSchedule | None,
    options: ConstraintOptions,
) -> Iterable[LintFinding]:
    rule_def = _REGISTRY["LINT122"]
    for arc in graph.arcs:
        if arc.src == arc.dst and arc.delay == 0.0:
            yield _finding(
                rule_def,
                f"arc {arc.src} -> {arc.dst} is a zero-delay self-loop "
                "(its propagation constraint is vacuous or contradictory)",
                subjects=(arc.src,),
            )


@rule(
    "LINT123",
    Severity.INFO,
    "zero min-delay path between differently-phased latches (hold risk)",
    fix_hint="pad the path's minimum delay or share a phase",
)
def _hold_risk(
    graph: TimingGraph,
    schedule: ClockSchedule | None,
    options: ConstraintOptions,
) -> Iterable[LintFinding]:
    rule_def = _REGISTRY["LINT123"]
    for arc in graph.arcs:
        if arc.src == arc.dst:
            continue
        src, dst = graph[arc.src], graph[arc.dst]
        hold = getattr(dst, "hold", 0.0)
        if arc.min_delay + src.delay <= hold and src.phase != dst.phase:
            yield _finding(
                rule_def,
                f"arc {arc.src} -> {arc.dst}: minimum path delay "
                f"{arc.min_delay + src.delay:g} does not cover the "
                f"receiving hold time {hold:g}; the path can race when "
                f"{src.phase!r} and {dst.phase!r} overlap",
                subjects=(arc.src, arc.dst),
            )


# ----------------------------------------------------------------------
# Schedule-dependent rules (LINT2xx)
# ----------------------------------------------------------------------
@rule(
    "LINT201",
    Severity.WARNING,
    "zero-width phase under the given schedule",
    needs_schedule=True,
    fix_hint="give the phase a positive active width",
)
def _zero_width(
    graph: TimingGraph,
    schedule: ClockSchedule | None,
    options: ConstraintOptions,
) -> Iterable[LintFinding]:
    assert schedule is not None
    rule_def = _REGISTRY["LINT201"]
    for phase in schedule.phases:
        if phase.width <= 0.0:
            yield _finding(
                rule_def,
                f"phase {phase.name!r} has zero width: its latches are "
                "never transparent and can never launch new data",
                subjects=(phase.name,),
            )


@rule(
    "LINT202",
    Severity.ERROR,
    "clock-constraint violation (C1-C3) under the given schedule",
    needs_schedule=True,
    fix_hint="repair the schedule or re-run minimize to derive one",
)
def _clock_violations(
    graph: TimingGraph,
    schedule: ClockSchedule | None,
    options: ConstraintOptions,
) -> Iterable[LintFinding]:
    assert schedule is not None
    rule_def = _REGISTRY["LINT202"]
    if tuple(schedule.names) != tuple(graph.phase_names):
        yield _finding(
            rule_def,
            f"schedule phases {schedule.names} do not match circuit "
            f"phases {graph.phase_names}",
        )
        return
    for violation in schedule.violations(graph.k_matrix()):
        yield _finding(
            rule_def,
            f"{violation.constraint}: {violation.message} "
            f"(violated by {violation.amount:g})",
            subjects=(violation.constraint,),
        )


@rule(
    "LINT210",
    Severity.WARNING,
    "hold (short-path) violation under the given schedule",
    needs_schedule=True,
    fix_hint="pad short paths or widen the nonoverlap gap",
)
def _hold_violations(
    graph: TimingGraph,
    schedule: ClockSchedule | None,
    options: ConstraintOptions,
) -> Iterable[LintFinding]:
    assert schedule is not None
    from repro.core.shortpath import check_hold

    rule_def = _REGISTRY["LINT210"]
    if tuple(schedule.names) != tuple(graph.phase_names):
        return
    hold = check_hold(graph, schedule)
    for timing in hold.violations:
        yield _finding(
            rule_def,
            f"hold violation at {timing.name}: slack {timing.slack:g}",
            subjects=(timing.name,),
        )


# ----------------------------------------------------------------------
# Runners
# ----------------------------------------------------------------------
def run_rules(
    graph: TimingGraph,
    schedule: ClockSchedule | None = None,
    options: ConstraintOptions | None = None,
    codes: Sequence[str] | None = None,
    legacy_only: bool = False,
) -> LintReport:
    """Run registered rules and collect their findings into a report.

    ``codes`` selects a subset (in the given order); ``legacy_only``
    restricts to the rules backing the historical ``check_structure``.
    """
    options = options or ConstraintOptions()
    report = LintReport()
    if codes is None:
        selected = registered_rules()
    else:
        selected = tuple(_REGISTRY[code] for code in codes)
    for rule_def in selected:
        if legacy_only and not rule_def.legacy:
            continue
        if rule_def.needs_schedule and schedule is None:
            continue
        report.extend(rule_def.check(graph, schedule, options))
    return report


def run_lint(
    graph: TimingGraph,
    schedule: ClockSchedule | None = None,
    options: ConstraintOptions | None = None,
    graph_diagnostics: bool = True,
    source: str = "",
) -> LintReport:
    """The full lint pass: every rule plus the constraint-graph analysis.

    When ``graph_diagnostics`` is enabled, the SMO system is built and the
    pre-solve analysis of :func:`repro.lint.graphdiag.diagnose` runs; an
    infeasibility certificate becomes an error finding (``LINT301`` for
    structural negative cycles, ``LINT302`` for period-capped ones,
    ``LINT303`` for scalar contradictions) and the Tc lower bound an info
    finding (``LINT310``).  The raw diagnostics land in
    :attr:`LintReport.diagnostics`.
    """
    options = options or ConstraintOptions()
    report = run_rules(graph, schedule, options)
    report.source = source
    if graph_diagnostics:
        diagnostics = diagnose(graph, options)
        report.diagnostics = diagnostics.to_dict()
        report.extend(_diagnostic_findings(diagnostics))
    return report


def _diagnostic_findings(
    diagnostics: GraphDiagnostics,
) -> list[LintFinding]:
    findings: list[LintFinding] = []
    certificate = diagnostics.certificate
    if certificate is not None:
        code = {
            "structural": "LINT301",
            "period": "LINT302",
            "contradiction": "LINT303",
        }[certificate.kind]
        findings.append(
            LintFinding(
                code=code,
                severity=Severity.ERROR,
                message=certificate.message,
                subjects=certificate.constraints,
                data={"certificate": certificate.to_dict()},
            )
        )
    bound = diagnostics.bound
    if bound.value not in (float("inf"),):
        qualifier = "exact" if bound.exact else "relaxed"
        findings.append(
            LintFinding(
                code="LINT310",
                severity=Severity.INFO,
                message=(
                    f"provable Tc lower bound: {bound.value:.6g} "
                    f"({qualifier}, {len(bound.cycle)} constraints on the "
                    "critical cycle)"
                ),
                subjects=bound.constraints,
                data={"tc_lower_bound": bound.to_dict()},
            )
        )
    if diagnostics.graph.skipped:
        findings.append(
            LintFinding(
                code="LINT311",
                severity=Severity.INFO,
                message=(
                    f"{len(diagnostics.graph.skipped)} constraint row(s) did "
                    "not reduce to difference form; graph diagnostics are a "
                    "relaxation"
                ),
                subjects=tuple(diagnostics.graph.skipped[:8]),
            )
        )
    return findings
