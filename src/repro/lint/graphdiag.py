"""Difference-constraint graph diagnostics over the SMO system.

Every base SMO row (families C1-C4, L1, L2R, L3, FF, FS and the FIX/XW/XP
extensions) involves at most the variables ``Tc, s_i, T_i, D_j`` with
coefficients in {0, +/-1}.  Substituting the *event times*

* ``origin``       = 0,
* ``start[p]``     = ``s_p``,
* ``end[p]``       = ``s_p + T_p``,
* ``dep[n]``       = ``s_{p_n} + D_n``  (``p_n`` = controlling phase of n)

turns each row into a difference constraint ``head - tail <= a + b*Tc``
with ``b`` in {0, 1} -- a parametric constraint graph.  Two classic results
then hold (cf. CLRS 24.4 and Karp 1978):

* the system is feasible at a fixed period ``t`` iff the graph with edge
  weights ``a + b*t`` has no negative cycle (Bellman-Ford), and a negative
  cycle *is* an infeasibility certificate naming the constraints on it;
* since every ``b >= 0``, the feasible set of ``Tc`` is upward closed and
  its infimum is ``max_C -A(C)/B(C)`` over cycles ``C`` with
  ``B(C) = sum b > 0`` -- computed here by Lawler-style ratio iteration
  with Karp's minimum-cycle-mean algorithm as the inner oracle.  When no
  row is skipped the encoding is complete, so this bound *equals* the
  LP-optimal cycle time without running any LP.

Rows that do not reduce to a difference (extension families with non-unit
coefficients, or rows over unknown variables such as a setup-slack column)
are recorded in :attr:`ConstraintGraph.skipped`; dropping constraints only
enlarges the feasible set, so the reported bound remains a valid lower
bound and certificates remain sound either way.

Graph construction is split into a *skeleton* (which edges exist, their
endpoints and ``b`` coefficients -- everything except the ``a`` values,
which come from constraint right-hand sides) and a cheap *materialize*
step that fills the numbers in.  Skeletons are cached in a bounded LRU
keyed by :func:`structure_fingerprint`, mirroring the compiled-kernel
structure cache of :mod:`repro.maxplus.compiled`, so the parametric
re-cost path (``with_rhs``/``recost_arc_delay``) and repeated diagnostics
over the same circuit never re-derive the substitution.  Callers that may
see the same program repeatedly should use :func:`constraint_graph_for`;
:func:`build_constraint_graph` is the uncached spelling.
"""

from __future__ import annotations

import hashlib
import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, cast

from repro.circuit.graph import TimingGraph
from repro.core.constraints import (
    TC,
    ConstraintOptions,
    SMOProgram,
    build_program,
    d_var,
    s_var,
    t_var,
)
from repro.lp.model import Sense

#: Node name of the zero reference (the paper's time origin).
ORIGIN = "origin"


def start_node(phase: str) -> str:
    return f"start[{phase}]"


def end_node(phase: str) -> str:
    return f"end[{phase}]"


def dep_node(sync: str) -> str:
    return f"dep[{sync}]"


@dataclass(frozen=True)
class DiffEdge:
    """One difference constraint ``head - tail <= a + b*Tc``.

    Stored as a graph edge ``tail -> head`` with parametric weight
    ``a + b*Tc``; ``constraint`` is the SMO row (or implicit bound) it came
    from and ``family`` its constraint family tag.
    """

    tail: str
    head: str
    a: float
    b: float
    constraint: str
    family: str

    def weight(self, tc: float) -> float:
        return self.a + self.b * tc

    def to_dict(self) -> dict[str, Any]:
        return {
            "constraint": self.constraint,
            "family": self.family,
            "tail": self.tail,
            "head": self.head,
            "a": self.a,
            "b": self.b,
        }


@dataclass
class ConstraintGraph:
    """The parametric difference-constraint graph of one SMO program.

    ``tc_lower``/``tc_upper`` hold scalar bounds on ``Tc`` that reduced to
    constant rows (``XP``/``FIX`` and the implicit ``Tc >= 0``), as
    ``(value, constraint_name)`` pairs; ``contradictions`` holds constant
    rows that are false on their own (e.g. conflicting FIX values on
    ``Tc``); ``skipped`` lists rows that did not reduce to a difference.
    """

    nodes: list[str]
    edges: list[DiffEdge]
    tc_lower: list[tuple[float, str]] = field(default_factory=list)
    tc_upper: list[tuple[float, str]] = field(default_factory=list)
    contradictions: list[tuple[str, str]] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)

    @property
    def tc_floor(self) -> float:
        """The largest scalar lower bound on Tc (at least 0)."""
        return max((v for v, _ in self.tc_lower), default=0.0)

    @property
    def tc_cap(self) -> float | None:
        """The smallest scalar upper bound on Tc, if any row gives one."""
        if not self.tc_upper:
            return None
        return min(v for v, _ in self.tc_upper)

    def cap_constraints(self, tol: float = 1e-12) -> list[str]:
        """Names of the rows that realize :attr:`tc_cap`."""
        cap = self.tc_cap
        if cap is None:
            return []
        return [name for v, name in self.tc_upper if v <= cap + tol]


@dataclass(frozen=True)
class InfeasibilityCertificate:
    """Proof that the constraint system cannot be satisfied.

    ``kind`` is ``"structural"`` (a negative cycle whose weight does not
    depend on Tc -- no period can fix it), ``"period"`` (a cycle that is
    negative at the pinned/capped period ``tc``: the cycle forces
    ``Tc >= required_tc`` but a scalar row caps it below that), or
    ``"contradiction"`` (a constant row that is false by itself).

    ``cycle`` lists the offending constraints as :class:`DiffEdge` records
    in cycle order; ``a_sum``/``b_sum`` are the cycle totals, so the cycle
    asserts ``0 <= a_sum + b_sum*Tc``.
    """

    kind: str
    message: str
    cycle: tuple[DiffEdge, ...] = ()
    tc: float | None = None
    required_tc: float | None = None
    pinned_by: tuple[str, ...] = ()

    @property
    def constraints(self) -> tuple[str, ...]:
        return tuple(e.constraint for e in self.cycle)

    @property
    def a_sum(self) -> float:
        return sum(e.a for e in self.cycle)

    @property
    def b_sum(self) -> float:
        return sum(e.b for e in self.cycle)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "message": self.message,
            "tc": self.tc,
            "required_tc": self.required_tc,
            "pinned_by": list(self.pinned_by),
            "cycle": [e.to_dict() for e in self.cycle],
            "a_sum": self.a_sum,
            "b_sum": self.b_sum,
        }

    def format(self) -> str:
        lines = [f"infeasible ({self.kind}): {self.message}"]
        for edge in self.cycle:
            bound = f"{edge.a:g}"
            if edge.b:
                bound += f" + {edge.b:g}*Tc"
            lines.append(
                f"  {edge.constraint} [{edge.family}]: "
                f"{edge.head} - {edge.tail} <= {bound}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class TcBound:
    """A provable lower bound on the cycle time, with its critical cycle.

    ``cycle`` is the cycle that forces the bound (``Tc >= -A/B`` over its
    edge totals); it is empty when the bound degenerates to a scalar floor
    (e.g. a circuit whose constraints put no cycle pressure on Tc).
    ``exact`` is True when no constraint row was skipped while building the
    graph -- the encoding is then complete and the bound equals the
    LP-optimal cycle time.
    """

    value: float
    cycle: tuple[DiffEdge, ...] = ()
    iterations: int = 0
    exact: bool = True

    @property
    def constraints(self) -> tuple[str, ...]:
        return tuple(e.constraint for e in self.cycle)

    def to_dict(self) -> dict[str, Any]:
        return {
            "value": self.value,
            "iterations": self.iterations,
            "exact": self.exact,
            "cycle": [e.to_dict() for e in self.cycle],
        }


# ----------------------------------------------------------------------
# Graph construction: skeleton (structure-cached) + materialize (cheap)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _EdgeTemplate:
    """A :class:`DiffEdge` minus its ``a`` value.

    ``row`` indexes the program constraint whose rhs supplies ``a`` (as
    ``sign * rhs``); implicit bounds (``row == -1``) have ``a == 0``.
    """

    tail: str
    head: str
    b: float
    constraint: str
    family: str
    row: int
    sign: float


@dataclass(frozen=True)
class _ScalarTemplate:
    """A constant row ``tc_coeff * Tc <= sign * rhs[row]``."""

    row: int
    sign: float
    tc_coeff: float
    name: str


@dataclass(frozen=True)
class GraphSkeleton:
    """Everything about a constraint graph except the rhs-derived numbers."""

    nodes: tuple[str, ...]
    edges: tuple[_EdgeTemplate, ...]
    scalars: tuple[_ScalarTemplate, ...]
    tc_nonneg: bool
    skipped: tuple[str, ...]


def _build_skeleton(smo: SMOProgram) -> GraphSkeleton:
    """Derive the event-time substitution and classify every row once."""
    graph = smo.graph
    nodes = [ORIGIN]
    substitution: dict[str, tuple[tuple[str, float], ...]] = {}
    for phase in graph.phase_names:
        s_node, e_node = start_node(phase), end_node(phase)
        nodes.extend((s_node, e_node))
        substitution[s_var(phase)] = ((s_node, 1.0),)
        substitution[t_var(phase)] = ((e_node, 1.0), (s_node, -1.0))
    for sync in graph.synchronizers:
        node = dep_node(sync.name)
        nodes.append(node)
        substitution[d_var(sync.name)] = (
            (node, 1.0),
            (start_node(sync.phase), -1.0),
        )

    family_of = {
        name: tag for tag, names in smo.families.items() for name in names
    }
    edges: list[_EdgeTemplate] = []
    scalars: list[_ScalarTemplate] = []
    skipped: list[str] = []

    def add_le_row(
        name: str, terms: dict[str, float], row: int, sign: float
    ) -> None:
        """One ``sign * row <= sign * rhs`` half -> edge or scalar template."""
        family = family_of.get(name, "?")
        coeffs: dict[str, float] = {}
        tc_coeff = 0.0
        for lp_var, coeff in terms.items():
            if lp_var == TC:
                tc_coeff += coeff
                continue
            nodes_of = substitution.get(lp_var)
            if nodes_of is None:
                skipped.append(name)
                return
            for node, node_sign in nodes_of:
                coeffs[node] = coeffs.get(node, 0.0) + coeff * node_sign
        coeffs = {n: c for n, c in coeffs.items() if c != 0.0}
        if not coeffs:
            # Constant row: tc_coeff * Tc <= sign * rhs.
            scalars.append(_ScalarTemplate(row, sign, tc_coeff, name))
            return
        heads = [n for n, c in coeffs.items() if c == 1.0]
        tails = [n for n, c in coeffs.items() if c == -1.0]
        if len(heads) + len(tails) != len(coeffs) or len(heads) > 1 or len(tails) > 1:
            skipped.append(name)
            return
        head = heads[0] if heads else ORIGIN
        tail = tails[0] if tails else ORIGIN
        edges.append(
            _EdgeTemplate(tail=tail, head=head, b=-tc_coeff,
                          constraint=name, family=family, row=row, sign=sign)
        )

    for row, con in enumerate(smo.program.constraints):
        terms = dict(con.lhs.terms)
        if con.sense is Sense.LE:
            add_le_row(con.name, terms, row, 1.0)
        elif con.sense is Sense.GE:
            add_le_row(
                con.name, {v: -c for v, c in terms.items()}, row, -1.0
            )
        else:  # EQ: both directions
            add_le_row(con.name, terms, row, 1.0)
            add_le_row(
                con.name, {v: -c for v, c in terms.items()}, row, -1.0
            )

    # Implicit nonnegativity bounds: C4 (Tc, s_i, T_i) and L3 (D_i).
    free = smo.program.free_variables
    for phase in graph.phase_names:
        if s_var(phase) not in free:
            edges.append(
                _EdgeTemplate(tail=start_node(phase), head=ORIGIN, b=0.0,
                              constraint=f"C4[{s_var(phase)}]", family="C4",
                              row=-1, sign=0.0)
            )
        if t_var(phase) not in free:
            edges.append(
                _EdgeTemplate(tail=end_node(phase), head=start_node(phase),
                              b=0.0, constraint=f"C4[{t_var(phase)}]",
                              family="C4", row=-1, sign=0.0)
            )
    for sync in graph.synchronizers:
        if d_var(sync.name) not in free:
            edges.append(
                _EdgeTemplate(tail=dep_node(sync.name),
                              head=start_node(sync.phase), b=0.0,
                              constraint=f"L3[{d_var(sync.name)}]",
                              family="L3", row=-1, sign=0.0)
            )
    return GraphSkeleton(
        nodes=tuple(nodes),
        edges=tuple(edges),
        scalars=tuple(scalars),
        tc_nonneg=TC not in free,
        skipped=tuple(skipped),
    )


def _materialize(skeleton: GraphSkeleton, smo: SMOProgram) -> ConstraintGraph:
    """Fill a skeleton's ``a`` values from the program's current rhs."""
    constraints = smo.program.constraints
    cg = ConstraintGraph(nodes=list(skeleton.nodes), edges=[])
    for tpl in skeleton.edges:
        a = tpl.sign * constraints[tpl.row].rhs if tpl.row >= 0 else 0.0
        cg.edges.append(
            DiffEdge(tail=tpl.tail, head=tpl.head, a=a, b=tpl.b,
                     constraint=tpl.constraint, family=tpl.family)
        )
    for sc in skeleton.scalars:
        rhs = sc.sign * constraints[sc.row].rhs
        if sc.tc_coeff > 0.0:
            cg.tc_upper.append((rhs / sc.tc_coeff, sc.name))
        elif sc.tc_coeff < 0.0:
            cg.tc_lower.append((rhs / sc.tc_coeff, sc.name))
        elif rhs < 0.0:
            cg.contradictions.append((sc.name, f"0 <= {rhs:g} is false"))
    if skeleton.tc_nonneg:
        cg.tc_lower.append((0.0, f"C4[{TC}]"))
    cg.skipped = list(skeleton.skipped)
    return cg


def build_constraint_graph(smo: SMOProgram) -> ConstraintGraph:
    """Lower an SMO program to its parametric difference-constraint graph."""
    return _materialize(_build_skeleton(smo), smo)


_FINGERPRINT_KEY = "diffgraph_fingerprint"


def structure_fingerprint(smo: SMOProgram) -> str:
    """A digest of everything the graph *skeleton* depends on.

    Covers the timing graph's phase and synchronizer identities, every
    constraint's name, sense and coefficients, and the free-variable set --
    but **no** right-hand sides, so a re-cost copy (``with_rhs``) keeps the
    same fingerprint and hits the same cached skeleton.  The digest is
    memoized in :attr:`LinearProgram.structure_memo`, which mutation
    invalidates and ``with_rhs`` inherits.
    """
    program = smo.program
    cached = program.structure_memo.get(_FINGERPRINT_KEY)
    if isinstance(cached, str):
        return cached
    graph = smo.graph
    digest = hashlib.sha256()
    digest.update(",".join(graph.phase_names).encode())
    digest.update(b"\x00")
    for sync in graph.synchronizers:
        digest.update(f"{sync.name}|{sync.phase};".encode())
    digest.update(b"\x00")
    for con in program.constraints:
        digest.update(f"{con.name}|{con.sense.value}|".encode())
        for var, coeff in con.lhs.terms.items():
            digest.update(f"{var}={coeff!r},".encode())
        digest.update(b";")
    digest.update(b"\x00")
    for var in sorted(program.free_variables):
        digest.update(f"{var},".encode())
    key = digest.hexdigest()
    program.structure_memo[_FINGERPRINT_KEY] = key
    return key


_SKELETON_CACHE_SIZE = 128
_SKELETONS: "OrderedDict[str, GraphSkeleton]" = OrderedDict()
_GRAPH_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def constraint_graph_for(smo: SMOProgram) -> ConstraintGraph:
    """Memoized :func:`build_constraint_graph`.

    Two cache layers, mirroring :mod:`repro.maxplus.compiled`: the
    materialized graph is memoized on the ``smo`` instance (guarded by the
    program's row count, so appending rows invalidates it), and the
    skeleton is shared across instances through a bounded LRU keyed by
    :func:`structure_fingerprint` -- sweeps and re-cost copies pay only the
    O(edges) materialize step.
    """
    n_rows = len(smo.program.constraints)
    memo = smo.__dict__.get("_graph_memo")
    if memo is not None and memo[0] == n_rows:
        return cast(ConstraintGraph, memo[1])
    key = structure_fingerprint(smo)
    skeleton = _SKELETONS.get(key)
    if skeleton is None:
        _GRAPH_STATS["misses"] += 1
        skeleton = _build_skeleton(smo)
        _SKELETONS[key] = skeleton
        if len(_SKELETONS) > _SKELETON_CACHE_SIZE:
            _SKELETONS.popitem(last=False)
            _GRAPH_STATS["evictions"] += 1
    else:
        _GRAPH_STATS["hits"] += 1
        _SKELETONS.move_to_end(key)
    cg = _materialize(skeleton, smo)
    smo.__dict__["_graph_memo"] = (n_rows, cg)
    return cg


def graph_cache_stats() -> dict[str, int]:
    """Hit/miss/eviction counters plus current size of the skeleton cache."""
    return dict(_GRAPH_STATS, size=len(_SKELETONS))


def clear_graph_cache() -> None:
    """Drop all cached skeletons and reset the counters (for tests)."""
    _SKELETONS.clear()
    for counter in _GRAPH_STATS:
        _GRAPH_STATS[counter] = 0


# ----------------------------------------------------------------------
# Negative-cycle detection (Bellman-Ford)
# ----------------------------------------------------------------------
def find_negative_cycle(
    cg: ConstraintGraph, tc: float, tol: float = 1e-9
) -> tuple[DiffEdge, ...] | None:
    """A negative cycle of the graph at period ``tc``, or None.

    Standard Bellman-Ford with all distances initialized to 0 (equivalent
    to a virtual source wired to every node), relaxing for |V| rounds; any
    node that still relaxes on the final round lies on -- or downstream
    of -- a negative cycle, which walking the predecessor edges |V| times
    is guaranteed to enter.
    """
    edges = cg.edges
    if not edges:
        return None
    dist = {node: 0.0 for node in cg.nodes}
    pred: dict[str, DiffEdge] = {}
    n = len(cg.nodes)
    flagged: str | None = None
    for round_index in range(n):
        updated = False
        for edge in edges:
            cand = dist[edge.tail] + edge.weight(tc)
            if cand < dist[edge.head] - tol:
                dist[edge.head] = cand
                pred[edge.head] = edge
                updated = True
                flagged = edge.head
        if not updated:
            return None
    if flagged is None:  # pragma: no cover - updated implies flagged
        return None
    node = flagged
    for _ in range(n):
        node = pred[node].tail
    cycle: list[DiffEdge] = []
    cursor = node
    while True:
        edge = pred[cursor]
        cycle.append(edge)
        cursor = edge.tail
        if cursor == node:
            break
    cycle.reverse()
    return tuple(cycle)


def structural_negative_cycle(
    cg: ConstraintGraph, tol: float = 1e-9
) -> tuple[DiffEdge, ...] | None:
    """A negative cycle among the Tc-independent (``b == 0``) edges.

    Because every ``b`` is nonnegative, such a cycle stays negative at
    *every* period -- the infeasibility is structural, not a matter of
    clocking faster or slower.
    """
    sub = ConstraintGraph(
        nodes=cg.nodes, edges=[e for e in cg.edges if e.b == 0.0]
    )
    return find_negative_cycle(sub, 0.0, tol=tol)


# ----------------------------------------------------------------------
# Karp's minimum cycle mean and the parametric Tc bound
# ----------------------------------------------------------------------
def karp_min_cycle_mean(
    cg: ConstraintGraph, tc: float
) -> tuple[float, tuple[DiffEdge, ...]] | None:
    """Karp's minimum-cycle-mean at period ``tc``.

    Returns ``(mean, cycle)`` for a minimum-mean cycle of the graph with
    weights ``a + b*tc``, or None when the graph is acyclic.  ``D[k][v]``
    is the minimum weight of a k-edge walk ending at v (from anywhere:
    ``D[0]`` is identically 0), and Karp's theorem gives the minimum mean
    as ``min_v max_k (D[n][v] - D[k][v]) / (n - k)``.  The witness cycle is
    recovered from the predecessor walk of the minimizing node: an n-edge
    walk over n vertices must repeat a vertex, and the best repeated
    segment along it realizes a (minimum-mean) cycle.
    """
    n = len(cg.nodes)
    if n == 0 or not cg.edges:
        return None
    index = {node: i for i, node in enumerate(cg.nodes)}
    inf = math.inf
    dist = [[inf] * n for _ in range(n + 1)]
    pred: list[list[DiffEdge | None]] = [[None] * n for _ in range(n + 1)]
    dist[0] = [0.0] * n
    for k in range(1, n + 1):
        row_prev, row_k, pred_k = dist[k - 1], dist[k], pred[k]
        for edge in cg.edges:
            cand = row_prev[index[edge.tail]]
            if cand == inf:
                continue
            cand += edge.weight(tc)
            h = index[edge.head]
            if cand < row_k[h]:
                row_k[h] = cand
                pred_k[h] = edge
    best_mean = inf
    best_v = -1
    for v in range(n):
        if dist[n][v] == inf:
            continue
        worst = -inf
        for k in range(n):
            if dist[k][v] == inf:
                continue
            ratio = (dist[n][v] - dist[k][v]) / (n - k)
            if ratio > worst:
                worst = ratio
        if worst < best_mean:
            best_mean = worst
            best_v = v
    if best_v < 0:
        return None

    # Reconstruct the n-edge predecessor walk ending at best_v, then pick
    # the minimum-mean cycle among its repeated-vertex segments.
    walk_nodes = [best_v]
    walk_edges: list[DiffEdge | None] = []
    node = best_v
    for k in range(n, 0, -1):
        edge = pred[k][node]
        if edge is None:
            break
        walk_edges.append(edge)
        node = index[edge.tail]
        walk_nodes.append(node)
    walk_nodes.reverse()
    walk_edges.reverse()
    seen: dict[int, int] = {}
    best_cycle: tuple[DiffEdge, ...] = ()
    cycle_mean = inf
    for pos, v in enumerate(walk_nodes):
        if v in seen:
            segment = [e for e in walk_edges[seen[v]:pos] if e is not None]
            if segment:
                mean = sum(e.weight(tc) for e in segment) / len(segment)
                if mean < cycle_mean:
                    cycle_mean = mean
                    best_cycle = tuple(segment)
        seen[v] = pos
    return best_mean, best_cycle


def tc_lower_bound(
    cg: ConstraintGraph, tol: float = 1e-9, max_iterations: int = 1000
) -> TcBound:
    """The infimum of feasible periods, by Karp-driven ratio iteration.

    Starting from the scalar floor, repeatedly find a minimum-mean cycle at
    the current period ``t``; a negative mean exhibits a cycle with
    ``A + B*t < 0``, i.e. a proof that ``Tc >= -A/B > t``, so ``t`` jumps
    there.  The candidate periods range over the finite set of cycle ratios
    and increase strictly, so the iteration terminates at
    ``max_C -A(C)/B(C)`` -- the exact feasibility threshold of the encoded
    system.  A negative cycle with ``B == 0`` means no period helps; the
    returned bound is then infinite (see :func:`structural_negative_cycle`
    for the certificate).
    """
    t = cg.tc_floor
    best_cycle: tuple[DiffEdge, ...] = ()
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        found = karp_min_cycle_mean(cg, t)
        if found is None:
            break
        mean, cycle = found
        scale = max(1.0, abs(t))
        if mean >= -tol * scale or not cycle:
            break
        b_sum = sum(e.b for e in cycle)
        a_sum = sum(e.a for e in cycle)
        if b_sum <= 0.0:
            return TcBound(
                value=math.inf, cycle=cycle, iterations=iterations,
                exact=not cg.skipped,
            )
        candidate = -a_sum / b_sum
        if candidate <= t + 1e-15 * scale:
            break
        t = candidate
        best_cycle = cycle
    return TcBound(
        value=t, cycle=best_cycle, iterations=iterations,
        exact=not cg.skipped,
    )


# ----------------------------------------------------------------------
# Top-level diagnosis
# ----------------------------------------------------------------------
@dataclass
class GraphDiagnostics:
    """Outcome of the pre-solve constraint-graph pass.

    ``certificate`` is set when the system is provably infeasible;
    ``bound`` always carries the Tc lower bound (infinite when
    structurally infeasible).  ``tc_cap`` is the tightest scalar upper
    bound on Tc, when the options pin or cap the period.
    """

    certificate: InfeasibilityCertificate | None
    bound: TcBound
    tc_cap: float | None
    graph: ConstraintGraph

    @property
    def feasible(self) -> bool:
        return self.certificate is None

    def to_dict(self) -> dict[str, Any]:
        return {
            "feasible": self.feasible,
            "certificate": None
            if self.certificate is None
            else self.certificate.to_dict(),
            "tc_lower_bound": self.bound.to_dict(),
            "tc_cap": self.tc_cap,
            "nodes": len(self.graph.nodes),
            "edges": len(self.graph.edges),
            "skipped_rows": list(self.graph.skipped),
        }


def diagnose(
    graph: TimingGraph,
    options: ConstraintOptions | None = None,
    smo: SMOProgram | None = None,
    tol: float = 1e-9,
) -> GraphDiagnostics:
    """Run the full pre-solve graph analysis on one circuit.

    Order of checks: constant-row contradictions, then structural negative
    cycles (infeasible at every period), then the parametric lower bound
    against any scalar period cap (infeasible at the pinned period).
    """
    if smo is None:
        smo = build_program(graph, options or ConstraintOptions())
    cg = constraint_graph_for(smo)
    cap = cg.tc_cap

    if cg.contradictions:
        name, detail = cg.contradictions[0]
        certificate = InfeasibilityCertificate(
            kind="contradiction",
            message=f"constraint {name} is unsatisfiable: {detail}",
        )
        bound = TcBound(value=math.inf, exact=not cg.skipped)
        return GraphDiagnostics(certificate, bound, cap, cg)

    structural = structural_negative_cycle(cg, tol=tol)
    if structural is not None:
        weight = sum(e.a for e in structural)
        certificate = InfeasibilityCertificate(
            kind="structural",
            message=(
                "negative cycle independent of Tc "
                f"(total weight {weight:g}): no clock period can satisfy "
                f"{', '.join(e.constraint for e in structural)}"
            ),
            cycle=structural,
        )
        bound = TcBound(value=math.inf, cycle=structural,
                        exact=not cg.skipped)
        return GraphDiagnostics(certificate, bound, cap, cg)

    bound = tc_lower_bound(cg, tol=tol)
    certificate = None
    if cap is not None:
        cycle_at_cap = find_negative_cycle(cg, cap, tol=tol)
        if cycle_at_cap is not None:
            a_sum = sum(e.a for e in cycle_at_cap)
            b_sum = sum(e.b for e in cycle_at_cap)
            required = -a_sum / b_sum if b_sum > 0 else math.inf
            pinned_by = tuple(cg.cap_constraints())
            certificate = InfeasibilityCertificate(
                kind="period",
                message=(
                    f"cycle through {', '.join(e.constraint for e in cycle_at_cap)} "
                    f"requires Tc >= {required:g}, but "
                    f"{', '.join(pinned_by) or 'the scalar bounds'} "
                    f"cap Tc at {cap:g}"
                ),
                cycle=cycle_at_cap,
                tc=cap,
                required_tc=required,
                pinned_by=pinned_by,
            )
    if certificate is None and cap is not None and cap < cg.tc_floor - tol:
        floor_rows = [name for v, name in cg.tc_lower if v >= cg.tc_floor - tol]
        certificate = InfeasibilityCertificate(
            kind="contradiction",
            message=(
                f"scalar bounds conflict: {', '.join(floor_rows)} force "
                f"Tc >= {cg.tc_floor:g} but {', '.join(cg.cap_constraints())} "
                f"cap Tc at {cap:g}"
            ),
            tc=cap,
            required_tc=cg.tc_floor,
            pinned_by=tuple(cg.cap_constraints()),
        )
    return GraphDiagnostics(certificate, bound, cap, cg)
