"""Plain-text renderings of clock schedules and signal strips."""

from __future__ import annotations

from repro.circuit.graph import TimingGraph
from repro.clocking.schedule import ClockSchedule
from repro.clocking.waveform import intervals_in_window
from repro.core.analysis import TimingReport
from repro.errors import ReproError

#: Glyphs used by the text renderers.
ACTIVE, PASSIVE = "#", "."
LATCH_SHADE, PROPAGATE, WAIT = "X", "=", " "


def _time_to_col(t: float, t_end: float, width: int) -> int:
    return min(width - 1, max(0, int(round(t / t_end * (width - 1)))))


def clock_diagram(
    schedule: ClockSchedule, n_cycles: float = 2.0, width: int = 72
) -> str:
    """Render the phase waveforms over ``n_cycles`` cycles as text.

    One row per phase, ``#`` while active and ``.`` while passive, plus a
    time ruler -- the textual analogue of the clock traces in Fig. 6.
    """
    if width < 16:
        raise ReproError(f"diagram width must be >= 16, got {width}")
    if schedule.period <= 0:
        raise ReproError("clock_diagram requires a positive period")
    t_end = n_cycles * schedule.period
    name_width = max(len(p.name) for p in schedule.phases)
    lines = []
    for phase in schedule.phases:
        row = [PASSIVE] * width
        for lo, hi in intervals_in_window(schedule, phase.name, 0.0, t_end):
            a = _time_to_col(lo, t_end, width)
            b = _time_to_col(hi, t_end, width)
            for col in range(a, max(a + 1, b)):
                row[col] = ACTIVE
        lines.append(f"{phase.name:>{name_width}} |{''.join(row)}|")
    ruler = [" "] * width
    marks = []
    n_marks = 5
    for i in range(n_marks):
        t = t_end * i / (n_marks - 1)
        col = _time_to_col(t, t_end, width)
        ruler[col] = "+"
        marks.append((col, f"{t:g}"))
    lines.append(f"{'':>{name_width}} +{''.join(ruler)}+")
    longest = max(len(text) for _, text in marks)
    label_row = [" "] * (width + 2 + longest)
    for col, text in marks:
        for offset, ch in enumerate(text):
            label_row[col + 1 + offset] = ch
    lines.append(f"{'':>{name_width}} {''.join(label_row).rstrip()}")
    return "\n".join(lines)


def strip_diagram(
    graph: TimingGraph,
    report: TimingReport,
    n_cycles: float = 2.0,
    width: int = 72,
) -> str:
    """Fig. 6-style strips: one row per synchronizer.

    For each synchronizer the row shades the latch propagation interval
    (``X``, the paper's shaded Delta_DQ regions), marks the departure
    instant ``D`` and the arrival instant ``A``, and shows the waiting gap
    between an early arrival and the enabling clock edge as blank space.
    Absolute times place each departure in its first-cycle position
    ``s_{p_i} + D_i``.
    """
    schedule = report.schedule
    if schedule.period <= 0:
        raise ReproError("strip_diagram requires a positive period")
    t_end = n_cycles * schedule.period
    name_width = max((len(n) for n in graph.names), default=4)
    lines = [clock_diagram(schedule, n_cycles, width), ""]
    for sync in graph.synchronizers:
        timing = report.timings.get(sync.name)
        if timing is None:
            continue
        phase = schedule[sync.phase]
        depart_abs = phase.start + timing.departure
        out_abs = depart_abs + sync.delay
        row = [WAIT] * width
        a = _time_to_col(depart_abs, t_end, width)
        b = _time_to_col(out_abs, t_end, width)
        for col in range(a, max(a + 1, b)):
            row[col] = LATCH_SHADE
        if timing.arrival != float("-inf"):
            arrive_abs = phase.start + timing.arrival
            if 0 <= arrive_abs <= t_end:
                col = _time_to_col(arrive_abs, t_end, width)
                if row[col] == WAIT:
                    row[col] = "A"
        row[a] = "D"
        lines.append(
            f"{sync.name:>{name_width}} |{''.join(row)}|"
            f"  D={timing.departure:g} @abs {depart_abs:g}"
        )
    return "\n".join(lines)


def schedule_table(schedule: ClockSchedule) -> str:
    """A small aligned table of Tc, s_i and T_i values."""
    lines = [f"Tc = {schedule.period:g}"]
    name_width = max(len(p.name) for p in schedule.phases)
    lines.append(
        f"{'phase':<{max(5, name_width)}} "
        f"{'start':>10} {'width':>10} {'end':>10}"
    )
    for p in schedule.phases:
        lines.append(
            f"{p.name:<{max(5, name_width)}} {p.start:>10g} {p.width:>10g} {p.end:>10g}"
        )
    return "\n".join(lines)
