"""SVG rendering of clock schedules and timing strips (Fig. 6 / Fig. 11)."""

from __future__ import annotations

from repro.circuit.graph import TimingGraph
from repro.clocking.schedule import ClockSchedule
from repro.clocking.waveform import intervals_in_window
from repro.core.analysis import TimingReport
from repro.errors import ReproError

_PHASE_COLOR = "#4477aa"
_LATCH_COLOR = "#cc6677"
_WAIT_COLOR = "#dddddd"
_ROW_H = 26
_GAP = 8
_LEFT = 90
_TOP = 24


def _esc(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def schedule_svg(
    schedule: ClockSchedule,
    graph: TimingGraph | None = None,
    report: TimingReport | None = None,
    n_cycles: float = 2.0,
    width: int = 720,
) -> str:
    """Render a schedule (and optionally Fig. 6-style strips) as an SVG string.

    Each phase becomes a row of filled rectangles over ``n_cycles`` cycles;
    when ``graph`` and ``report`` are given, a strip row per synchronizer
    shows the latch propagation interval (dark) starting at the absolute
    departure time.
    """
    if schedule.period <= 0:
        raise ReproError("schedule_svg requires a positive period")
    t_end = n_cycles * schedule.period
    scale = (width - _LEFT - 10) / t_end

    rows: list[str] = []
    y = _TOP

    def add_label(label: str, y_pos: int) -> None:
        rows.append(
            f'<text x="{_LEFT - 8}" y="{y_pos + _ROW_H - 9}" '
            f'text-anchor="end" font-size="12" font-family="monospace">'
            f"{_esc(label)}</text>"
        )

    for phase in schedule.phases:
        add_label(phase.name, y)
        rows.append(
            f'<line x1="{_LEFT}" y1="{y + _ROW_H - 4}" x2="{width - 10}" '
            f'y2="{y + _ROW_H - 4}" stroke="#999" stroke-width="0.5"/>'
        )
        for lo, hi in intervals_in_window(schedule, phase.name, 0.0, t_end):
            x = _LEFT + lo * scale
            w = max(1.0, (hi - lo) * scale)
            rows.append(
                f'<rect x="{x:.2f}" y="{y + 4}" width="{w:.2f}" '
                f'height="{_ROW_H - 10}" fill="{_PHASE_COLOR}"/>'
            )
        y += _ROW_H

    if graph is not None and report is not None:
        y += _GAP
        for sync in graph.synchronizers:
            timing = report.timings.get(sync.name)
            if timing is None:
                continue
            add_label(sync.name, y)
            phase = schedule[sync.phase]
            depart_abs = phase.start + timing.departure
            if timing.arrival != float("-inf"):
                arrive_abs = phase.start + timing.arrival
                if arrive_abs < depart_abs:  # waiting gap (early arrival)
                    x = _LEFT + max(0.0, arrive_abs) * scale
                    w = (depart_abs - max(0.0, arrive_abs)) * scale
                    rows.append(
                        f'<rect x="{x:.2f}" y="{y + 8}" width="{w:.2f}" '
                        f'height="{_ROW_H - 18}" fill="{_WAIT_COLOR}"/>'
                    )
            x = _LEFT + depart_abs * scale
            w = max(1.0, sync.delay * scale)
            rows.append(
                f'<rect x="{x:.2f}" y="{y + 4}" width="{w:.2f}" '
                f'height="{_ROW_H - 10}" fill="{_LATCH_COLOR}"/>'
            )
            y += _ROW_H

    # Cycle-boundary guides and time labels.
    cycle = 0.0
    while cycle <= t_end + 1e-9:
        x = _LEFT + cycle * scale
        rows.append(
            f'<line x1="{x:.2f}" y1="{_TOP - 6}" x2="{x:.2f}" y2="{y + 4}" '
            f'stroke="#444" stroke-dasharray="3,3" stroke-width="0.7"/>'
        )
        rows.append(
            f'<text x="{x:.2f}" y="{_TOP - 10}" text-anchor="middle" '
            f'font-size="10" font-family="monospace">{cycle:g}</text>'
        )
        cycle += schedule.period

    height = y + 16
    header = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">'
    )
    title = (
        f'<text x="{_LEFT}" y="{12}" font-size="11" font-family="monospace">'
        f"Tc = {schedule.period:g}</text>"
    )
    return "\n".join([header, title, *rows, "</svg>"])
