"""Text and SVG renderers for clock schedules and timing strips.

These reproduce the visual content of the paper's figures: clock waveforms
over two cycles (Figs. 3, 6, 11) and the per-latch "strip" diagrams of
Fig. 6 showing departure times, latch propagation (shaded) and waiting
gaps for early arrivals.
"""

from repro.render.ascii_art import clock_diagram, schedule_table, strip_diagram
from repro.render.svg import schedule_svg

__all__ = ["clock_diagram", "strip_diagram", "schedule_table", "schedule_svg"]
