"""Random gate-level netlist generator.

Produces structurally legal netlists -- single drivers, no combinational
loops, latches alternating between two clock nets -- for property tests
and for scaling the full gate-to-clock pipeline (STA extraction followed
by Algorithm MLP).
"""

from __future__ import annotations

import random

from repro.errors import CircuitError
from repro.netlist.cells import Library, default_library
from repro.netlist.netlist import Netlist

#: Combinational cells the generator draws from, with their input pins.
_GATES: list[tuple[str, tuple[str, ...]]] = [
    ("INV", ("A",)),
    ("BUF", ("A",)),
    ("NAND2", ("A", "B")),
    ("NOR2", ("A", "B")),
    ("AND2", ("A", "B")),
    ("OR2", ("A", "B")),
    ("XOR2", ("A", "B")),
    ("AOI21", ("A", "B", "C")),
    ("MUX2", ("A", "B", "S")),
    ("FA_S", ("A", "B", "CI")),
]


def random_gate_pipeline(
    n_stages: int = 2,
    gates_per_stage: int = 6,
    seed: int = 0,
    library: Library | None = None,
    close_loop: bool = True,
) -> tuple[Netlist, dict[str, str]]:
    """A looped pipeline of latch stages separated by random gate clouds.

    Stage ``i`` is a DLATCH clocked by ``clk1``/``clk2`` alternately,
    followed by ``gates_per_stage`` random gates wired in a topological
    chain (each gate reads from earlier nets of the same cloud, so the
    cloud is loop-free by construction).  Returns the netlist plus the
    clock-net-to-phase mapping expected by
    :func:`repro.netlist.extract_timing_graph`.
    """
    if n_stages < 2:
        raise CircuitError("need at least two stages for a legal latch loop")
    if gates_per_stage < 1:
        raise CircuitError("need at least one gate per stage")
    rng = random.Random(seed)
    library = library or default_library()
    netlist = Netlist(f"random_pipeline_{seed}", library)
    netlist.add_input("clk1")
    netlist.add_input("clk2")

    stage_out: list[str] = []
    for stage in range(n_stages):
        clk = "clk1" if stage % 2 == 0 else "clk2"
        d_net = f"s{stage}_d"
        q_net = f"s{stage}_q"
        netlist.add(f"lat{stage}", "DLATCH", D=d_net, G=clk, Q=q_net)
        # Random gate cloud from q_net to the next stage's d-net.
        available = [q_net]
        last = q_net
        for g in range(gates_per_stage):
            cell, pins = rng.choice(_GATES)
            out = f"s{stage}_n{g}"
            bindings = {"Z": out}
            # First input follows the chain so every gate is reachable.
            bindings[pins[0]] = last
            for pin in pins[1:]:
                bindings[pin] = rng.choice(available)
            netlist.add(f"g{stage}_{g}", cell, **bindings)
            available.append(out)
            last = out
        stage_out.append(last)

    # Wire each cloud output to the next stage's latch input.
    for stage in range(n_stages):
        nxt = (stage + 1) % n_stages
        if nxt == 0 and not close_loop:
            netlist.add_output(stage_out[stage])
            continue
        # The D net of the next stage must be driven by this cloud's output
        # through a buffer (the D net name was fixed above).
        netlist.add(
            f"link{stage}",
            "BUF",
            A=stage_out[stage],
            Z=f"s{nxt}_d",
        )
    if not close_loop:
        # Stage 0's latch input becomes a primary input.
        netlist.add_input("s0_d_ext")
        netlist.add("link_in", "BUF", A="s0_d_ext", Z="s0_d")
    return netlist, {"clk1": "phi1", "clk2": "phi2"}
