"""A complete gate-level reference design: a two-phase accumulator ALU.

A parameterizable ``bits``-wide datapath built gate by gate from the
default library:

* an **operand register** (phi1 latches, one per bit) holding the A input;
* a **master-slave accumulator**: a phi2 master latch capturing the new
  value and a phi1 slave latch presenting the held value to the ALU --
  the two-phase structure the Section III loop requirement demands
  (a single transparent latch feeding itself would oscillate);
* a **ripple-carry adder** (FA_S/FA_C slices) computing A + ACC;
* a **logic unit** (per-bit XOR) computing A ^ ACC;
* a **function mux** selecting between the two, steered by a control
  latch, feeding back into the accumulator master;
* a **zero-detect** reduction tree whose output is sampled by a
  rising-edge flag flip-flop.

The design exercises every substrate at once: gate-level STA (the carry
chain makes max delays grow linearly with ``bits`` while min delays stay
flat), timing-graph extraction, vector-signal lumping (the per-bit latches
collapse; the carry chain keeps the slices distinguishable exactly where
timing differs), and clock optimization.
"""

from __future__ import annotations

from repro.errors import CircuitError
from repro.netlist.cells import Library, default_library
from repro.netlist.netlist import Netlist


def alu_datapath_netlist(
    bits: int = 4, library: Library | None = None
) -> tuple[Netlist, dict[str, str]]:
    """Build the accumulator-ALU netlist; returns (netlist, clock phases).

    The returned mapping (``{"clk1": "phi1", "clk2": "phi2"}``) plugs
    straight into :func:`repro.netlist.extract_timing_graph`.
    """
    if bits < 1:
        raise CircuitError(f"need at least one bit, got {bits}")
    library = library or default_library()
    nl = Netlist(f"alu{bits}", library)
    nl.add_input("clk1")
    nl.add_input("clk2")
    for b in range(bits):
        nl.add_input(f"in{b}")

    # Control latch: selects add vs xor (phi1, driven by the flag FF so the
    # net has a driver -- a self-contained control loop).
    nl.add("ctl", "DLATCH", D="flag_q", G="clk1", Q="fsel")

    # Operand register: phi1 latches capturing the primary inputs.
    for b in range(bits):
        nl.add(f"opa{b}", "DLATCH", D=f"in{b}", G="clk1", Q=f"a{b}")

    # Accumulator slave latches: phi1 copies of the master bits, so the
    # feedback loop alternates phases (master on phi2, slave on phi1).
    for b in range(bits):
        nl.add(f"accs{b}", "DLATCH", D=f"accm{b}", G="clk1", Q=f"acc{b}")

    # Ripple-carry adder: a[b] + acc[b] with carry chain.
    nl.add("c_zero", "XOR2", A="a0", B="a0", Z="carry0")  # constant-0 source
    for b in range(bits):
        cin = f"carry{b}"
        nl.add(
            f"fas{b}", "FA_S", A=f"a{b}", B=f"acc{b}", CI=cin, Z=f"sum{b}"
        )
        if b + 1 < bits:
            nl.add(
                f"fac{b}", "FA_C", A=f"a{b}", B=f"acc{b}", CI=cin,
                Z=f"carry{b + 1}",
            )

    # Logic unit and the function mux back into the accumulator master.
    for b in range(bits):
        nl.add(f"xor{b}", "XOR2", A=f"a{b}", B=f"acc{b}", Z=f"lg{b}")
        nl.add(
            f"mux{b}", "MUX2", A=f"sum{b}", B=f"lg{b}", S="fsel", Z=f"nxt{b}"
        )
        nl.add(f"acc{b}_lat", "DLATCH", D=f"nxt{b}", G="clk2", Q=f"accm{b}")

    # Zero detect: a NOR reduction of the (slave) accumulator bits into a
    # rising-edge status flip-flop on phi1.
    prev = "acc0"
    for b in range(1, bits):
        nl.add(f"zr{b}", "NOR2", A=prev, B=f"acc{b}", Z=f"z{b}")
        prev = f"z{b}"
    nl.add("flag", "DFF", D=prev, CK="clk1", Q="flag_q")
    nl.add_output("flag_q")
    return nl, {"clk1": "phi1", "clk2": "phi2"}
