"""Gate-level substrate: cell library, netlist, and delay extraction.

The paper assumes that "the circuit has been decomposed into clocked
combinational stages, and that the various delay parameters have been
calculated" (Section III); the original work obtained those parameters
from SPICE.  This package supplies the equivalent preprocessing step for
gate-level designs: a timing cell library, a structural netlist, a
topological min/max combinational static timing analysis, and extraction
of a latch-level :class:`repro.circuit.TimingGraph` whose ``Delta_ji``
arcs are the longest (and shortest) gate paths between synchronizers.
"""

from repro.netlist.cells import Cell, CellKind, Library, default_library, parse_library
from repro.netlist.extract import extract_timing_graph
from repro.netlist.generate import random_gate_pipeline
from repro.netlist.netlist import Instance, Netlist
from repro.netlist.sta import PathDelays, combinational_delays

__all__ = [
    "Cell",
    "CellKind",
    "Library",
    "default_library",
    "parse_library",
    "Instance",
    "Netlist",
    "PathDelays",
    "combinational_delays",
    "extract_timing_graph",
    "random_gate_pipeline",
]
