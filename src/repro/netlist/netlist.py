"""Structural gate-level netlist."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import CircuitError
from repro.netlist.cells import Cell, CellKind, Library


@dataclass(frozen=True)
class Instance:
    """One placed cell: an instance name, its cell, and pin-to-net bindings."""

    name: str
    cell: Cell
    pins: Mapping[str, str]  # pin name -> net name

    def net(self, pin: str) -> str:
        try:
            return self.pins[pin]
        except KeyError:
            raise CircuitError(
                f"instance {self.name}: pin {pin!r} is unconnected"
            ) from None


class Netlist:
    """Instances wired by named nets, plus primary inputs/outputs.

    Nets spring into existence when first referenced.  Every net may have
    at most one driver (a cell output pin or a primary input).
    """

    def __init__(self, name: str, library: Library):
        self.name = name
        self.library = library
        self._instances: dict[str, Instance] = {}
        self._inputs: list[str] = []
        self._outputs: list[str] = []
        self._driver: dict[str, tuple[str, str]] = {}  # net -> (instance, pin)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, net: str) -> None:
        if net in self._driver:
            raise CircuitError(f"net {net!r} already driven; cannot be an input")
        if net in self._inputs:
            raise CircuitError(f"duplicate primary input {net!r}")
        self._inputs.append(net)
        self._driver[net] = ("", "")  # sentinel: driven by the outside world

    def add_output(self, net: str) -> None:
        if net in self._outputs:
            raise CircuitError(f"duplicate primary output {net!r}")
        self._outputs.append(net)

    def add(self, name: str, cell_name: str, **pins: str) -> Instance:
        """Place a cell; keyword arguments bind pins to nets.

        Example: ``netlist.add("u1", "NAND2", A="a", B="b", Z="y")``.
        """
        if name in self._instances:
            raise CircuitError(f"duplicate instance name {name!r}")
        cell = self.library[cell_name]
        missing = set(cell.pins) - set(pins)
        if missing:
            raise CircuitError(
                f"instance {name} ({cell_name}): unconnected pins {sorted(missing)}"
            )
        extra = set(pins) - set(cell.pins)
        if extra:
            raise CircuitError(
                f"instance {name} ({cell_name}): unknown pins {sorted(extra)}"
            )
        inst = Instance(name=name, cell=cell, pins=dict(pins))
        out_pins = (
            cell.outputs if cell.kind is CellKind.COMB else (cell.output_pin,)
        )
        for pin in out_pins:
            net = pins[pin]
            if net in self._driver:
                raise CircuitError(
                    f"net {net!r} has multiple drivers "
                    f"({self._driver[net]} and {name}.{pin})"
                )
            self._driver[net] = (name, pin)
        self._instances[name] = inst
        return inst

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def instances(self) -> tuple[Instance, ...]:
        return tuple(self._instances.values())

    @property
    def inputs(self) -> tuple[str, ...]:
        return tuple(self._inputs)

    @property
    def outputs(self) -> tuple[str, ...]:
        return tuple(self._outputs)

    def instance(self, name: str) -> Instance:
        try:
            return self._instances[name]
        except KeyError:
            raise CircuitError(f"unknown instance {name!r}") from None

    def sequential_instances(self) -> tuple[Instance, ...]:
        return tuple(
            i for i in self._instances.values() if i.cell.kind is not CellKind.COMB
        )

    def comb_instances(self) -> tuple[Instance, ...]:
        return tuple(
            i for i in self._instances.values() if i.cell.kind is CellKind.COMB
        )

    def nets(self) -> set[str]:
        all_nets: set[str] = set(self._inputs) | set(self._outputs)
        for inst in self._instances.values():
            all_nets.update(inst.pins.values())
        return all_nets

    def driver_of(self, net: str) -> tuple[str, str] | None:
        """The (instance, pin) driving a net; ("", "") for primary inputs;
        None for floating nets."""
        return self._driver.get(net)

    def loads_of(self, net: str) -> list[tuple[Instance, str]]:
        """All (instance, input-pin) pairs reading a net."""
        loads = []
        for inst in self._instances.values():
            if inst.cell.kind is CellKind.COMB:
                in_pins: Iterable[str] = inst.cell.inputs
            else:
                in_pins = (inst.cell.data_pin,)
            for pin in in_pins:
                if inst.pins.get(pin) == net:
                    loads.append((inst, pin))
        return loads

    def check(self) -> list[str]:
        """Structural lint: floating nets, undriven loads."""
        problems = []
        for net in sorted(self.nets()):
            if net not in self._driver:
                problems.append(f"net {net!r} has no driver")
        return problems
