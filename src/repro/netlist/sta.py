"""Topological min/max combinational static timing analysis.

Computes, for every pair (timing start point, timing end point), the
longest and shortest pure-combinational gate path between them.  Start
points are sequential-cell outputs and primary inputs; end points are
sequential-cell data pins and primary outputs.  This is the calculation
that turns a gate netlist into the paper's ``Delta_ji`` parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.errors import CircuitError
from repro.netlist.netlist import Netlist

#: Start-point key for a primary input net.
PRIMARY = "<input>"


@dataclass(frozen=True)
class PathDelays:
    """Min/max combinational delay between one start and one end point."""

    start: str  # sequential instance name, or PRIMARY
    end: str  # sequential instance name, or "<output>"
    start_net: str
    end_net: str
    min_delay: float
    max_delay: float


@dataclass
class _NetTimes:
    """Per-net (min, max) delay from each reachable start point."""

    times: dict[str, tuple[float, float]] = field(default_factory=dict)

    def relax(self, start: str, lo: float, hi: float) -> None:
        if start in self.times:
            old_lo, old_hi = self.times[start]
            self.times[start] = (min(old_lo, lo), max(old_hi, hi))
        else:
            self.times[start] = (lo, hi)


def _comb_graph(netlist: Netlist) -> nx.DiGraph:
    """Net-to-net digraph through combinational cells only."""
    g = nx.DiGraph()
    for net in netlist.nets():
        g.add_node(net)
    for inst in netlist.comb_instances():
        for (a, z), (lo, hi) in inst.cell.arcs.items():
            src = inst.net(a)
            dst = inst.net(z)
            if g.has_edge(src, dst):
                old = g[src][dst]["delays"]
                g[src][dst]["delays"] = (min(old[0], lo), max(old[1], hi))
            else:
                g.add_edge(src, dst, delays=(lo, hi))
    return g


def combinational_delays(netlist: Netlist) -> list[PathDelays]:
    """All start-to-end min/max combinational path delays.

    Raises :class:`CircuitError` if the combinational portion of the
    netlist contains a cycle (a combinational loop -- the paper's model
    requires feedback-free combinational blocks).
    """
    g = _comb_graph(netlist)
    try:
        order = list(nx.topological_sort(g))
    except nx.NetworkXUnfeasible:
        cycle = nx.find_cycle(g)
        path = " -> ".join(str(a) for a, _ in cycle)
        raise CircuitError(
            f"combinational loop through nets: {path}; the timing model "
            f"requires feedback-free combinational blocks"
        ) from None

    # Seed start points: sequential outputs and primary inputs.
    start_of_net: dict[str, str] = {}
    for inst in netlist.sequential_instances():
        start_of_net[inst.net(inst.cell.output_pin)] = inst.name
    for net in netlist.inputs:
        start_of_net.setdefault(net, PRIMARY)

    arrive: dict[str, _NetTimes] = {net: _NetTimes() for net in g.nodes}
    for net, start in start_of_net.items():
        arrive[net].relax(start, 0.0, 0.0)

    for net in order:
        for _, dst, data in g.out_edges(net, data=True):
            lo_e, hi_e = data["delays"]
            for start, (lo, hi) in arrive[net].times.items():
                arrive[dst].relax(start, lo + lo_e, hi + hi_e)

    # Collect end points: sequential data pins and primary outputs.
    results: list[PathDelays] = []
    seen: dict[tuple[str, str], PathDelays] = {}

    def record(end_name: str, end_net: str) -> None:
        for start, (lo, hi) in arrive[end_net].times.items():
            key = (start, end_name)
            start_net = ""
            if start != PRIMARY:
                inst = netlist.instance(start)
                start_net = inst.net(inst.cell.output_pin)
            entry = PathDelays(
                start=start,
                end=end_name,
                start_net=start_net,
                end_net=end_net,
                min_delay=lo,
                max_delay=hi,
            )
            prev = seen.get(key)
            if prev is None:
                seen[key] = entry
            else:
                seen[key] = PathDelays(
                    start=start,
                    end=end_name,
                    start_net=prev.start_net,
                    end_net=prev.end_net,
                    min_delay=min(prev.min_delay, lo),
                    max_delay=max(prev.max_delay, hi),
                )

    for inst in netlist.sequential_instances():
        record(inst.name, inst.net(inst.cell.data_pin))
    for net in netlist.outputs:
        record("<output>", net)

    results = list(seen.values())
    results.sort(key=lambda p: (p.start, p.end))
    return results
