"""Timing cell library: combinational gates, latches and flip-flops.

Cells carry *timing* information only (pin-to-pin min/max delays, setup
and hold for sequential cells); logic functions are out of scope -- the
timing model never needs them, exactly as in the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import CircuitError, ParseError


class CellKind(str, enum.Enum):
    COMB = "comb"
    LATCH = "latch"
    FF = "ff"


@dataclass(frozen=True)
class Cell:
    """One library cell.

    For combinational cells, ``arcs`` maps ``(input_pin, output_pin)`` to
    ``(min_delay, max_delay)``.  Sequential cells use the dedicated fields:
    ``data_pin``/``clock_pin``/``output_pin`` plus ``dq_delay`` (min, max --
    the data-to-output delay while transparent, or clock-to-output for a
    flip-flop), ``setup`` and ``hold``.
    """

    name: str
    kind: CellKind
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    arcs: Mapping[tuple[str, str], tuple[float, float]] = field(default_factory=dict)
    data_pin: str = "D"
    clock_pin: str = "G"
    output_pin: str = "Q"
    dq_delay: tuple[float, float] = (0.0, 0.0)
    setup: float = 0.0
    hold: float = 0.0
    edge: str = "rise"  # flip-flops only

    def __post_init__(self) -> None:
        if self.kind is CellKind.COMB:
            for (a, z), (lo, hi) in self.arcs.items():
                if a not in self.inputs or z not in self.outputs:
                    raise CircuitError(
                        f"cell {self.name}: arc {a}->{z} references unknown pins"
                    )
                if not 0 <= lo <= hi:
                    raise CircuitError(
                        f"cell {self.name}: arc {a}->{z} has invalid delays "
                        f"({lo}, {hi})"
                    )
        else:
            lo, hi = self.dq_delay
            if not 0 <= lo <= hi:
                raise CircuitError(
                    f"cell {self.name}: invalid dq_delay ({lo}, {hi})"
                )
            if self.setup < 0 or self.hold < 0:
                raise CircuitError(
                    f"cell {self.name}: setup/hold must be >= 0"
                )

    @property
    def pins(self) -> tuple[str, ...]:
        if self.kind is CellKind.COMB:
            return self.inputs + self.outputs
        return (self.data_pin, self.clock_pin, self.output_pin)


def comb_cell(
    name: str,
    inputs: tuple[str, ...],
    outputs: tuple[str, ...],
    delay: tuple[float, float],
) -> Cell:
    """A combinational cell with one uniform delay for every in->out arc."""
    arcs = {(a, z): delay for a in inputs for z in outputs}
    return Cell(name, CellKind.COMB, inputs=inputs, outputs=outputs, arcs=arcs)


class Library:
    """A named collection of cells."""

    def __init__(self, name: str, cells: Mapping[str, Cell] | None = None):
        self.name = name
        self._cells: dict[str, Cell] = dict(cells or {})

    def add(self, cell: Cell) -> None:
        if cell.name in self._cells:
            raise CircuitError(f"duplicate cell {cell.name!r} in library {self.name}")
        self._cells[cell.name] = cell

    def __getitem__(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise CircuitError(
                f"unknown cell {name!r}; library {self.name} has "
                f"{sorted(self._cells)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self):
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def names(self) -> list[str]:
        return sorted(self._cells)


def default_library() -> Library:
    """A small generic library with ns-scale delays.

    Delay values are loosely modeled on a fast sub-micron process: simple
    gates 30-90 ps, complex gates up to 160 ps, latch D-to-Q 80 ps.
    """
    lib = Library("generic")
    gates = [
        ("INV", ("A",), 0.02, 0.04),
        ("BUF", ("A",), 0.03, 0.06),
        ("NAND2", ("A", "B"), 0.03, 0.06),
        ("NAND3", ("A", "B", "C"), 0.04, 0.08),
        ("NOR2", ("A", "B"), 0.03, 0.07),
        ("AND2", ("A", "B"), 0.04, 0.08),
        ("OR2", ("A", "B"), 0.04, 0.08),
        ("XOR2", ("A", "B"), 0.05, 0.11),
        ("XNOR2", ("A", "B"), 0.05, 0.11),
        ("MUX2", ("A", "B", "S"), 0.05, 0.10),
        ("AOI21", ("A", "B", "C"), 0.04, 0.09),
        ("OAI21", ("A", "B", "C"), 0.04, 0.09),
        ("FA_S", ("A", "B", "CI"), 0.08, 0.16),  # full-adder sum slice
        ("FA_C", ("A", "B", "CI"), 0.06, 0.12),  # full-adder carry slice
    ]
    for name, inputs, lo, hi in gates:
        lib.add(comb_cell(name, inputs, ("Z",), (lo, hi)))
    lib.add(
        Cell(
            "DLATCH",
            CellKind.LATCH,
            data_pin="D",
            clock_pin="G",
            output_pin="Q",
            dq_delay=(0.04, 0.08),
            setup=0.06,
            hold=0.02,
        )
    )
    lib.add(
        Cell(
            "DFF",
            CellKind.FF,
            data_pin="D",
            clock_pin="CK",
            output_pin="Q",
            dq_delay=(0.05, 0.10),
            setup=0.08,
            hold=0.02,
            edge="rise",
        )
    )
    lib.add(
        Cell(
            "DFFN",
            CellKind.FF,
            data_pin="D",
            clock_pin="CK",
            output_pin="Q",
            dq_delay=(0.05, 0.10),
            setup=0.08,
            hold=0.02,
            edge="fall",
        )
    )
    return lib


def parse_library(text: str) -> Library:
    """Parse a compact cell-library description.

    Format::

        library fast {
          cell NAND2 { input A B; output Z; delay A -> Z 0.03 0.06; }
          latch DLAT { delay 0.04 0.08; setup 0.06; hold 0.02; }
          ff DFF { delay 0.05 0.1; setup 0.08; hold 0.02; edge rise; }
        }

    Sequential cells use fixed pin names (D, G/CK, Q).
    """
    from repro.lang.lexer import TokenKind, tokenize

    tokens = tokenize(text)
    pos = 0

    def peek():
        return tokens[pos]

    def advance():
        nonlocal pos
        tok = tokens[pos]
        if tok.kind is not TokenKind.EOF:
            pos += 1
        return tok

    def expect(kind: TokenKind, what: str):
        tok = advance()
        if tok.kind is not kind:
            raise ParseError(f"expected {what}, got {tok.text!r}", tok.line, tok.column)
        return tok

    def keyword(word: str):
        tok = advance()
        if tok.kind is not TokenKind.IDENT or tok.text != word:
            raise ParseError(
                f"expected {word!r}, got {tok.text!r}", tok.line, tok.column
            )

    keyword("library")
    lib = Library(expect(TokenKind.IDENT, "a library name").text)
    expect(TokenKind.LBRACE, "'{'")
    while peek().kind is not TokenKind.RBRACE:
        head = advance()
        if head.kind is not TokenKind.IDENT or head.text not in ("cell", "latch", "ff"):
            raise ParseError(
                f"expected 'cell', 'latch' or 'ff', got {head.text!r}",
                head.line,
                head.column,
            )
        name = expect(TokenKind.IDENT, "a cell name").text
        expect(TokenKind.LBRACE, "'{'")
        inputs: list[str] = []
        outputs: list[str] = []
        arcs: dict[tuple[str, str], tuple[float, float]] = {}
        attrs = {"setup": 0.0, "hold": 0.0}
        dq = (0.0, 0.0)
        edge = "rise"
        while peek().kind is not TokenKind.RBRACE:
            word = expect(TokenKind.IDENT, "an attribute").text
            if word == "input":
                while peek().kind is TokenKind.IDENT:
                    inputs.append(advance().text)
            elif word == "output":
                while peek().kind is TokenKind.IDENT:
                    outputs.append(advance().text)
            elif word == "delay":
                if head.text == "cell":
                    a = expect(TokenKind.IDENT, "an input pin").text
                    expect(TokenKind.ARROW, "'->'")
                    z = expect(TokenKind.IDENT, "an output pin").text
                    lo = expect(TokenKind.NUMBER, "a min delay").number
                    hi = expect(TokenKind.NUMBER, "a max delay").number
                    arcs[(a, z)] = (lo, hi)
                else:
                    lo = expect(TokenKind.NUMBER, "a min delay").number
                    hi = expect(TokenKind.NUMBER, "a max delay").number
                    dq = (lo, hi)
            elif word in attrs:
                attrs[word] = expect(TokenKind.NUMBER, f"a {word} value").number
            elif word == "edge":
                edge = expect(TokenKind.IDENT, "'rise' or 'fall'").text
                if edge not in ("rise", "fall"):
                    raise ParseError(f"edge must be rise/fall, got {edge!r}")
            else:
                raise ParseError(f"unknown attribute {word!r}", head.line, head.column)
            expect(TokenKind.SEMI, "';'")
        expect(TokenKind.RBRACE, "'}'")
        if head.text == "cell":
            lib.add(
                Cell(
                    name,
                    CellKind.COMB,
                    inputs=tuple(inputs),
                    outputs=tuple(outputs),
                    arcs=arcs,
                )
            )
        elif head.text == "latch":
            lib.add(
                Cell(
                    name,
                    CellKind.LATCH,
                    clock_pin="G",
                    dq_delay=dq,
                    setup=attrs["setup"],
                    hold=attrs["hold"],
                )
            )
        else:
            lib.add(
                Cell(
                    name,
                    CellKind.FF,
                    clock_pin="CK",
                    dq_delay=dq,
                    setup=attrs["setup"],
                    hold=attrs["hold"],
                    edge=edge,
                )
            )
    expect(TokenKind.RBRACE, "'}'")
    return lib
