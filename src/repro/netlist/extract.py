"""Extract a latch-level :class:`TimingGraph` from a gate netlist.

This is the bridge from the gate-level substrate to the paper's model:
sequential cells become :class:`Latch`/:class:`FlipFlop` synchronizers
(with setup and D-to-Q delay taken from the library), and the min/max
combinational path delays computed by :mod:`repro.netlist.sta` become the
``Delta_ji`` arcs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.circuit.builder import CircuitBuilder
from repro.circuit.graph import TimingGraph
from repro.errors import CircuitError
from repro.netlist.cells import CellKind
from repro.netlist.netlist import Netlist
from repro.netlist.sta import PRIMARY, combinational_delays


def extract_timing_graph(
    netlist: Netlist,
    phase_of_clock_net: Mapping[str, str],
    phases: Sequence[str] | None = None,
    ignore_primary_io: bool = True,
) -> TimingGraph:
    """Build the SMO timing graph of a gate netlist.

    ``phase_of_clock_net`` maps each clock net (the net wired to latch
    ``G`` / flip-flop ``CK`` pins) to a clock phase name.  ``phases`` fixes
    the phase ordering (default: first-use order).  Combinational paths
    from primary inputs or to primary outputs are dropped when
    ``ignore_primary_io`` (their timing needs external arrival/required
    times, which the paper's intra-circuit model does not cover); pass
    False to raise instead, as a completeness check.
    """
    sequential = netlist.sequential_instances()
    if not sequential:
        raise CircuitError("netlist has no latches or flip-flops to extract")

    # Establish the phase list and each synchronizer's phase.
    phase_of_sync: dict[str, str] = {}
    order: list[str] = list(phases or [])
    for inst in sequential:
        clock_net = inst.net(inst.cell.clock_pin)
        try:
            phase = phase_of_clock_net[clock_net]
        except KeyError:
            raise CircuitError(
                f"instance {inst.name}: clock net {clock_net!r} has no "
                f"phase mapping"
            ) from None
        phase_of_sync[inst.name] = phase
        if phase not in order:
            if phases is not None:
                raise CircuitError(
                    f"clock net {clock_net!r} maps to phase {phase!r}, which "
                    f"is not in the declared phase list {list(phases)}"
                )
            order.append(phase)

    builder = CircuitBuilder(order)
    for inst in sequential:
        cell = inst.cell
        if cell.kind is CellKind.LATCH:
            builder.latch(
                inst.name,
                phase=phase_of_sync[inst.name],
                setup=cell.setup,
                delay=cell.dq_delay[1],
                hold=cell.hold,
            )
        else:
            builder.flipflop(
                inst.name,
                phase=phase_of_sync[inst.name],
                setup=cell.setup,
                delay=cell.dq_delay[1],
                hold=cell.hold,
                edge=cell.edge,
            )

    for path in combinational_delays(netlist):
        if path.start == PRIMARY or path.end == "<output>":
            if ignore_primary_io:
                continue
            raise CircuitError(
                f"path {path.start} -> {path.end} touches primary I/O; "
                f"extraction covers only latch-to-latch paths"
            )
        builder.path(
            path.start,
            path.end,
            delay=path.max_delay,
            min_delay=path.min_delay,
        )
    return builder.build()
