"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ClockError(ReproError):
    """A clock phase or schedule is malformed or violates C1-C4."""


class CircuitError(ReproError):
    """A circuit description is structurally invalid."""


class PhaseOverlapError(CircuitError):
    """A feedback loop is controlled by simultaneously-overlapping phases.

    Section III of the paper requires the logical AND of the phases
    controlling every feedback loop to be identically 0; this error reports
    a violation of that structural precondition.
    """


class LPError(ReproError):
    """Base class for linear-programming failures."""


class InfeasibleError(LPError):
    """The LP (or the timing problem it encodes) has no feasible solution."""


class UnboundedError(LPError):
    """The LP objective is unbounded below."""


class SolverError(LPError):
    """A backend failed for a reason other than infeasibility/unboundedness."""


class AnalysisError(ReproError):
    """Fixed-schedule timing analysis could not be completed."""


class DivergentTimingError(AnalysisError):
    """The max-plus departure-time fixpoint does not exist.

    This corresponds to a positive cycle in the propagation graph: under the
    given clock schedule, signals around some latch loop get later every
    cycle, so the circuit cannot be clocked at that schedule.
    """


class ParseError(ReproError):
    """The circuit-description text is syntactically or semantically invalid."""

    def __init__(
        self, message: str, line: int | None = None, column: int | None = None
    ):
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
