"""DEV2xx: nondeterminism inside job-signature functions.

``repro.engine.jobspec`` derives content-addressed cache keys by
sha256-hashing canonical JSON built in the ``*_signature`` helpers.
Anything that makes two runs of the *same* job produce different bytes
silently poisons the cache: warm-start reuse stops matching, the serve
store accumulates duplicate rows, and cross-machine result sharing
breaks -- all without a single failing assertion.  The classic offenders
are exactly the ones these rules pattern-match:

* ``DEV201`` -- ``hash()``: salted per-process by ``PYTHONHASHSEED``;
* ``DEV202`` -- ``id()``: an address, different every run;
* ``DEV203`` -- ``str()`` / f-string formatting of values: ``str`` is
  not a canonical float encoding (``repr(float(x))`` is -- see ``_f``);
* ``DEV204`` -- iterating a dict or set without ``sorted(...)``:
  insertion / hash order leaks into the signature;
* ``DEV205`` -- wall-clock or entropy reads (``time``, ``datetime.now``,
  ``random``, ``uuid``, ``os.urandom``): different every call.

Scope: only functions that *are* signature builders -- named
``signature`` / ``*_signature``, or ``job_key`` / ``_digest`` (plus the
float canonicalizer ``_f`` in ``jobspec`` modules).  Ordinary code may
use ``hash()`` and clocks freely; these rules never look at it.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.devlint.astutil import (
    FunctionInfo,
    call_chain,
    function_table,
    has_ancestor_call,
    parent_map,
)
from repro.devlint.project import ModuleUnit
from repro.devlint.report import DevFinding, Severity
from repro.devlint.rules import make_finding, rule

#: Function names always treated as signature builders.
_SIGNATURE_NAMES = frozenset({"signature", "job_key", "_digest"})

#: Mapping/set view methods whose iteration order is not canonical.
_UNORDERED_VIEWS = frozenset({"items", "keys", "values"})

#: Call chains that read wall clocks or entropy sources.
_CLOCK_PREFIXES = ("time", "datetime", "random", "uuid", "secrets")

_ORDER_FIXERS = frozenset({"sorted", "min", "max", "len", "sum"})


def signature_functions(unit: ModuleUnit) -> list[FunctionInfo]:
    """The functions in ``unit`` that build job signatures."""
    out: list[FunctionInfo] = []
    jobspec_module = unit.module.rpartition(".")[2] == "jobspec"
    for info in function_table(unit.tree):
        if (
            info.name in _SIGNATURE_NAMES
            or info.name.endswith("_signature")
            or (jobspec_module and info.name == "_f")
        ):
            out.append(info)
    return out


def _body_nodes(info: FunctionInfo) -> Iterator[ast.AST]:
    # Nested defs are part of the signature computation, so descend.
    for stmt in info.node.body:
        yield from ast.walk(stmt)


def _is_clock_read(chain: tuple[str, ...]) -> bool:
    if chain[0] in _CLOCK_PREFIXES and len(chain) > 1:
        return True
    if chain == ("os", "urandom"):
        return True
    # "from time import monotonic"-style bare reads.
    return chain[-1] in (
        "time",
        "monotonic",
        "perf_counter",
        "utcnow",
        "now",
        "urandom",
        "uuid4",
        "uuid1",
    ) and len(chain) <= 2


def _sig_findings(
    unit: ModuleUnit, code: str
) -> Iterable[DevFinding]:
    parents = parent_map(unit.tree)
    for info in signature_functions(unit):
        for node in _body_nodes(info):
            if not isinstance(node, ast.Call):
                continue
            chain = call_chain(node)
            if chain is None:
                continue
            if code == "DEV201" and chain == ("hash",):
                yield make_finding(
                    code,
                    unit,
                    node,
                    "hash() in a signature function is salted by "
                    "PYTHONHASHSEED and differs across interpreter runs",
                    scope=info.qualname,
                )
            elif code == "DEV202" and chain == ("id",):
                yield make_finding(
                    code,
                    unit,
                    node,
                    "id() in a signature function is a memory address "
                    "and differs every run",
                    scope=info.qualname,
                )
            elif code == "DEV204" and chain[-1] in _UNORDERED_VIEWS:
                if not has_ancestor_call(
                    node, parents, _ORDER_FIXERS, stop=info.node
                ):
                    yield make_finding(
                        code,
                        unit,
                        node,
                        f"'.{chain[-1]}()' iterated without sorted(): "
                        "dict/set order leaks into the signature",
                        scope=info.qualname,
                    )
            elif code == "DEV205" and _is_clock_read(chain):
                yield make_finding(
                    code,
                    unit,
                    node,
                    f"'{'.'.join(chain)}()' reads a clock or entropy "
                    "source inside a signature function",
                    scope=info.qualname,
                )


@rule(
    "DEV201",
    Severity.ERROR,
    "builtin hash() inside a job-signature function",
    fix_hint="hash content, not objects: build canonical JSON and "
    "digest it with hashlib (see jobspec._digest)",
)
def _sig_hash(unit: ModuleUnit) -> Iterable[DevFinding]:
    return _sig_findings(unit, "DEV201")


@rule(
    "DEV202",
    Severity.ERROR,
    "builtin id() inside a job-signature function",
    fix_hint="identify objects by their content signature, never by "
    "address",
)
def _sig_id(unit: ModuleUnit) -> Iterable[DevFinding]:
    return _sig_findings(unit, "DEV202")


@rule(
    "DEV203",
    Severity.WARNING,
    "str()/f-string value formatting inside a job-signature function",
    fix_hint="floats must go through repr(float(x)) (jobspec._f); "
    "str() is not a canonical encoding",
)
def _sig_str(unit: ModuleUnit) -> Iterable[DevFinding]:
    for info in signature_functions(unit):
        if info.name == "_f":
            # The canonicalizer itself is the sanctioned formatter.
            continue
        for node in _body_nodes(info):
            if isinstance(node, ast.Call) and call_chain(node) == ("str",):
                yield make_finding(
                    "DEV203",
                    unit,
                    node,
                    "str() formatting inside a signature function; "
                    "str(float) is locale-stable but not versioned as "
                    "canonical -- route floats through _f()",
                    scope=info.qualname,
                )
            elif isinstance(node, ast.FormattedValue):
                yield make_finding(
                    "DEV203",
                    unit,
                    node,
                    "f-string interpolation inside a signature "
                    "function; format specs are not a canonical "
                    "encoding -- build JSON instead",
                    scope=info.qualname,
                )


@rule(
    "DEV204",
    Severity.ERROR,
    "unsorted dict/set iteration inside a job-signature function",
    fix_hint="wrap the view in sorted(...): 'sorted(mapping.items())'",
)
def _sig_unsorted(unit: ModuleUnit) -> Iterable[DevFinding]:
    return _sig_findings(unit, "DEV204")


@rule(
    "DEV205",
    Severity.ERROR,
    "clock or entropy read inside a job-signature function",
    fix_hint="signatures must be pure functions of the job content; "
    "timestamps belong in run metadata, not cache keys",
)
def _sig_clock(unit: ModuleUnit) -> Iterable[DevFinding]:
    return _sig_findings(unit, "DEV205")
