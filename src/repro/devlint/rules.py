"""The devlint rule registry: coded AST checks over project source.

Mirrors :mod:`repro.lint.rules` exactly in shape -- a frozen rule
dataclass, a ``@rule`` registration decorator, ``registered_rules()`` --
but the checks take a parsed :class:`~repro.devlint.project.ModuleUnit`
instead of a circuit.  Code ranges by family:

* ``DEV1xx`` -- async hygiene: blocking calls reachable from ``async
  def`` bodies without an executor hop (:mod:`repro.devlint.async_rules`);
* ``DEV2xx`` -- hash determinism: nondeterminism inside job-signature
  functions (:mod:`repro.devlint.hash_rules`);
* ``DEV3xx`` -- observability hygiene: leaked spans, uncataloged metric
  names, out-of-registry counter mutation
  (:mod:`repro.devlint.obs_rules`);
* ``DEV4xx`` -- sparsity wiring: unrouted dense materializations of
  CSR/CSC matrices (:mod:`repro.devlint.sparse_rules`).

Rule modules register themselves at import; :func:`load_rules` imports
them all and is called by the runner (and ``__init__``), so consumers
never see a half-populated registry.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.devlint.project import ModuleUnit
from repro.devlint.report import DevFinding, Severity

RuleCheck = Callable[[ModuleUnit], Iterable[DevFinding]]


@dataclass(frozen=True)
class DevRule:
    """One registered source-level check."""

    code: str
    severity: Severity
    description: str
    check: RuleCheck
    fix_hint: str | None = None


_REGISTRY: dict[str, DevRule] = {}


def rule(
    code: str,
    severity: Severity,
    description: str,
    fix_hint: str | None = None,
) -> Callable[[RuleCheck], RuleCheck]:
    """Register a rule function under a stable code."""

    def register(check: RuleCheck) -> RuleCheck:
        if code in _REGISTRY:
            raise ValueError(f"duplicate devlint rule code {code!r}")
        _REGISTRY[code] = DevRule(
            code=code,
            severity=severity,
            description=description,
            check=check,
            fix_hint=fix_hint,
        )
        return check

    return register


def load_rules() -> None:
    """Import every rule family module (idempotent)."""
    from repro.devlint import (  # noqa: F401  (import-for-registration)
        async_rules,
        hash_rules,
        obs_rules,
        sparse_rules,
    )


def registered_rules() -> tuple[DevRule, ...]:
    """All rules, in registration order."""
    load_rules()
    return tuple(_REGISTRY.values())


def get_rule(code: str) -> DevRule:
    load_rules()
    return _REGISTRY[code]


def make_finding(
    code: str,
    unit: ModuleUnit,
    node: ast.AST,
    message: str,
    scope: str = "",
) -> DevFinding:
    """Build a finding for ``node``, pulling location/snippet off the unit."""
    rule_def = _REGISTRY[code]
    lineno = int(getattr(node, "lineno", 0) or 0)
    col = int(getattr(node, "col_offset", 0) or 0) + 1
    return DevFinding(
        code=code,
        severity=rule_def.severity,
        path=unit.path,
        line=lineno,
        col=col,
        message=message,
        scope=scope,
        snippet=unit.line_at(lineno).strip(),
        fix_hint=rule_def.fix_hint,
    )
