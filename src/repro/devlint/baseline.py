"""The devlint baseline: accepted findings, committed next to the code.

A baseline lets the gate be *blocking* from day one: deliberate
violations (e.g. ``ServiceStats.__setattr__`` writing counter values by
design) are recorded once, reviewed in the PR that records them, and
stop failing CI -- while anything *new* still does.

Entries match on :meth:`DevFinding.baseline_key` -- ``(code, path,
scope, snippet)`` -- deliberately excluding line numbers, so unrelated
edits that shift a file do not churn the baseline.  Matching is
multiset-style: two identical accepted findings need two entries.
Entries that match nothing are reported as *stale* so the file shrinks
as violations get fixed.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable

from repro.devlint.project import DevLintError
from repro.devlint.report import DevFinding

BASELINE_VERSION = 1

_KEY_FIELDS = ("code", "path", "scope", "snippet")

BaselineKey = tuple[str, str, str, str]


def load_baseline(path: str) -> list[dict[str, str]]:
    """Read a baseline file; a missing file is an empty baseline."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        return []
    except (OSError, json.JSONDecodeError) as err:
        raise DevLintError(f"cannot read baseline {path!r}: {err}") from err
    if not isinstance(payload, dict) or "entries" not in payload:
        raise DevLintError(
            f"baseline {path!r} is not a devlint baseline "
            "(expected an object with an 'entries' list)"
        )
    entries = payload["entries"]
    if not isinstance(entries, list):
        raise DevLintError(f"baseline {path!r}: 'entries' must be a list")
    out: list[dict[str, str]] = []
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict) or not all(
            isinstance(entry.get(field), str) for field in _KEY_FIELDS
        ):
            raise DevLintError(
                f"baseline {path!r}: entry {index} must carry string "
                f"fields {_KEY_FIELDS}"
            )
        out.append({field: entry[field] for field in _KEY_FIELDS})
    return out


def save_baseline(path: str, findings: Iterable[DevFinding]) -> int:
    """Write the current findings as the new baseline; returns the count."""
    entries = sorted(
        (
            {
                "code": f.code,
                "path": f.path,
                "scope": f.scope,
                "snippet": f.snippet,
            }
            for f in findings
        ),
        key=lambda e: (e["path"], e["code"], e["scope"], e["snippet"]),
    )
    payload = {"version": BASELINE_VERSION, "entries": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)


def _entry_key(entry: dict[str, str]) -> BaselineKey:
    return (entry["code"], entry["path"], entry["scope"], entry["snippet"])


def apply_baseline(
    findings: list[DevFinding], entries: list[dict[str, str]]
) -> tuple[list[DevFinding], list[DevFinding], list[dict[str, str]]]:
    """Split findings into ``(actionable, baselined, stale_entries)``."""
    budget = Counter(_entry_key(entry) for entry in entries)
    actionable: list[DevFinding] = []
    baselined: list[DevFinding] = []
    for finding in findings:
        key = finding.baseline_key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            baselined.append(finding)
        else:
            actionable.append(finding)
    stale: list[dict[str, str]] = []
    for entry in entries:
        key = _entry_key(entry)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            stale.append(entry)
    return actionable, baselined, stale
