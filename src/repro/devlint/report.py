"""Structured findings for the devlint subsystem.

The shape deliberately mirrors :mod:`repro.lint.report` -- one stable
coded finding type plus an aggregating report -- but devlint findings
locate *source positions* (``path:line:col``) instead of circuit
objects, and the report additionally tracks the baseline bookkeeping
(which findings were accepted, which baseline entries went stale).
Severity is shared with the circuit linter: one enum, one meaning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.lint.report import Severity


@dataclass(frozen=True)
class DevFinding:
    """One diagnosed source-level problem.

    ``code`` is the stable rule identifier (``DEV1xx`` async hygiene,
    ``DEV2xx`` hash determinism, ``DEV3xx`` observability hygiene,
    ``DEV4xx`` sparsity wiring; see ``docs/DEVLINT.md``); ``scope`` is
    the dotted enclosing function/class, and ``snippet`` the stripped
    source line -- the pair identifies a finding robustly across line
    drift, which is what the baseline matches on.
    """

    code: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    scope: str = ""
    snippet: str = ""
    fix_hint: str | None = None

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def baseline_key(self) -> tuple[str, str, str, str]:
        """The identity the baseline matches on (line numbers excluded)."""
        return (self.code, self.path, self.scope, self.snippet)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "scope": self.scope,
            "snippet": self.snippet,
        }
        if self.fix_hint:
            out["fix_hint"] = self.fix_hint
        return out

    def __str__(self) -> str:
        scope = f" ({self.scope})" if self.scope else ""
        return (
            f"{self.location}: {self.severity.value}[{self.code}] "
            f"{self.message}{scope}"
        )


@dataclass
class DevReport:
    """All findings of one devlint run, split by baseline status.

    ``findings`` are the *actionable* ones (not baselined, not waived);
    ``baselined`` were matched by the committed baseline file;
    ``stale_baseline`` lists baseline entries that matched nothing (the
    violation was fixed -- the entry should be dropped).
    """

    findings: list[DevFinding] = field(default_factory=list)
    baselined: list[DevFinding] = field(default_factory=list)
    stale_baseline: list[dict[str, str]] = field(default_factory=list)
    waived: int = 0
    files: int = 0
    baseline_path: str | None = None

    def __iter__(self) -> Iterator[DevFinding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    @property
    def ok(self) -> bool:
        """True when no unbaselined finding is present (the CI gate)."""
        return not self.findings

    def counts(self) -> dict[str, int]:
        out = {"error": 0, "warning": 0, "info": 0}
        for finding in self.findings:
            out[finding.severity.value] += 1
        return out

    def by_location(self) -> list[DevFinding]:
        return sorted(
            self.findings, key=lambda f: (f.path, f.line, f.col, f.code)
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "files": self.files,
            "counts": self.counts(),
            "findings": [f.to_dict() for f in self.by_location()],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_baseline": list(self.stale_baseline),
            "waived": self.waived,
            "baseline": self.baseline_path,
        }

    def format(self, show_baselined: bool = False) -> str:
        """Plain-text rendering for the CLI."""
        lines: list[str] = []
        for finding in self.by_location():
            lines.append(str(finding))
            lines.append(f"    {finding.snippet}")
            if finding.fix_hint:
                lines.append(f"    hint: {finding.fix_hint}")
        if show_baselined and self.baselined:
            lines.append("baselined (accepted) findings:")
            for finding in sorted(
                self.baselined, key=lambda f: (f.path, f.line)
            ):
                lines.append(f"  {finding}")
        for entry in self.stale_baseline:
            lines.append(
                f"stale baseline entry: {entry.get('code')} at "
                f"{entry.get('path')} ({entry.get('scope')}) matched "
                "nothing -- drop it or re-run with --update-baseline"
            )
        counts = self.counts()
        summary = ", ".join(
            f"{n} {kind}{'s' if n != 1 else ''}"
            for kind, n in counts.items()
            if n
        )
        tail = []
        if self.baselined:
            tail.append(f"{len(self.baselined)} baselined")
        if self.waived:
            tail.append(f"{self.waived} waived")
        suffix = f" ({', '.join(tail)})" if tail else ""
        lines.append(
            f"devlint: {summary or 'clean'} over {self.files} "
            f"file{'s' if self.files != 1 else ''}{suffix}"
        )
        return "\n".join(lines)
