"""Shared AST plumbing for the devlint rules.

Everything here is rule-agnostic: dotted-name extraction for call
targets, parent maps, and the function table (every ``def`` in a module
with its dotted qualname and async-ness) that the reachability-based
rules build on.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


def attr_chain(node: ast.expr) -> tuple[str, ...] | None:
    """The dotted-name chain of an expression, or ``None`` if non-dotted.

    ``self.store.get`` -> ``("self", "store", "get")``.  Intervening
    calls are collapsed to a ``"()"`` segment, so the receiver of
    ``registry.counter(name).value`` reads
    ``("registry", "counter", "()", "value")`` -- rules can recognize
    "attribute of a call result" shapes without re-walking.
    """
    parts: list[str] = []
    current: ast.expr = node
    while True:
        if isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        elif isinstance(current, ast.Call):
            parts.append("()")
            current = current.func
        elif isinstance(current, ast.Name):
            parts.append(current.id)
            break
        else:
            return None
    return tuple(reversed(parts))


def call_chain(call: ast.Call) -> tuple[str, ...] | None:
    """The dotted chain of a call's callee (``None`` for computed callees)."""
    return attr_chain(call.func)


def keyword_value(call: ast.Call, name: str) -> ast.expr | None:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """Child -> parent for every node under ``tree``."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def nearest_statement(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> ast.AST | None:
    """The closest ancestor (or self) that is a statement or withitem."""
    current: ast.AST | None = node
    while current is not None:
        if isinstance(current, (ast.stmt, ast.withitem)):
            return current
        current = parents.get(current)
    return None


def has_ancestor_call(
    node: ast.AST,
    parents: dict[ast.AST, ast.AST],
    names: frozenset[str],
    stop: ast.AST | None = None,
) -> bool:
    """True when an enclosing expression is a call to one of ``names``."""
    current: ast.AST | None = parents.get(node)
    while current is not None and current is not stop:
        if isinstance(current, ast.Call):
            chain = call_chain(current)
            if chain is not None and chain[-1] in names:
                return True
        current = parents.get(current)
    return False


@dataclass(frozen=True)
class FunctionInfo:
    """One ``def`` in a module: dotted qualname, node, and context."""

    qualname: str  #: e.g. "AnalysisService._obtain"
    name: str
    node: FunctionNode
    is_async: bool
    classname: str | None  #: immediate enclosing class, if a method


def function_table(tree: ast.Module) -> list[FunctionInfo]:
    """Every function/method in the module with its dotted qualname."""
    table: list[FunctionInfo] = []

    def visit(node: ast.AST, prefix: str, classname: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                table.append(
                    FunctionInfo(
                        qualname=qualname,
                        name=child.name,
                        node=child,
                        is_async=isinstance(child, ast.AsyncFunctionDef),
                        classname=classname,
                    )
                )
                visit(child, f"{qualname}.", classname)
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.", child.name)
            else:
                visit(child, prefix, classname)

    visit(tree, "", None)
    return table


def walk_body(
    fn: FunctionNode, skip_nested_defs: bool = True
) -> Iterator[ast.AST]:
    """Walk a function body, optionally skipping nested function scopes.

    Nested ``def``/``async def`` bodies execute in their own context (a
    callback, a worker, another coroutine), so rules that reason about
    *this* function's execution context must not descend into them.
    Lambdas are descended into: they share the enclosing context unless
    explicitly shipped elsewhere, which the async rules special-case.
    """
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        if skip_nested_defs and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))
