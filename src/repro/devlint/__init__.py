"""repro.devlint: project-aware static analysis for the repro codebase.

Where :mod:`repro.lint` checks *circuits* against the paper's timing
rules, devlint checks the *source tree* against the project's own
engineering invariants -- the conventions that keep the async serve
layer responsive, the job-signature cache keys deterministic, the
observability data trustworthy, and the sparse substrate's dense
materializations attributed.  See ``docs/DEVLINT.md`` for the rule
catalog and the baseline workflow.
"""

from repro.devlint.baseline import load_baseline, save_baseline
from repro.devlint.project import (
    DevLintError,
    ModuleUnit,
    load_file,
    load_source,
)
from repro.devlint.report import DevFinding, DevReport, Severity
from repro.devlint.rules import (
    DevRule,
    get_rule,
    load_rules,
    registered_rules,
    rule,
)
from repro.devlint.runner import (
    DEFAULT_BASELINE,
    lint_paths,
    lint_source,
    run_devlint,
)

__all__ = [
    "DEFAULT_BASELINE",
    "DevFinding",
    "DevLintError",
    "DevReport",
    "DevRule",
    "ModuleUnit",
    "Severity",
    "get_rule",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "load_file",
    "load_rules",
    "load_source",
    "registered_rules",
    "rule",
    "run_devlint",
    "save_baseline",
]
