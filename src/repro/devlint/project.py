"""Project model for devlint: discovered files, parsed ASTs, waivers.

A :class:`ModuleUnit` is one parsed Python file plus everything a rule
needs to inspect it: its repo-relative path, a best-effort dotted module
name (used by rules that scope themselves to packages, e.g. the async
rules' knowledge that ``repro.serve`` runs on an event loop), the raw
source lines (for snippets), and the per-line waiver map.

Waivers are in-source accepted findings::

    cursor.execute(sql)  # devlint: waiver[DEV102] startup path, loop not running

Both ``waiver[...]`` and ``ignore[...]`` spellings are accepted, and
``*`` waives every rule on the line.  A waiver anywhere on the physical
lines a flagged node spans (a black-wrapped call is several lines)
suppresses the finding; waived findings are counted, never silently
dropped from the report totals.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field

from repro.errors import ReproError

_WAIVER_RE = re.compile(
    r"#\s*devlint:\s*(?:waiver|ignore)\[([A-Z0-9,*\s]+)\]"
)

#: Directory names never descended into during discovery.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".mypy_cache", ".ruff_cache"})


class DevLintError(ReproError):
    """A devlint input could not be read or parsed."""


@dataclass(frozen=True)
class ModuleUnit:
    """One parsed source file, ready for rule checks."""

    path: str  #: repo-relative posix path (also the report path)
    module: str  #: best-effort dotted module name ("" when unknown)
    source: str
    tree: ast.Module
    lines: tuple[str, ...] = field(repr=False)
    waivers: dict[int, frozenset[str]] = field(repr=False)

    def line_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def waived(self, code: str, node: ast.AST) -> bool:
        """True when a waiver for ``code`` covers any line ``node`` spans."""
        first = int(getattr(node, "lineno", 0) or 0)
        last = int(getattr(node, "end_lineno", first) or first)
        for lineno in range(first, last + 1):
            codes = self.waivers.get(lineno)
            if codes is not None and ("*" in codes or code in codes):
                return True
        return False


def parse_waivers(source: str) -> dict[int, frozenset[str]]:
    """Per-line waived rule codes (1-based line numbers)."""
    waivers: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _WAIVER_RE.search(line)
        if match is None:
            continue
        codes = frozenset(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        if codes:
            waivers[lineno] = codes
    return waivers


def module_name_for(path: str) -> str:
    """Dotted module name derived from a repo-relative path, best effort."""
    norm = path.replace(os.sep, "/")
    for prefix in ("src/", "./src/"):
        if norm.startswith(prefix):
            norm = norm[len(prefix):]
            break
    if not norm.endswith(".py"):
        return ""
    norm = norm[:-3]
    if norm.endswith("/__init__"):
        norm = norm[: -len("/__init__")]
    return norm.strip("/").replace("/", ".")


def load_source(
    source: str, path: str = "<memory>", module: str | None = None
) -> ModuleUnit:
    """Parse a source string into a :class:`ModuleUnit`.

    Rules and their tests lint in-memory snippets through this; the
    ``path`` is only used for reporting and path-scoped rule behavior.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        raise DevLintError(f"{path}: cannot parse: {err}") from err
    return ModuleUnit(
        path=path,
        module=module if module is not None else module_name_for(path),
        source=source,
        tree=tree,
        lines=tuple(source.splitlines()),
        waivers=parse_waivers(source),
    )


def load_file(path: str, root: str | None = None) -> ModuleUnit:
    """Read and parse one file; ``path`` is reported relative to ``root``."""
    try:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    except OSError as err:
        raise DevLintError(f"cannot read {path!r}: {err}") from err
    reported = path
    if root is not None:
        try:
            reported = os.path.relpath(path, root)
        except ValueError:  # pragma: no cover - windows cross-drive
            reported = path
    reported = reported.replace(os.sep, "/")
    return load_source(source, path=reported)


def discover_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            found.add(path)
            continue
        if not os.path.isdir(path):
            raise DevLintError(f"no such file or directory: {path!r}")
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = [
                d
                for d in dirnames
                if d not in _SKIP_DIRS and not d.startswith(".")
            ]
            for filename in filenames:
                if filename.endswith(".py"):
                    found.add(os.path.join(dirpath, filename))
    return sorted(found)
