"""DEV3xx: observability hygiene.

The obs layer only earns its keep if its data can be trusted.  Three
failure modes silently corrupt it:

* ``DEV301`` -- a ``span(...)`` that is opened but cannot be shown to
  close on all paths.  A leaked span nests every later span under a
  phantom parent and inflates its own duration forever.  Accepted
  shapes: used as a ``with`` context, returned to the caller, passed to
  ``enter_context``, or bound to a name/attribute for which matching
  ``__exit__`` / ``with`` evidence exists (same function for local
  names, anywhere in the module for ``self.X`` -- the enter/exit pair
  of a context-manager class lives in two methods).
* ``DEV302`` -- a metric name not in :mod:`repro.obs.catalog`.  Metric
  names are API: dashboards and the Prometheus exposition join on them,
  and a typo creates a silent second series instead of an error.
* ``DEV303`` -- writing ``.value`` on a metric fetched from a registry
  (``registry.counter(name).value = x``).  That bypasses the lock and
  the monotonicity contract; counters move through ``inc()`` only.

These rules skip ``repro.obs`` itself: the registry's internal state
mutation and the catalog's name table are the implementation.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devlint.astutil import (
    FunctionNode,
    attr_chain,
    call_chain,
    has_ancestor_call,
    parent_map,
)
from repro.devlint.project import ModuleUnit
from repro.devlint.report import DevFinding, Severity
from repro.devlint.rules import make_finding, rule
from repro.obs.catalog import is_known_metric

#: Registry receivers whose metric-name arguments are checked.
_METRIC_RECEIVERS = ("metrics", "registry",)

#: Registry methods taking a metric name as first positional argument.
_METRIC_METHODS = frozenset(
    {"counter", "gauge", "histogram", "inc", "observe", "set_gauge"}
)

#: Metric-accessor methods whose result must not be written through.
_METRIC_GETTERS = frozenset({"counter", "gauge", "histogram", "find"})


def _exempt_module(unit: ModuleUnit) -> bool:
    return unit.module.startswith("repro.obs")


def _enclosing_function(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> FunctionNode | None:
    current = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = parents.get(current)
    return None


def _with_targets(scope: ast.AST) -> set[tuple[str, ...]]:
    """Chains used as ``with`` context expressions under ``scope``."""
    out: set[tuple[str, ...]] = set()
    for node in ast.walk(scope):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                chain = attr_chain(item.context_expr)
                if chain is not None:
                    out.add(chain)
    return out


def _exit_targets(scope: ast.AST) -> set[tuple[str, ...]]:
    """Chains ``X`` for which ``X.__exit__`` / ``X.close`` is called."""
    out: set[tuple[str, ...]] = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Attribute) and node.attr in (
            "__exit__",
            "close",
        ):
            chain = attr_chain(node.value)
            if chain is not None:
                out.add(chain)
    return out


@rule(
    "DEV301",
    Severity.ERROR,
    "span opened without evidence it is closed on all paths",
    fix_hint="use 'with tracer.span(...):', or return the span to the "
    "caller; if storing it, make sure a matching __exit__ exists",
)
def _leaked_span(unit: ModuleUnit) -> Iterable[DevFinding]:
    parents = parent_map(unit.tree)
    for node in ast.walk(unit.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = call_chain(node)
        if chain is None or chain[-1] != "span" or len(chain) < 2:
            continue
        # Climb to the closest statement-ish ancestor, remembering
        # whether any intermediate expression returns/ships the span.
        current: ast.AST | None = node
        stmt: ast.AST | None = None
        while current is not None:
            parent = parents.get(current)
            if isinstance(parent, (ast.stmt, ast.withitem)) or parent is None:
                stmt = parent
                break
            current = parent
        if isinstance(stmt, ast.withitem):
            continue
        if isinstance(stmt, ast.Return):
            continue
        if has_ancestor_call(
            node, parents, frozenset({"enter_context", "push"})
        ):
            continue
        scope_fn = _enclosing_function(node, parents)
        message = "span created but never entered as a context manager"
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            chains = [attr_chain(t) for t in targets]
            if any(c is None for c in chains):
                continue  # unpacking / subscript: out of scope
            ok = False
            for target_chain in chains:
                assert target_chain is not None
                if len(target_chain) == 1:
                    # Local name: evidence must be in this function.
                    scope: ast.AST = scope_fn or unit.tree
                else:
                    # self.X / obj.X: pairing commonly spans methods.
                    scope = unit.tree
                if (
                    target_chain in _with_targets(scope)
                    or target_chain in _exit_targets(scope)
                ):
                    ok = True
            if ok:
                continue
            message = (
                "span assigned to "
                + ", ".join(".".join(c) for c in chains if c)
                + " but no matching 'with' or __exit__ found"
            )
        qual = scope_fn.name if scope_fn is not None else "<module>"
        yield make_finding("DEV301", unit, node, message, scope=qual)


@rule(
    "DEV302",
    Severity.ERROR,
    "metric name not present in the repro.obs.catalog name catalog",
    fix_hint="add the name to the right family in "
    "src/repro/obs/catalog.py (the catalog is the reviewed list of "
    "series the dashboards may join on)",
)
def _uncataloged_metric(unit: ModuleUnit) -> Iterable[DevFinding]:
    if _exempt_module(unit):
        return
    parents = parent_map(unit.tree)
    for node in ast.walk(unit.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = call_chain(node)
        if chain is None or chain[-1] not in _METRIC_METHODS:
            continue
        if len(chain) < 2:
            continue
        receiver = chain[-2]
        is_registry = receiver in _METRIC_RECEIVERS or receiver.endswith(
            "_registry"
        ) or receiver.endswith("_metrics")
        if receiver == "()" and len(chain) >= 3:
            is_registry = chain[-3] == "get_registry"
        if not is_registry:
            continue
        if not node.args:
            continue
        name_arg = node.args[0]
        if not (
            isinstance(name_arg, ast.Constant)
            and isinstance(name_arg.value, str)
        ):
            continue
        if is_known_metric(name_arg.value):
            continue
        scope_fn = _enclosing_function(node, parents)
        yield make_finding(
            "DEV302",
            unit,
            node,
            f"metric name {name_arg.value!r} is not in the "
            "repro.obs.catalog catalog",
            scope=scope_fn.name if scope_fn is not None else "<module>",
        )


@rule(
    "DEV303",
    Severity.ERROR,
    "metric value written directly instead of through the registry API",
    fix_hint="counters move through inc(), gauges through set(); "
    "writing .value bypasses the registry lock",
)
def _raw_metric_write(unit: ModuleUnit) -> Iterable[DevFinding]:
    if _exempt_module(unit):
        return
    parents = parent_map(unit.tree)
    for node in ast.walk(unit.tree):
        if isinstance(node, ast.Assign):
            targets: list[ast.expr] = list(node.targets)
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        else:
            continue
        for target in targets:
            if not (
                isinstance(target, ast.Attribute) and target.attr == "value"
            ):
                continue
            chain = attr_chain(target)
            if chain is None or "()" not in chain:
                continue
            # The receiver is a call result: find the called method.
            call_index = len(chain) - 2  # segment just before "value"
            if chain[call_index] != "()" or call_index == 0:
                continue
            method = chain[call_index - 1]
            if method not in _METRIC_GETTERS:
                continue
            scope_fn = _enclosing_function(node, parents)
            yield make_finding(
                "DEV303",
                unit,
                node,
                f"direct write to .value of a registry-fetched metric "
                f"('{method}(...).value = ...')",
                scope=scope_fn.name if scope_fn is not None else "<module>",
            )
