"""DEV1xx: blocking calls reachable from ``async def`` bodies.

The serve layer's correctness rests on one convention (stated in
``repro/serve/service.py``): all service state lives on the event loop,
and only pure job execution leaves it -- through an executor.  A
blocking call that slips onto the loop (a SQLite query, ``time.sleep``,
a subprocess wait) stalls *every* connection, not just its own request,
and nothing crashes: the service just gets slow under load.  These
rules make the convention checkable.

Detection is reachability-based, per module: the bodies of every
``async def`` are scanned directly, and so is every *sync* function the
async code calls (transitively, through plain ``name(...)`` and
``self.method(...)`` calls within the module) -- a blocking call doesn't
stop blocking because it was moved into a helper.  Functions that are
only *referenced* (passed to ``run_in_executor``, ``asyncio.to_thread``,
``Thread(target=...)``) are never reached by this walk, which is exactly
right: they run off-loop.  Arguments of an executor-hop call are not
descended into for the same reason.

Blocking-call classification is project-aware where it pays: any method
in :data:`STORE_METHODS` on a receiver whose final segment is ``store``
(or ``*_store``) is treated as a :class:`repro.serve.store.ResultStore`
SQLite operation.

Codes:

* ``DEV101`` -- ``time.sleep`` on the loop (use ``await asyncio.sleep``);
* ``DEV102`` -- SQLite / result-store access on the loop;
* ``DEV103`` -- blocking file, socket or subprocess I/O on the loop;
* ``DEV104`` -- blocking waits on pools, executors, threads or futures.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.devlint.astutil import (
    FunctionInfo,
    FunctionNode,
    attr_chain,
    call_chain,
    function_table,
    keyword_value,
)
from repro.devlint.project import ModuleUnit
from repro.devlint.report import DevFinding, Severity
from repro.devlint.rules import make_finding, rule

#: ResultStore operations that hit SQLite under the covers.
STORE_METHODS = frozenset({"get", "put", "flush", "close", "keys"})

#: Receiver name segments identifying thread-pool / executor objects.
_WAITER_RECEIVERS = ("executor", "pool", "thread", "proc", "worker")

#: subprocess functions that block until the child exits (or spawns).
_SUBPROCESS_BLOCKING = frozenset(
    {"run", "call", "check_call", "check_output", "Popen", "wait",
     "communicate"}
)


def _is_executor_hop(chain: tuple[str, ...]) -> bool:
    """Calls that ship their callable argument off the event loop."""
    if chain[-1] == "run_in_executor":
        return True
    if chain == ("asyncio", "to_thread") or chain[-1] == "to_thread":
        return True
    if chain[-1] in ("Thread", "submit"):
        return True
    return False


def _store_receiver(chain: tuple[str, ...]) -> bool:
    """True when the chain's receiver names a persistent result store."""
    if len(chain) < 2:
        return False
    receiver = chain[-2]
    return receiver == "store" or receiver.endswith("_store")


def _classify(call: ast.Call) -> tuple[str, str] | None:
    """Map one call to ``(code, message)`` when it blocks, else ``None``."""
    chain = call_chain(call)
    if chain is None:
        return None
    # DEV101: blocking sleep.
    if chain == ("time", "sleep") or chain[-2:] == ("time", "sleep"):
        return (
            "DEV101",
            "time.sleep() blocks the event loop",
        )
    # DEV102: SQLite / result-store access.
    if chain[0] == "sqlite3":
        return (
            "DEV102",
            f"sqlite3 call '{'.'.join(chain)}' blocks the event loop",
        )
    if chain[-1] in STORE_METHODS and _store_receiver(chain):
        return (
            "DEV102",
            f"result-store call '{'.'.join(chain)}()' is a blocking "
            "SQLite operation on the event loop",
        )
    if chain == ("len",) and call.args:
        arg0 = call.args[0]
        inner = (
            attr_chain(arg0)
            if isinstance(arg0, (ast.Name, ast.Attribute))
            else None
        )
        if inner is not None and (
            inner[-1] == "store" or inner[-1].endswith("_store")
        ):
            return (
                "DEV102",
                "len(store) issues a blocking COUNT(*) query on the "
                "event loop",
            )
    # DEV103: file / socket / subprocess I/O.
    if chain == ("open",):
        return ("DEV103", "open() performs blocking file I/O on the event loop")
    if chain[0] == "subprocess" and chain[-1] in _SUBPROCESS_BLOCKING:
        return (
            "DEV103",
            f"'{'.'.join(chain)}' blocks on a child process",
        )
    if chain in (("os", "system"), ("os", "popen")):
        return ("DEV103", f"'{'.'.join(chain)}' blocks on a shell")
    if chain == ("socket", "create_connection"):
        return (
            "DEV103",
            "socket.create_connection() blocks on connect; use "
            "asyncio.open_connection",
        )
    # DEV104: blocking waits on pools / threads / futures.
    method = chain[-1]
    receiver = chain[-2].lower() if len(chain) >= 2 else ""
    if method in ("join", "wait", "shutdown", "result", "terminate"):
        if any(part in receiver for part in _WAITER_RECEIVERS) or (
            method == "result" and ("future" in receiver or "fut" == receiver)
        ):
            if method == "shutdown":
                wait_kw = keyword_value(call, "wait")
                if isinstance(wait_kw, ast.Constant) and wait_kw.value is False:
                    return None
            return (
                "DEV104",
                f"'{'.'.join(chain)}()' waits synchronously on the "
                "event loop",
            )
    return None


def _scan_calls(fn: FunctionNode) -> Iterator[ast.Call]:
    """Calls executed in ``fn``'s own context.

    Skips nested ``def`` bodies and the *arguments* of executor-hop
    calls (those run off-loop); awaited calls are yielded like any other
    (awaiting a coroutine is fine -- the classifier only matches known
    blocking callees, none of which are coroutines).
    """
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.Call):
            yield node
            chain = call_chain(node)
            if chain is not None and _is_executor_hop(chain):
                # The callable and its arguments execute off-loop.
                continue
        stack.extend(ast.iter_child_nodes(node))


def _call_edges(
    fn: FunctionNode, table: dict[str, list[FunctionInfo]]
) -> Iterator[FunctionInfo]:
    """Module-local functions *called* (not merely referenced) by ``fn``."""
    for call in _scan_calls(fn):
        chain = call_chain(call)
        if chain is None:
            continue
        target: str | None = None
        if len(chain) == 1:
            target = chain[0]
        elif len(chain) == 2 and chain[0] in ("self", "cls"):
            target = chain[1]
        if target is None:
            continue
        yield from table.get(target, ())


def _on_loop_functions(
    unit: ModuleUnit,
) -> list[tuple[FunctionInfo, str | None]]:
    """Functions whose bodies execute on the event loop.

    Returns ``(info, via)`` pairs: ``via`` is ``None`` for async bodies
    themselves and the qualname of the calling function for sync
    functions reached transitively.
    """
    functions = function_table(unit.tree)
    by_name: dict[str, list[FunctionInfo]] = {}
    for info in functions:
        by_name.setdefault(info.name, []).append(info)

    seeds = [info for info in functions if info.is_async]
    on_loop: dict[str, tuple[FunctionInfo, str | None]] = {}
    frontier: list[tuple[FunctionInfo, str | None]] = [
        (info, None) for info in seeds
    ]
    while frontier:
        info, via = frontier.pop()
        if info.qualname in on_loop:
            continue
        on_loop[info.qualname] = (info, via)
        for callee in _call_edges(info.node, by_name):
            if callee.is_async or callee.qualname in on_loop:
                continue
            frontier.append((callee, info.qualname))
    return list(on_loop.values())


def _async_findings(
    unit: ModuleUnit, codes: frozenset[str]
) -> Iterable[DevFinding]:
    for info, via in _on_loop_functions(unit):
        for call in _scan_calls(info.node):
            classified = _classify(call)
            if classified is None or classified[0] not in codes:
                continue
            code, message = classified
            if via is not None:
                message += (
                    f" [sync function reachable from async code via "
                    f"{via}]"
                )
            yield make_finding(
                code, unit, call, message, scope=info.qualname
            )


@rule(
    "DEV101",
    Severity.ERROR,
    "time.sleep in code reachable from an async def body",
    fix_hint="use 'await asyncio.sleep(...)' (or move the work to an "
    "executor with loop.run_in_executor / asyncio.to_thread)",
)
def _blocking_sleep(unit: ModuleUnit) -> Iterable[DevFinding]:
    return _async_findings(unit, frozenset({"DEV101"}))


@rule(
    "DEV102",
    Severity.ERROR,
    "SQLite / result-store access in code reachable from an async def body",
    fix_hint="hop off the loop: 'await loop.run_in_executor(executor, "
    "store.get, key)' or 'await asyncio.to_thread(...)'",
)
def _blocking_store(unit: ModuleUnit) -> Iterable[DevFinding]:
    return _async_findings(unit, frozenset({"DEV102"}))


@rule(
    "DEV103",
    Severity.ERROR,
    "blocking file/socket/subprocess I/O in code reachable from an "
    "async def body",
    fix_hint="use the asyncio equivalent (open_connection, "
    "create_subprocess_exec) or run it in an executor",
)
def _blocking_io(unit: ModuleUnit) -> Iterable[DevFinding]:
    return _async_findings(unit, frozenset({"DEV103"}))


@rule(
    "DEV104",
    Severity.ERROR,
    "synchronous pool/executor/thread/future wait in code reachable "
    "from an async def body",
    fix_hint="await the work instead (run_in_executor returns a future) "
    "or perform the wait via 'await asyncio.to_thread(...)'",
)
def _blocking_wait(unit: ModuleUnit) -> Iterable[DevFinding]:
    return _async_findings(unit, frozenset({"DEV104"}))
