"""DEV4xx: sparsity sanitizer wiring.

The sparse LP substrate (``repro.lp.sparse``) keeps every dense
materialization observable: ``to_dense(site=...)`` routes through
``DENSE_STATS`` so a 10k-latch design that suddenly densifies a
10k x 20k constraint matrix shows up in metrics instead of in an OOM.
That only works if call sites cooperate:

* ``DEV401`` -- ``.to_dense()`` called without a ``site=`` keyword: the
  materialization is recorded against the generic receiver site and the
  stats can no longer attribute blow-ups to a caller;
* ``DEV402`` -- dense escape hatches (``.to_arrays()`` / ``.toarray()``
  calls, or reading the dense ``.a`` payload of a standard form)
  outside ``repro.lp``: dense math belongs behind the LP boundary, and
  call sites above it must either stay sparse or carry a waiver
  explaining why densifying is safe at that scale.

The repo currently has no DEV402 hits outside ``repro.lp`` -- this
family is the forward guard that keeps it that way.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devlint.astutil import attr_chain, call_chain, keyword_value
from repro.devlint.project import ModuleUnit
from repro.devlint.report import DevFinding, Severity
from repro.devlint.rules import make_finding, rule

#: Receiver names treated as LP standard forms for the ``.a`` check
#: (kept narrow: ``.a`` is a common attribute name elsewhere, e.g. the
#: timing-graph edge bound in graphdiag).
_FORM_RECEIVERS = frozenset({"sf", "form", "standard_form", "std_form"})

_DENSE_ESCAPES = frozenset({"to_arrays", "toarray", "todense"})


def _inside_lp(unit: ModuleUnit) -> bool:
    return unit.module.startswith("repro.lp")


@rule(
    "DEV401",
    Severity.ERROR,
    "to_dense() call without a site= attribution keyword",
    fix_hint="pass site='<caller>' so DENSE_STATS can attribute the "
    "materialization (see repro.lp.sparse.note_dense_materialization)",
)
def _unattributed_densify(unit: ModuleUnit) -> Iterable[DevFinding]:
    for node in ast.walk(unit.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = call_chain(node)
        if chain is None or chain[-1] != "to_dense" or len(chain) < 2:
            continue
        if keyword_value(node, "site") is not None:
            continue
        yield make_finding(
            "DEV401",
            unit,
            node,
            "to_dense() without site=: the dense materialization is "
            "recorded without caller attribution",
        )


@rule(
    "DEV402",
    Severity.ERROR,
    "dense materialization escape hatch used outside repro.lp",
    fix_hint="stay sparse above the LP boundary, route through "
    "to_dense(site=...), or carry a '# devlint: waiver[DEV402] <why>' "
    "explaining why densifying is safe at this scale",
)
def _dense_escape(unit: ModuleUnit) -> Iterable[DevFinding]:
    if _inside_lp(unit):
        return
    for node in ast.walk(unit.tree):
        if isinstance(node, ast.Call):
            chain = call_chain(node)
            if (
                chain is not None
                and chain[-1] in _DENSE_ESCAPES
                and len(chain) >= 2
            ):
                yield make_finding(
                    "DEV402",
                    unit,
                    node,
                    f"'.{chain[-1]}()' densifies outside the LP "
                    "boundary",
                )
        elif isinstance(node, ast.Attribute) and node.attr == "a":
            chain = attr_chain(node.value)
            if chain is not None and chain[-1] in _FORM_RECEIVERS:
                yield make_finding(
                    "DEV402",
                    unit,
                    node,
                    "reading the dense '.a' payload of a standard form "
                    "outside the LP boundary",
                )
