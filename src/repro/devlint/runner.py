"""Drive the devlint rules over files, sources, or the whole project.

Three entry points, layered:

* :func:`lint_source` -- one in-memory snippet, no baseline.  What the
  fixture tests call.
* :func:`lint_paths` -- discovered files, no baseline.  What
  ``--no-baseline`` CI reporting calls.
* :func:`run_devlint` -- files plus the committed baseline; produces the
  report whose ``ok`` is the CI gate.

Waivers are filtered here (not in the rules) so every rule stays a pure
``ModuleUnit -> findings`` function and the waived count is tracked in
one place.
"""

from __future__ import annotations

import os

from repro.devlint.baseline import apply_baseline, load_baseline
from repro.devlint.project import (
    DevLintError,
    ModuleUnit,
    discover_files,
    load_file,
    load_source,
)
from repro.devlint.report import DevFinding, DevReport
from repro.devlint.rules import DevRule, registered_rules

#: Baseline filename looked for at the repo root by default.
DEFAULT_BASELINE = "devlint-baseline.json"


def _select_rules(codes: list[str] | None) -> tuple[DevRule, ...]:
    rules = registered_rules()
    if not codes:
        return rules
    wanted = set(codes)
    selected = tuple(r for r in rules if r.code in wanted)
    unknown = wanted - {r.code for r in selected}
    if unknown:
        raise DevLintError(
            f"unknown rule code(s): {', '.join(sorted(unknown))}"
        )
    return selected


def lint_unit(
    unit: ModuleUnit, codes: list[str] | None = None
) -> tuple[list[DevFinding], int]:
    """Run selected rules over one unit -> ``(findings, waived_count)``."""
    findings: list[DevFinding] = []
    waived = 0
    for rule_def in _select_rules(codes):
        for finding in rule_def.check(unit):
            # Re-locate the covering node span by line: waivers cover
            # the finding's reported line.
            if _is_waived(unit, finding):
                waived += 1
            else:
                findings.append(finding)
    return findings, waived


def _is_waived(unit: ModuleUnit, finding: DevFinding) -> bool:
    codes = unit.waivers.get(finding.line)
    if codes is not None and ("*" in codes or finding.code in codes):
        return True
    return False


def lint_source(
    source: str,
    path: str = "<memory>",
    module: str | None = None,
    codes: list[str] | None = None,
) -> list[DevFinding]:
    """Lint one source string; waived findings are dropped."""
    unit = load_source(source, path=path, module=module)
    findings, _ = lint_unit(unit, codes)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def lint_paths(
    paths: list[str],
    root: str | None = None,
    codes: list[str] | None = None,
) -> DevReport:
    """Lint files/directories without applying any baseline."""
    report = DevReport()
    for filename in discover_files(paths):
        unit = load_file(filename, root=root)
        findings, waived = lint_unit(unit, codes)
        report.findings.extend(findings)
        report.waived += waived
        report.files += 1
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return report


def run_devlint(
    paths: list[str],
    root: str | None = None,
    baseline_path: str | None = None,
    codes: list[str] | None = None,
) -> DevReport:
    """Lint and apply the baseline; ``report.ok`` is the gate.

    ``baseline_path=None`` means "use :data:`DEFAULT_BASELINE` under
    ``root`` if it exists"; pass an explicit path to require one.
    """
    report = lint_paths(paths, root=root, codes=codes)
    resolved = baseline_path
    if resolved is None:
        candidate = os.path.join(root or ".", DEFAULT_BASELINE)
        if os.path.isfile(candidate):
            resolved = candidate
    if resolved is not None:
        entries = load_baseline(resolved)
        actionable, baselined, stale = apply_baseline(
            report.findings, entries
        )
        report.findings = actionable
        report.baselined = baselined
        report.stale_baseline = stale
        report.baseline_path = resolved
    return report
