"""The paper's example 1 (Fig. 5): a two-stage loop on a two-phase clock.

Four latches L1..L4, all with setup and propagation delays of 10 ns, are
connected in a ring through four combinational blocks:

    L1 --La(20)--> L2 --Lb(20)--> L3 --Lc(60)--> L4 --Ld(D41)--> L1

with L1, L3 on phase phi1 and L2, L4 on phase phi2.  The delay of block Ld
(``Delta_41``) is the swept parameter of the paper's Figs. 6 and 7.
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.graph import TimingGraph

#: Latch setup and propagation delay used throughout example 1 (ns).
LATCH_DELAY = 10.0

#: Fixed combinational block delays (ns): La = Delta_12, Lb = Delta_23,
#: Lc = Delta_34.
DELAY_LA = 20.0
DELAY_LB = 20.0
DELAY_LC = 60.0


def example1(delta_41: float = 80.0) -> TimingGraph:
    """Build example 1 with the given ``Delta_41`` (block Ld delay, ns)."""
    builder = CircuitBuilder(phases=["phi1", "phi2"])
    builder.latch("L1", phase="phi1", setup=LATCH_DELAY, delay=LATCH_DELAY)
    builder.latch("L2", phase="phi2", setup=LATCH_DELAY, delay=LATCH_DELAY)
    builder.latch("L3", phase="phi1", setup=LATCH_DELAY, delay=LATCH_DELAY)
    builder.latch("L4", phase="phi2", setup=LATCH_DELAY, delay=LATCH_DELAY)
    builder.path("L1", "L2", DELAY_LA, label="La")
    builder.path("L2", "L3", DELAY_LB, label="Lb")
    builder.path("L3", "L4", DELAY_LC, label="Lc")
    builder.path("L4", "L1", delta_41, label="Ld")
    return builder.build()


def example1_optimal_period(delta_41: float) -> float:
    """Closed-form optimal cycle time of example 1 (derived in Section V).

    The feedback loop spans two clock cycles, so the optimum is the larger
    of the *average* delay around the loop and the *difference* between the
    delays of the two cycles making up the loop (the paper's observation),
    floored by the heaviest single-cycle stage (block Lc plus two latch
    traversals: 60 + 10 + 10 = 80 ns):

        Tc*(D41) = max(80, (140 + D41) / 2, 20 + D41)

    This reproduces every value the paper quotes: 110 ns at D41 = 80,
    120 ns at 100, 140 ns at 120, a flat 80 ns for D41 <= 20, slope 1/2 on
    [20, 100] and slope 1 beyond.
    """
    return max(80.0, (140.0 + delta_41) / 2.0, 20.0 + delta_41)


def example1_nrip_period(delta_41: float) -> float:
    """Closed-form cycle time of the NRIP baseline on example 1.

    With null retardation imposed on the initial phase's latches (L2 and
    L4; see DESIGN.md section 5 for the phase-labeling discussion), the
    achievable cycle time is

        Tc_NRIP(D41) = max(100, 40 + D41)

    which touches the optimum exactly at D41 = 60 ns and exceeds it
    everywhere else -- the behaviour the paper reports for NRIP in Fig. 7.
    """
    return max(100.0, 40.0 + delta_41)
