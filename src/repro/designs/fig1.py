"""The paper's Fig. 1 circuit: 11 latches on a four-phase clock.

The Appendix lists this circuit's complete constraint set; the structure is
fully determined by the latch setup constraints (which give each latch's
phase) and the propagation constraints (which give the 18 combinational
arcs).  Phase assignment:

* phi1: latches 1, 2, 8
* phi2: latches 6, 7, 11
* phi3: latches 4, 5, 10
* phi4: latches 3, 9

and the resulting K matrix (eq. 2) is the one printed in the Appendix::

    K = | 0 0 1 1 |
        | 1 0 1 1 |
        | 1 1 0 0 |
        | 0 1 1 0 |

Latch 1 has no fanin (it is fed from outside the circuit).  The paper
leaves the individual delay values symbolic; :func:`fig1_circuit` accepts
a delay table and defaults to uniform values so the structure can be
exercised numerically.
"""

from __future__ import annotations

from typing import Mapping

from repro.circuit.builder import CircuitBuilder
from repro.circuit.graph import TimingGraph

#: Phase controlling each latch (paper Appendix, setup-constraint listing).
LATCH_PHASES: dict[int, str] = {
    1: "phi1",
    2: "phi1",
    8: "phi1",
    6: "phi2",
    7: "phi2",
    11: "phi2",
    4: "phi3",
    5: "phi3",
    10: "phi3",
    3: "phi4",
    9: "phi4",
}

#: The 19 combinational arcs (paper Appendix, propagation constraints).
#: The published K matrix has K_43 = 1 and the Appendix lists the operator
#: S_43 among its nine phase shifts, so one phi4-to-phi3 arc must exist;
#: the propagation listing's term for it is garbled in the available text,
#: and we realize it as latch 3 -> latch 10 (both choices of phi4 source
#: latch yield the same K matrix and constraint structure).
ARCS: tuple[tuple[int, int], ...] = (
    (4, 2), (5, 2),
    (8, 3),
    (1, 4), (2, 4),
    (6, 5), (7, 5),
    (4, 6), (5, 6),
    (9, 7), (10, 7),
    (6, 8), (7, 8),
    (6, 9), (7, 9),
    (3, 10), (11, 10),
    (9, 11), (10, 11),
)

#: The Appendix's K matrix, for cross-checking TimingGraph.k_matrix().
K_MATRIX: tuple[tuple[int, ...], ...] = (
    (0, 0, 1, 1),
    (1, 0, 1, 1),
    (1, 1, 0, 0),
    (0, 1, 1, 0),
)


def fig1_circuit(
    delays: Mapping[tuple[int, int], float] | None = None,
    default_delay: float = 20.0,
    setup: float = 10.0,
    latch_delay: float = 10.0,
) -> TimingGraph:
    """Build the Fig. 1 circuit.

    ``delays`` overrides individual arc delays ``Delta_{ji}`` (keyed by the
    paper's latch numbers, e.g. ``{(4, 2): 35.0}``); unlisted arcs use
    ``default_delay``.
    """
    delays = dict(delays or {})
    builder = CircuitBuilder(phases=["phi1", "phi2", "phi3", "phi4"])
    for idx in sorted(LATCH_PHASES):
        builder.latch(
            f"L{idx}", phase=LATCH_PHASES[idx], setup=setup, delay=latch_delay
        )
    for src, dst in ARCS:
        builder.path(
            f"L{src}",
            f"L{dst}",
            delays.pop((src, dst), default_delay),
        )
    if delays:
        raise ValueError(f"delays given for arcs not in Fig. 1: {sorted(delays)}")
    return builder.build()


def fig1_k_matrix() -> list[list[int]]:
    """The Appendix's K matrix as a mutable nested list."""
    return [list(row) for row in K_MATRIX]
