"""The GaAs MIPS datapath case study (Section V, Figs. 10-11, Table I).

The paper applies MLP to the timing model of a 250 MHz GaAs microcomputer
under development at the University of Michigan: a MIPS R6000-compatible
CPU with register file, ALU, shifter, integer multiply/divide unit and
load aligner, plus instruction and data caches on the same multichip
module.  The published model has:

* a three-phase clock with a 4 ns target cycle time,
* 18 synchronizing elements, 15 of which are level-sensitive latches
  (each representing a 32-bit bus) and 3 of which are flip-flops,
* 91 timing constraints,
* an optimal cycle time of **4.4 ns** (10% above target), and
* phi3 -- the register-file precharge clock -- **totally overlapped** by
  phi1, legal because there are no direct latch-to-latch paths between
  those phases (``K_13 = K_31 = 0``).

The authors' delay values came from SPICE extractions of a proprietary
design; this reconstruction (see DESIGN.md, section 5) keeps the published
structure -- 15 latches + 3 flip-flops on three phases, with every
feedback loop closed through a flip-flop (which both satisfies the
Section III loop requirement and frees phi3 to overlap phi1) -- and
chooses plausible block delays such that every checkable published number
is reproduced exactly, including the 91 constraints (under the paper's
counting, which includes the nonnegativity constraints C4 and L3) and the
4.4 ns optimum.  The binding cycle at the optimum is the one-cycle
result-forward path: result flip-flop -> register-file write-through ->
operand read -> ALU -> result flip-flop.

Synchronizers (all buses 32 bits wide, lumped one latch per bus):

=========  =====  =====  ==========================================
name       kind   phase  role
=========  =====  =====  ==========================================
IA         latch  phi1   instruction cache address
TLB        latch  phi1   instruction TLB / tag stage
DA         latch  phi1   data cache address
SD         latch  phi1   store data
PCI        latch  phi2   incremented / branch program counter
IR         latch  phi2   instruction register (icache output)
RFA        latch  phi2   register file read address / decode
RD1, RD2   latch  phi2   register file read data (ports A, B)
SH         latch  phi2   shifter result
IMD1,IMD2  latch  phi2   integer multiply/divide pipeline
LD         latch  phi2   load data (dcache output + aligner)
BYP        latch  phi2   bypass operand
PRE        latch  phi3   register file precharge pulse
PC         FF     phi1   program counter (rising edge)
RES        FF     phi1   result register (falling edge)
PSW        FF     phi1   status word / flags (falling edge)
=========  =====  =====  ==========================================
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.graph import TimingGraph

#: Target cycle time of the 250 MHz design (ns).
GAAS_TARGET_PERIOD = 4.0

#: Optimal cycle time found by MLP, 10% above target (ns) -- the paper's
#: headline case-study number.
GAAS_OPTIMAL_PERIOD = 4.4

#: Table I: transistor counts for the major blocks of the GaAs MIPS
#: datapath, exactly as published.
TRANSISTOR_COUNTS: dict[str, int] = {
    "Register File (RF)": 16085,
    "Arithmetic/Logic Unit (ALU)": 3419,
    "Shifter": 1848,
    "Integer Multiply/Divide (IMD)": 6874,
    "Load Aligner": 1922,
}

#: Published total of Table I.
TRANSISTOR_TOTAL = 30148

#: Latch timing parameters (ns): setup Delta_DC and propagation Delta_DQ.
LATCH_SETUP = 0.2
LATCH_DELAY = 0.3

#: Combinational block delays (ns), keyed by a short path name.
BLOCK_DELAYS: dict[str, float] = {
    "incr": 1.3,       # PC incrementer
    "pcmux": 0.9,      # next-PC selection back into the PC flip-flop
    "pc_ia": 0.6,      # PC to icache address drivers
    "tlb": 0.8,        # instruction TLB lookup stage
    "tagcmp": 2.2,     # tag compare merged into instruction fetch
    "icache": 3.4,     # instruction cache access (MCM crossing)
    "decode": 1.1,     # instruction decode to RF read address
    "rfread": 1.6,     # register file read
    "prectl": 0.7,     # precharge control derivation
    "alu": 3.1,        # ALU evaluate
    "shift": 2.1,      # shifter
    "sh_res": 0.7,     # shifter result mux into the result register
    "imd_in": 1.1,     # operand staging into multiply/divide
    "imd": 2.7,        # multiply/divide pipeline stage
    "imd_res": 6.0,    # iterative multiply/divide array into the result FF
    "imd_early": 1.4,  # early-out multiply/divide result
    "res_da": 0.6,     # result to dcache address
    "res_sd": 0.4,     # result to store data
    "dcache": 3.9,     # data cache access (MCM crossing)
    "store": 1.4,      # store path into the load/store unit
    "ld_res": 1.0,     # aligned load data into the result register
    "rfwr": 0.5,       # register file write-through from the result FF
    "res_byp": 0.3,    # result into the bypass latch
    "byp": 0.7,        # bypass mux into the operand latches
    "flags": 2.6,      # condition flag computation
    "psw_ia": 0.9,     # branch decision into instruction fetch
    "branch": 1.7,     # branch target computation
    "imm": 1.0,        # immediate extraction into the bypass latch
    "jr": 0.4,         # jump-register target into the PC incrementer
}

#: The 36 combinational arcs: (source, destination, delay key).
ARCS: tuple[tuple[str, str, str], ...] = (
    ("PC", "PCI", "incr"),
    ("PCI", "PC", "pcmux"),
    ("PC", "IA", "pc_ia"),
    ("IA", "TLB", "tlb"),
    ("TLB", "IR", "tagcmp"),
    ("IA", "IR", "icache"),
    ("IR", "RFA", "decode"),
    ("RFA", "RD1", "rfread"),
    ("RFA", "RD2", "rfread"),
    ("RFA", "PRE", "prectl"),
    ("RD1", "RES", "alu"),
    ("RD2", "RES", "alu"),
    ("RD1", "SH", "shift"),
    ("RD2", "SH", "shift"),
    ("SH", "RES", "sh_res"),
    ("RD1", "IMD1", "imd_in"),
    ("RD2", "IMD1", "imd_in"),
    ("IMD1", "IMD2", "imd"),
    ("IMD2", "RES", "imd_res"),
    ("IMD1", "RES", "imd_early"),
    ("RES", "DA", "res_da"),
    ("RES", "SD", "res_sd"),
    ("DA", "LD", "dcache"),
    ("SD", "LD", "store"),
    ("LD", "RES", "ld_res"),
    ("RES", "RD1", "rfwr"),
    ("RES", "RD2", "rfwr"),
    ("RES", "BYP", "res_byp"),
    ("BYP", "RD1", "byp"),
    ("BYP", "RD2", "byp"),
    ("RD1", "PSW", "flags"),
    ("RD2", "PSW", "flags"),
    ("PSW", "IA", "psw_ia"),
    ("IR", "PCI", "branch"),
    ("IR", "BYP", "imm"),
    ("RES", "PCI", "jr"),
)


def gaas_datapath() -> TimingGraph:
    """Build the GaAs MIPS datapath timing model (18 synchronizers)."""
    b = CircuitBuilder(phases=["phi1", "phi2", "phi3"])
    for name in ("IA", "TLB", "DA", "SD"):
        b.latch(name, phase="phi1", setup=LATCH_SETUP, delay=LATCH_DELAY)
    for name in (
        "PCI", "IR", "RFA", "RD1", "RD2", "SH",
        "IMD1", "IMD2", "LD", "BYP",
    ):
        b.latch(name, phase="phi2", setup=LATCH_SETUP, delay=LATCH_DELAY)
    b.latch("PRE", phase="phi3", setup=LATCH_SETUP, delay=LATCH_DELAY)
    b.flipflop("PC", phase="phi1", edge="rise", setup=LATCH_SETUP, delay=LATCH_DELAY)
    b.flipflop("RES", phase="phi1", edge="fall", setup=LATCH_SETUP, delay=LATCH_DELAY)
    b.flipflop("PSW", phase="phi1", edge="fall", setup=LATCH_SETUP, delay=LATCH_DELAY)
    for src, dst, key in ARCS:
        b.path(src, dst, BLOCK_DELAYS[key], label=key)
    return b.build()
