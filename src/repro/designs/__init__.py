"""Reference designs: the paper's example circuits.

* :mod:`repro.designs.example1` -- Fig. 5: a two-stage, two-phase loop;
* :mod:`repro.designs.example2` -- Fig. 8: the "more complicated" circuit
  (reconstructed; see DESIGN.md section 5);
* :mod:`repro.designs.fig1` -- the 11-latch, four-phase circuit of Fig. 1,
  whose full constraint listing appears in the paper's Appendix;
* :mod:`repro.designs.gaas` -- the GaAs MIPS datapath case study of
  Fig. 10/11 and Table I (reconstructed timing model);
* :mod:`repro.designs.generators` -- parameterized large-design families
  (deep lane-mixed pipelines, SRAM-style banked arrays) scaling to
  10^4+ latches for the sparse-LP benchmarks.
"""

from repro.designs.example1 import (
    example1,
    example1_nrip_period,
    example1_optimal_period,
)
from repro.designs.example2 import example2
from repro.designs.fig1 import fig1_circuit, fig1_k_matrix
from repro.designs.gaas import (
    GAAS_OPTIMAL_PERIOD,
    GAAS_TARGET_PERIOD,
    TRANSISTOR_COUNTS,
    gaas_datapath,
)
from repro.designs.generators import banked_array, pipeline

__all__ = [
    "banked_array",
    "pipeline",
    "example1",
    "example1_optimal_period",
    "example1_nrip_period",
    "example2",
    "fig1_circuit",
    "fig1_k_matrix",
    "gaas_datapath",
    "GAAS_TARGET_PERIOD",
    "GAAS_OPTIMAL_PERIOD",
    "TRANSISTOR_COUNTS",
]
