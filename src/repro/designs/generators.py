"""Parameterized large-design generators: pipelines and banked arrays.

Where :mod:`repro.circuit.generate` makes *random* circuits for property
tests, these two families are *structured* -- deterministic, realistic
topologies modeled on the designs the roadmap names (deep FPU-style
pipelines, SRAM-style banked memories), scalable from paper-sized to
10^4+ latches.  They are the workloads of the sparse-LP scaling grid in
``benchmarks/bench_scaling.py`` and of the shipped
``examples/pipeline64x2.lcd`` / ``examples/banked8x512.lcd`` designs.

* :func:`pipeline` -- a ``depth x width`` feed-forward datapath with
  lane mixing: stage ``s`` holds ``width`` latches on phase ``s mod k``,
  and every latch feeds its own lane plus the neighbouring lanes of the
  next stage.  Deterministic per-arc delay variation creates long
  time-borrowing chains (some stage crossings are slow, the following
  ones fast), the behaviour Section IV's level-sensitive analysis
  exists to exploit.  Being loop-free, its minimum Tc is set by the
  heaviest single stage crossing -- and the design stays cheap to lint
  (no simple cycles at all).
* :func:`banked_array` -- an SRAM-style closed system: one address
  latch fans out to ``banks`` parallel chains of ``depth`` latches
  (alternating phases, word-line -> bit-line -> sense stages in
  miniature), which merge into an output latch that feeds back to the
  address latch.  Exactly ``banks`` simple feedback loops, each
  crossing every phase, so the loop-compliance lint stays linear.

Delays are pure integer arithmetic in the latch coordinates -- no RNG --
so a given parameterization is byte-identical everywhere (the ``.lcd``
exports under ``examples/`` are regenerable artifacts).
"""

from __future__ import annotations

from repro.circuit.builder import CircuitBuilder
from repro.circuit.graph import TimingGraph
from repro.errors import CircuitError

#: Latch setup and propagation delay shared by both families (ns).
LATCH_DELAY = 10.0

#: Base combinational delay of a stage crossing (ns).
BASE_DELAY = 20.0

#: Peak-to-peak deterministic delay variation (ns); spread across a
#: 5-step pattern keyed on the latch coordinates so borrowing chains of
#: several consecutive slow stages occur at every size.
DELAY_SPREAD = 30.0


def _phases(k: int) -> list[str]:
    return [f"phi{i + 1}" for i in range(k)]


def _stage_delay(s: int, w: int) -> float:
    """Deterministic delay for the crossing out of latch (stage s, lane w)."""
    return BASE_DELAY + DELAY_SPREAD * ((s * 7 + w * 3) % 5) / 4.0


def pipeline(
    depth: int,
    width: int = 1,
    k: int = 2,
) -> TimingGraph:
    """A ``depth x width`` feed-forward pipeline with lane mixing.

    ``depth * width`` latches: stage ``s`` (0-based) holds latches
    ``P{s}_{w}`` on phase ``s mod k``.  Every latch drives lane ``w`` of
    the next stage plus its existing neighbours ``w - 1`` and ``w + 1``
    (shuffle/bypass networks in real datapaths), so interior latches
    have fan-in and fan-out 3.  Arc count is just under ``3 * depth *
    width`` -- linear, as the sparse-LP scaling grid requires.
    """
    if depth < 2:
        raise CircuitError(f"pipeline needs depth >= 2, got {depth}")
    if width < 1:
        raise CircuitError(f"pipeline needs width >= 1, got {width}")
    if k < 2:
        raise CircuitError("pipeline needs k >= 2 phases")
    phases = _phases(k)
    builder = CircuitBuilder(phases)
    for s in range(depth):
        for w in range(width):
            builder.latch(
                f"P{s}_{w}",
                phase=phases[s % k],
                setup=LATCH_DELAY,
                delay=LATCH_DELAY,
            )
    for s in range(depth - 1):
        for w in range(width):
            for dst in (w - 1, w, w + 1):
                if 0 <= dst < width:
                    builder.path(
                        f"P{s}_{w}",
                        f"P{s + 1}_{dst}",
                        delay=_stage_delay(s, w),
                    )
    return builder.build()


def banked_array(
    banks: int,
    depth: int,
    k: int = 2,
) -> TimingGraph:
    """An SRAM-style banked array: fan-out, parallel chains, merge, loop.

    One address latch ``A`` (phase 1) drives ``banks`` chains
    ``B{b}_{d}`` of ``depth`` latches each; a latch at distance ``d``
    from ``A`` sits on phase ``d mod k``.  The chain tails merge into an
    output latch ``O``, which closes the access loop back to ``A``.
    Total ``banks * depth + 2`` latches and exactly ``banks`` simple
    feedback loops, each of length ``depth + 2``.

    Loop compliance requires the wrap to land back on ``A``'s phase:
    ``(depth + 2) % k == 0`` (for the default two-phase clock, any even
    ``depth``).
    """
    if banks < 1:
        raise CircuitError(f"banked_array needs banks >= 1, got {banks}")
    if depth < 1:
        raise CircuitError(f"banked_array needs depth >= 1, got {depth}")
    if k < 2:
        raise CircuitError("banked_array needs k >= 2 phases")
    if (depth + 2) % k != 0:
        raise CircuitError(
            f"banked_array loop length {depth + 2} must be a multiple of "
            f"k={k} so the feedback arc lands on the address latch's phase"
        )
    phases = _phases(k)
    builder = CircuitBuilder(phases)
    builder.latch("A", phase=phases[0], setup=LATCH_DELAY, delay=LATCH_DELAY)
    builder.latch(
        "O",
        phase=phases[(depth + 1) % k],
        setup=LATCH_DELAY,
        delay=LATCH_DELAY,
    )
    for b in range(banks):
        for d in range(depth):
            builder.latch(
                f"B{b}_{d}",
                phase=phases[(d + 1) % k],
                setup=LATCH_DELAY,
                delay=LATCH_DELAY,
            )
        builder.path("A", f"B{b}_0", delay=_stage_delay(0, b))
        for d in range(depth - 1):
            builder.path(
                f"B{b}_{d}",
                f"B{b}_{d + 1}",
                delay=_stage_delay(d + 1, b),
            )
        builder.path(f"B{b}_{depth - 1}", "O", delay=_stage_delay(depth, b))
    builder.path("O", "A", delay=BASE_DELAY)
    return builder.build()
