"""AST node types for the ``.lcd`` circuit-description language."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.builder import CircuitBuilder
from repro.circuit.graph import TimingGraph
from repro.errors import ParseError


@dataclass(frozen=True)
class PhaseDecl:
    """``phase <name> [start <t>] [width <t>];`` inside a clock block."""

    name: str
    start: float | None = None
    width: float | None = None


@dataclass(frozen=True)
class ClockDecl:
    """``clock { [period <t>;] phase ...; }``"""

    phases: tuple[PhaseDecl, ...]
    period: float | None = None


@dataclass(frozen=True)
class SyncDecl:
    """``latch``/``flipflop`` declaration."""

    kind: str  # "latch" or "flipflop"
    name: str
    phase: str
    setup: float = 0.0
    delay: float = 0.0
    hold: float = 0.0
    edge: str = "rise"  # flip-flops only


@dataclass(frozen=True)
class PathDecl:
    """``path <src> -> <dst> delay <d> [min <d>] [label "<text>"];``"""

    src: str
    dst: str
    delay: float
    min_delay: float = 0.0
    label: str = ""


@dataclass
class CircuitDecl:
    """A parsed circuit description."""

    clock: ClockDecl
    syncs: list[SyncDecl] = field(default_factory=list)
    paths: list[PathDecl] = field(default_factory=list)

    def to_graph(self) -> TimingGraph:
        """Build the :class:`TimingGraph`; raises on semantic errors."""
        builder = CircuitBuilder([p.name for p in self.clock.phases])
        for s in self.syncs:
            if s.kind == "latch":
                builder.latch(
                    s.name, phase=s.phase, setup=s.setup, delay=s.delay, hold=s.hold
                )
            elif s.kind == "flipflop":
                builder.flipflop(
                    s.name,
                    phase=s.phase,
                    setup=s.setup,
                    delay=s.delay,
                    hold=s.hold,
                    edge=s.edge,
                )
            else:  # pragma: no cover - parser only emits the two kinds
                raise ParseError(f"unknown synchronizer kind {s.kind!r}")
        for p in self.paths:
            builder.path(p.src, p.dst, p.delay, min_delay=p.min_delay, label=p.label)
        return builder.build()

    def to_schedule(self):
        """Build a :class:`~repro.clocking.ClockSchedule` when the clock is
        fully specified (period plus every phase's start and width);
        returns None for structural-only descriptions."""
        from repro.clocking.phase import ClockPhase
        from repro.clocking.schedule import ClockSchedule

        if self.clock.period is None:
            return None
        phases = []
        for p in self.clock.phases:
            if p.start is None or p.width is None:
                return None
            phases.append(ClockPhase(p.name, p.start, p.width))
        return ClockSchedule(self.clock.period, phases)
