"""Serialize circuits (and optional schedules) back to ``.lcd`` text.

``parse_circuit(write_circuit(graph)).to_graph()`` reproduces the original
graph exactly -- the round-trip property tests rely on it.
"""

from __future__ import annotations

from repro.circuit.elements import FlipFlop
from repro.circuit.graph import TimingGraph
from repro.clocking.schedule import ClockSchedule


def _fmt(x: float) -> str:
    # repr() emits the shortest decimal string that round-trips the float
    # exactly, which the write/parse round-trip property relies on.
    return repr(float(x))


def write_circuit(
    graph: TimingGraph, schedule: ClockSchedule | None = None
) -> str:
    """Render a :class:`TimingGraph` (plus optional clock values) as text."""
    lines: list[str] = ["clock {"]
    if schedule is not None:
        lines.append(f"  period {_fmt(schedule.period)};")
        for p in schedule.phases:
            lines.append(
                f"  phase {p.name} start {_fmt(p.start)} width {_fmt(p.width)};"
            )
    else:
        for name in graph.phase_names:
            lines.append(f"  phase {name};")
    lines.append("}")

    for sync in graph.synchronizers:
        parts = []
        if isinstance(sync, FlipFlop):
            parts.append(f"flipflop {sync.name} phase {sync.phase}")
            parts.append(f"edge {sync.edge.value}")
        else:
            parts.append(f"latch {sync.name} phase {sync.phase}")
        if sync.setup:
            parts.append(f"setup {_fmt(sync.setup)}")
        if sync.delay:
            parts.append(f"delay {_fmt(sync.delay)}")
        if sync.hold:
            parts.append(f"hold {_fmt(sync.hold)}")
        lines.append(" ".join(parts) + ";")

    for arc in graph.arcs:
        parts = [f"path {arc.src} -> {arc.dst} delay {_fmt(arc.delay)}"]
        if arc.min_delay:
            parts.append(f"min {_fmt(arc.min_delay)}")
        if arc.label:
            parts.append(f'label "{arc.label}"')
        lines.append(" ".join(parts) + ";")
    return "\n".join(lines) + "\n"
