"""A small circuit-description language and its parser.

The paper's initial MLP implementation "incorporates a simple parser"
(Section V); this package provides the equivalent: a compact text format
(``.lcd`` -- latch-controlled circuit description) for clocks,
synchronizers and combinational delay arcs, with a lexer, a
recursive-descent parser producing :class:`repro.circuit.TimingGraph`
objects, and a writer that round-trips graphs back to text.

Example::

    # Example 1 of the paper (Fig. 5)
    clock { phase phi1; phase phi2; }
    latch L1 phase phi1 setup 10 delay 10;
    latch L2 phase phi2 setup 10 delay 10;
    path L1 -> L2 delay 20 label "La";
"""

from repro.lang.ast import CircuitDecl, ClockDecl, PathDecl, PhaseDecl, SyncDecl
from repro.lang.lexer import Token, TokenKind, tokenize
from repro.lang.parser import parse_circuit, parse_file
from repro.lang.writer import write_circuit

__all__ = [
    "Token",
    "TokenKind",
    "tokenize",
    "CircuitDecl",
    "ClockDecl",
    "PhaseDecl",
    "SyncDecl",
    "PathDecl",
    "parse_circuit",
    "parse_file",
    "write_circuit",
]
