"""Recursive-descent parser for the ``.lcd`` circuit-description language.

Grammar (informal)::

    circuit   := clock ( sync | path )*
    clock     := "clock" "{" ( "period" NUMBER ";" | phase )* "}"
    phase     := "phase" IDENT [ "start" NUMBER ] [ "width" NUMBER ] ";"
    sync      := ("latch" | "flipflop") IDENT "phase" IDENT attrs ";"
    attrs     := ( "setup" NUMBER | "delay" NUMBER | "hold" NUMBER
                 | "edge" ("rise"|"fall") )*
    path      := "path" IDENT "->" IDENT "delay" NUMBER
                 [ "min" NUMBER ] [ "label" STRING ] ";"
"""

from __future__ import annotations

import os

from repro.errors import ParseError
from repro.lang.ast import CircuitDecl, ClockDecl, PathDecl, PhaseDecl, SyncDecl
from repro.lang.lexer import Token, TokenKind, tokenize


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ---------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def expect(self, kind: TokenKind, what: str) -> Token:
        tok = self.next()
        if tok.kind is not kind:
            raise ParseError(
                f"expected {what}, got {tok.text!r}", tok.line, tok.column
            )
        return tok

    def expect_keyword(self, word: str) -> Token:
        tok = self.next()
        if tok.kind is not TokenKind.IDENT or tok.text != word:
            raise ParseError(
                f"expected {word!r}, got {tok.text!r}", tok.line, tok.column
            )
        return tok

    def at_keyword(self, word: str) -> bool:
        tok = self.peek()
        return tok.kind is TokenKind.IDENT and tok.text == word

    # -- grammar ---------------------------------------------------------
    def circuit(self) -> CircuitDecl:
        clock = self.clock()
        decl = CircuitDecl(clock=clock)
        while self.peek().kind is not TokenKind.EOF:
            if self.at_keyword("latch") or self.at_keyword("flipflop"):
                decl.syncs.append(self.sync())
            elif self.at_keyword("path"):
                decl.paths.append(self.path())
            else:
                tok = self.peek()
                raise ParseError(
                    f"expected 'latch', 'flipflop' or 'path', got {tok.text!r}",
                    tok.line,
                    tok.column,
                )
        return decl

    def clock(self) -> ClockDecl:
        self.expect_keyword("clock")
        self.expect(TokenKind.LBRACE, "'{'")
        phases: list[PhaseDecl] = []
        period: float | None = None
        while self.peek().kind is not TokenKind.RBRACE:
            if self.at_keyword("period"):
                self.next()
                period = self.expect(TokenKind.NUMBER, "a period value").number
                self.expect(TokenKind.SEMI, "';'")
            elif self.at_keyword("phase"):
                phases.append(self.phase())
            else:
                tok = self.peek()
                raise ParseError(
                    f"expected 'period' or 'phase', got {tok.text!r}",
                    tok.line,
                    tok.column,
                )
        self.expect(TokenKind.RBRACE, "'}'")
        if not phases:
            tok = self.peek()
            raise ParseError("clock block declares no phases", tok.line, tok.column)
        return ClockDecl(phases=tuple(phases), period=period)

    def phase(self) -> PhaseDecl:
        self.expect_keyword("phase")
        name = self.expect(TokenKind.IDENT, "a phase name").text
        start: float | None = None
        width: float | None = None
        while self.peek().kind is not TokenKind.SEMI:
            if self.at_keyword("start"):
                self.next()
                start = self.expect(TokenKind.NUMBER, "a start time").number
            elif self.at_keyword("width"):
                self.next()
                width = self.expect(TokenKind.NUMBER, "a width").number
            else:
                tok = self.peek()
                raise ParseError(
                    f"expected 'start', 'width' or ';', got {tok.text!r}",
                    tok.line,
                    tok.column,
                )
        self.expect(TokenKind.SEMI, "';'")
        return PhaseDecl(name=name, start=start, width=width)

    def sync(self) -> SyncDecl:
        kind = self.next().text  # "latch" or "flipflop"
        name = self.expect(TokenKind.IDENT, "a synchronizer name").text
        self.expect_keyword("phase")
        phase = self.expect(TokenKind.IDENT, "a phase name").text
        attrs = {"setup": 0.0, "delay": 0.0, "hold": 0.0}
        edge = "rise"
        while self.peek().kind is not TokenKind.SEMI:
            tok = self.peek()
            if tok.kind is TokenKind.IDENT and tok.text in attrs:
                self.next()
                attrs[tok.text] = self.expect(
                    TokenKind.NUMBER, f"a {tok.text} value"
                ).number
            elif self.at_keyword("edge"):
                if kind != "flipflop":
                    raise ParseError(
                        "'edge' only applies to flip-flops", tok.line, tok.column
                    )
                self.next()
                edge_tok = self.expect(TokenKind.IDENT, "'rise' or 'fall'")
                if edge_tok.text not in ("rise", "fall"):
                    raise ParseError(
                        f"edge must be 'rise' or 'fall', got {edge_tok.text!r}",
                        edge_tok.line,
                        edge_tok.column,
                    )
                edge = edge_tok.text
            else:
                raise ParseError(
                    f"unexpected attribute {tok.text!r}", tok.line, tok.column
                )
        self.expect(TokenKind.SEMI, "';'")
        return SyncDecl(kind=kind, name=name, phase=phase, edge=edge, **attrs)

    def path(self) -> PathDecl:
        self.expect_keyword("path")
        src = self.expect(TokenKind.IDENT, "a source synchronizer").text
        self.expect(TokenKind.ARROW, "'->'")
        dst = self.expect(TokenKind.IDENT, "a destination synchronizer").text
        self.expect_keyword("delay")
        delay = self.expect(TokenKind.NUMBER, "a delay value").number
        min_delay = 0.0
        label = ""
        while self.peek().kind is not TokenKind.SEMI:
            if self.at_keyword("min"):
                self.next()
                min_delay = self.expect(TokenKind.NUMBER, "a min delay").number
            elif self.at_keyword("label"):
                self.next()
                label = self.expect(TokenKind.STRING, "a label string").text
            else:
                tok = self.peek()
                raise ParseError(
                    f"unexpected attribute {tok.text!r}", tok.line, tok.column
                )
        self.expect(TokenKind.SEMI, "';'")
        return PathDecl(src=src, dst=dst, delay=delay, min_delay=min_delay, label=label)


def parse_circuit(text: str) -> CircuitDecl:
    """Parse source text into a :class:`CircuitDecl`."""
    return _Parser(tokenize(text)).circuit()


def parse_file(path: str | os.PathLike) -> CircuitDecl:
    """Parse a ``.lcd`` file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_circuit(handle.read())
