"""Tokenizer for the ``.lcd`` circuit-description language."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ParseError


class TokenKind(str, enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    LBRACE = "{"
    RBRACE = "}"
    SEMI = ";"
    ARROW = "->"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    @property
    def number(self) -> float:
        if self.kind is not TokenKind.NUMBER:
            raise ParseError(
                f"expected a number, got {self.text!r}", self.line, self.column
            )
        return float(self.text)


_SINGLE = {
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    ";": TokenKind.SEMI,
}


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_./[]"


def tokenize(text: str) -> list[Token]:
    """Turn source text into a token list ending with an EOF token.

    Comments run from ``#`` (or ``//``) to end of line.  Numbers accept an
    optional sign, decimal point and exponent.  Strings are double-quoted
    with no escape processing (labels only).
    """
    tokens: list[Token] = []
    line, col = 1, 1
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "#" or text.startswith("//", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch in _SINGLE:
            tokens.append(Token(_SINGLE[ch], ch, line, col))
            i += 1
            col += 1
            continue
        if text.startswith("->", i):
            tokens.append(Token(TokenKind.ARROW, "->", line, col))
            i += 2
            col += 2
            continue
        if ch == '"':
            j = text.find('"', i + 1)
            if j < 0:
                raise ParseError("unterminated string literal", line, col)
            value = text[i + 1 : j]
            if "\n" in value:
                raise ParseError("newline inside string literal", line, col)
            tokens.append(Token(TokenKind.STRING, value, line, col))
            col += j + 1 - i
            i = j + 1
            continue
        if ch.isdigit() or (
            ch in "+-." and i + 1 < n and (text[i + 1].isdigit() or text[i + 1] == ".")
        ):
            j = i
            if text[j] in "+-":
                j += 1
            while j < n and (text[j].isdigit() or text[j] == "."):
                j += 1
            if j < n and text[j] in "eE":
                k = j + 1
                if k < n and text[k] in "+-":
                    k += 1
                if k < n and text[k].isdigit():
                    j = k
                    while j < n and text[j].isdigit():
                        j += 1
            word = text[i:j]
            try:
                float(word)
            except ValueError:
                raise ParseError(f"malformed number {word!r}", line, col) from None
            tokens.append(Token(TokenKind.NUMBER, word, line, col))
            col += j - i
            i = j
            continue
        if _is_ident_start(ch):
            j = i
            while j < n and _is_ident_char(text[j]):
                j += 1
            tokens.append(Token(TokenKind.IDENT, text[i:j], line, col))
            col += j - i
            i = j
            continue
        raise ParseError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens
