"""Command-line interface: optimize, analyze, sweep, tune, compare.

Operates on ``.lcd`` circuit description files (see :mod:`repro.lang`)::

    python -m repro minimize circuit.lcd
    python -m repro minimize circuit.lcd --nrip --svg schedule.svg
    python -m repro analyze  circuit_with_clock.lcd --hold
    python -m repro sweep    circuit.lcd L4 L1 --lo 0 --hi 140
    python -m repro tune     circuit.lcd --period 120
    python -m repro baselines circuit.lcd
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.baselines.binary_search import binary_search_minimize
from repro.baselines.borrowing import borrowing_minimize
from repro.baselines.edge_triggered import edge_triggered_minimize
from repro.baselines.nrip import nrip_minimize
from repro.core.analysis import analyze
from repro.core.constraints import ConstraintOptions
from repro.core.critical import critical_segments
from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.core.parametric import exact_sweep_delay, sweep_delay
from repro.core.reporting import format_comparison, format_optimal_result
from repro.core.shortpath import check_hold
from repro.core.tuning import maximize_slack
from repro.errors import ReproError
from repro.export.dot import to_dot
from repro.export.lpformat import to_cplex_lp
from repro.lang.parser import parse_file
from repro.lang.writer import write_circuit
from repro.render.ascii_art import strip_diagram
from repro.render.svg import schedule_svg


def _load(path: str):
    decl = parse_file(path)
    return decl.to_graph(), decl.to_schedule()


def _constraint_options(args: argparse.Namespace) -> ConstraintOptions:
    return ConstraintOptions(
        min_width=getattr(args, "min_width", 0.0),
        min_separation=getattr(args, "separation", 0.0),
        setup_margin=getattr(args, "margin", 0.0),
        max_period=getattr(args, "max_period", None),
    )


def _add_common_constraints(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--min-width", type=float, default=0.0, dest="min_width",
                        help="minimum active width for every phase")
    parser.add_argument("--separation", type=float, default=0.0,
                        help="extra spacing on the C3 nonoverlap constraints")
    parser.add_argument("--margin", type=float, default=0.0,
                        help="global setup margin (skew/jitter allowance)")


def cmd_minimize(args: argparse.Namespace) -> int:
    graph, _ = _load(args.file)
    options = _constraint_options(args)
    mlp = MLPOptions(backend=args.backend)
    if args.nrip:
        result = nrip_minimize(graph, initial_phase=args.initial_phase,
                               options=options, mlp=mlp)
        print(f"NRIP (initial phase {result.extra['initial_phase']}):")
    else:
        result = minimize_cycle_time(graph, options, mlp)
    print(format_optimal_result(result))
    if args.critical:
        print()
        print(critical_segments(result.smo, result.lp_result))
    if args.strips:
        print()
        print(strip_diagram(graph, analyze(graph, result.schedule, options)))
    if args.svg:
        report = analyze(graph, result.schedule, options)
        with open(args.svg, "w", encoding="utf-8") as handle:
            handle.write(schedule_svg(result.schedule, graph, report))
        print(f"\nwrote {args.svg}")
    if args.write:
        with open(args.write, "w", encoding="utf-8") as handle:
            handle.write(write_circuit(graph, result.schedule))
        print(f"wrote {args.write}")
    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(to_dot(graph))
        print(f"wrote {args.dot}")
    if args.lp:
        with open(args.lp, "w", encoding="utf-8") as handle:
            handle.write(to_cplex_lp(result.smo.program))
        print(f"wrote {args.lp}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    graph, schedule = _load(args.file)
    if schedule is None:
        print(
            "error: the file's clock block has no concrete schedule "
            "(need 'period' and per-phase 'start'/'width')",
            file=sys.stderr,
        )
        return 2
    options = _constraint_options(args)
    report = analyze(graph, schedule, options)
    print(report)
    if args.hold:
        hold = check_hold(graph, schedule)
        print(
            f"\nhold: {'clean' if hold.feasible else 'VIOLATED'} "
            f"(worst slack {hold.worst_slack:g})"
        )
        for timing in hold.violations:
            print(f"  hold violation at {timing.name}: slack {timing.slack:g}")
        if not hold.feasible:
            return 1
    return 0 if report.feasible else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    graph, _ = _load(args.file)
    options = _constraint_options(args)
    if args.exact:
        result = exact_sweep_delay(
            graph, args.src, args.dst, args.lo, args.hi, options=options
        )
    else:
        steps = max(2, args.points)
        grid = [
            args.lo + (args.hi - args.lo) * i / (steps - 1) for i in range(steps)
        ]
        result = sweep_delay(graph, args.src, args.dst, grid, options=options)
    print(f"segments of Tc(delay {args.src}->{args.dst}):")
    for seg in result.segments:
        print(
            f"  [{seg.start:g}, {seg.end:g}]  slope {seg.slope:g}  "
            f"Tc = {seg.intercept:g} + {seg.slope:g} * delay"
        )
    if result.breakpoints:
        print(f"breakpoints: {[round(b, 6) for b in result.breakpoints]}")
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    graph, _ = _load(args.file)
    options = _constraint_options(args)
    tuned = maximize_slack(graph, args.period, options=options)
    print(
        f"best uniform setup slack at Tc = {args.period:g}: {tuned.slack:g}"
    )
    print(tuned.schedule)
    return 0 if tuned.meets_timing else 1


def cmd_baselines(args: argparse.Namespace) -> int:
    graph, _ = _load(args.file)
    options = _constraint_options(args)
    fast = MLPOptions(verify=False)
    opt = minimize_cycle_time(graph, options, fast).period
    rows = [
        {"algorithm": "MLP (optimal)", "Tc": opt, "ratio": 1.0},
    ]
    for label, period in [
        ("NRIP", nrip_minimize(graph, options=options, mlp=fast).period),
        ("borrowing (1 pass)", borrowing_minimize(graph, 1, options).period),
        ("borrowing (converged)", borrowing_minimize(graph, 40, options).period),
        ("binary search", binary_search_minimize(graph, options=options)),
        ("edge-triggered", edge_triggered_minimize(graph, options, fast).period),
    ]:
        rows.append({"algorithm": label, "Tc": period, "ratio": period / opt})
    print(format_comparison(rows, ["algorithm", "Tc", "ratio"]))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SMO latch timing: optimal clock scheduling by LP "
        "(Sakallah, Mudge, Olukotun, DAC 1990)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("minimize", help="find the optimal cycle time (MLP)")
    p.add_argument("file", help=".lcd circuit description")
    p.add_argument("--backend", default=None, help="LP backend (simplex|scipy)")
    p.add_argument("--max-period", type=float, default=None, dest="max_period")
    p.add_argument("--nrip", action="store_true", help="run the NRIP baseline")
    p.add_argument("--initial-phase", default=None, dest="initial_phase",
                   help="NRIP initial phase (default: last)")
    p.add_argument("--critical", action="store_true",
                   help="print critical segments")
    p.add_argument("--strips", action="store_true",
                   help="print Fig. 6-style strip diagrams")
    p.add_argument("--svg", default=None, help="write an SVG schedule")
    p.add_argument("--write", default=None,
                   help="write the circuit + solved schedule back to .lcd")
    p.add_argument("--dot", default=None,
                   help="write a Graphviz view of the circuit")
    p.add_argument("--lp", default=None,
                   help="write the constraint system in CPLEX LP format")
    _add_common_constraints(p)
    p.set_defaults(func=cmd_minimize)

    p = sub.add_parser("analyze", help="verify a circuit at its embedded clock")
    p.add_argument("file")
    p.add_argument("--hold", action="store_true", help="also run the hold check")
    _add_common_constraints(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("sweep", help="piecewise-linear Tc(delay) curve")
    p.add_argument("file")
    p.add_argument("src")
    p.add_argument("dst")
    p.add_argument("--lo", type=float, required=True)
    p.add_argument("--hi", type=float, required=True)
    p.add_argument("--points", type=int, default=29, help="grid size")
    p.add_argument("--exact", action="store_true",
                   help="adaptive exact breakpoints instead of a grid")
    _add_common_constraints(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("tune", help="maximize setup slack at a fixed period")
    p.add_argument("file")
    p.add_argument("--period", type=float, required=True)
    _add_common_constraints(p)
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser("baselines", help="compare MLP with every baseline")
    p.add_argument("file")
    _add_common_constraints(p)
    p.set_defaults(func=cmd_baselines)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    except OSError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
