"""Command-line interface: optimize, analyze, sweep, tune, compare.

Operates on ``.lcd`` circuit description files (see :mod:`repro.lang`)::

    python -m repro minimize circuit.lcd
    python -m repro minimize circuit.lcd --nrip --svg schedule.svg
    python -m repro analyze  circuit_with_clock.lcd --hold
    python -m repro sweep    circuit.lcd L4 L1 --lo 0 --hi 140
    python -m repro tune     circuit.lcd --period 120
    python -m repro baselines circuit.lcd --jobs 4
    python -m repro batch    designs.txt --jobs 4 --cache results.json
    python -m repro batch    designs.txt --cache results.sqlite
    python -m repro serve    --port 8350 --store results.sqlite
    python -m repro loadgen  --url http://127.0.0.1:8350 --requests 64
    python -m repro minimize circuit.lcd --trace run.json
    python -m repro trace summarize run.json
    python -m repro top      --url http://127.0.0.1:8350
    python -m repro bench    record BENCH_local.json --label HEAD
    python -m repro bench    compare BENCH_local.json --warn-only

Every subcommand accepts the global observability flags (see
``docs/OBSERVABILITY.md``): ``--trace FILE`` records a hierarchical span
trace (Chrome-trace/Perfetto JSON), ``--log-json FILE`` appends a
structured JSONL event log, ``-v`` adds diagnostics and ``-q`` silences
normal output (exit codes still carry the result).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from typing import Sequence

from repro import obs
from repro.baselines.ladder import run_ladder
from repro.baselines.nrip import nrip_minimize
from repro.core.analysis import analyze
from repro.core.constraints import ConstraintOptions
from repro.core.critical import critical_segments
from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.core.parametric import exact_sweep_delay, sweep_delay
from repro.core.reporting import format_comparison, format_optimal_result
from repro.core.shortpath import check_hold
from repro.core.tuning import maximize_slack
from repro.errors import ReproError
from repro.export.dot import to_dot
from repro.export.lpformat import to_cplex_lp
from repro.lang.parser import parse_file
from repro.lang.writer import write_circuit
from repro.lint import diagnose, run_lint, run_rules
from repro.render.ascii_art import strip_diagram
from repro.render.svg import schedule_svg

# Output-routing state, set once per main() invocation from -q/-v.
_QUIET = False
_VERBOSE = False


def _emit(text: str = "") -> None:
    """Primary CLI output; suppressed by ``-q`` (exit codes still apply)."""
    if not _QUIET:
        print(text)


def _info(text: str) -> None:
    """Diagnostic output, shown only with ``-v`` (goes to stderr)."""
    if _VERBOSE and not _QUIET:
        print(text, file=sys.stderr)


def _error(text: str) -> None:
    """Errors always print, quiet or not."""
    print(text, file=sys.stderr)


def _load(path: str):
    decl = parse_file(path)
    return decl.to_graph(), decl.to_schedule()


def _constraint_options(args: argparse.Namespace) -> ConstraintOptions:
    return ConstraintOptions(
        min_width=getattr(args, "min_width", 0.0),
        min_separation=getattr(args, "separation", 0.0),
        setup_margin=getattr(args, "margin", 0.0),
        max_period=getattr(args, "max_period", None),
    )


def _backend_help(default: str | None = None) -> str:
    """The --backend help line, built from the live backend registry."""
    from repro.lp.backends import available_backends

    names = "|".join(available_backends())
    if default is None:
        return f"LP backend ({names})"
    return f"LP backend ({names}; default {default})"


def _add_common_constraints(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--min-width", type=float, default=0.0, dest="min_width",
                        help="minimum active width for every phase")
    parser.add_argument("--separation", type=float, default=0.0,
                        help="extra spacing on the C3 nonoverlap constraints")
    parser.add_argument("--margin", type=float, default=0.0,
                        help="global setup margin (skew/jitter allowance)")


def _global_flags_parser() -> argparse.ArgumentParser:
    """The shared observability/verbosity flags, as an argparse parent."""
    common = argparse.ArgumentParser(add_help=False)
    group = common.add_argument_group("observability")
    group.add_argument("--trace", default=None, metavar="FILE",
                       help="record a hierarchical span trace to FILE "
                       "(Chrome-trace JSON, loadable in Perfetto)")
    group.add_argument("--log-json", default=None, dest="log_json",
                       metavar="FILE",
                       help="append a structured JSONL event log to FILE")
    group.add_argument("-v", "--verbose", action="store_true",
                       help="print diagnostics to stderr")
    group.add_argument("-q", "--quiet", action="store_true",
                       help="suppress normal output (exit codes only)")
    return common


def _preflight_lint(graph, options, args: argparse.Namespace) -> int:
    """Structural lint before solving; returns 0 to proceed, 2 to abort.

    Runs the rule registry over the circuit (no schedule); errors abort,
    warnings surface with ``-v``.  When the options pin or cap the clock,
    the constraint-graph diagnosis also runs, so a provably infeasible
    request fails here with a named negative-cycle certificate instead of
    an opaque LP status.
    """
    if getattr(args, "no_lint", False):
        return 0
    report = run_rules(graph, None, options)
    for finding in report.warnings:
        _info(f"lint: {finding}")
    if not report.ok:
        for finding in report.errors:
            _error(f"error: lint: {finding.message}")
        obs.emit("lint.failed", level="error", file=args.file,
                 errors=len(report.errors))
        return 2
    if (
        options.fixed_period is not None
        or options.max_period is not None
        or options.fixed_starts
        or options.fixed_widths
    ):
        diagnostics = diagnose(graph, options)
        if diagnostics.certificate is not None:
            _error(f"error: lint: {diagnostics.certificate.message}")
            _error(diagnostics.certificate.format())
            obs.emit("lint.infeasible", level="error", file=args.file,
                     kind=diagnostics.certificate.kind)
            return 2
    return 0


def cmd_minimize(args: argparse.Namespace) -> int:
    graph, _ = _load(args.file)
    options = _constraint_options(args)
    code = _preflight_lint(graph, options, args)
    if code:
        return code
    mlp = MLPOptions(backend=args.backend, kernel=args.kernel,
                     sanitize=args.sanitize)
    if args.nrip:
        result = nrip_minimize(graph, initial_phase=args.initial_phase,
                               options=options, mlp=mlp)
        _emit(f"NRIP (initial phase {result.extra['initial_phase']}):")
    else:
        result = minimize_cycle_time(graph, options, mlp)
    _emit(format_optimal_result(result))
    obs.emit("minimize.done", file=args.file, period=result.period,
             slide_sweeps=result.slide_sweeps)
    sanitize_report = result.extra.get("sanitize")
    if sanitize_report is not None:
        _emit(sanitize_report.format())
    if args.critical:
        _emit()
        _emit(str(critical_segments(result.smo, result.lp_result)))
    if args.strips:
        _emit()
        _emit(strip_diagram(graph, analyze(graph, result.schedule, options)))
    if args.svg:
        report = analyze(graph, result.schedule, options)
        with open(args.svg, "w", encoding="utf-8") as handle:
            handle.write(schedule_svg(result.schedule, graph, report))
        _emit(f"\nwrote {args.svg}")
    if args.write:
        with open(args.write, "w", encoding="utf-8") as handle:
            handle.write(write_circuit(graph, result.schedule))
        _emit(f"wrote {args.write}")
    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(to_dot(graph))
        _emit(f"wrote {args.dot}")
    if args.lp:
        with open(args.lp, "w", encoding="utf-8") as handle:
            handle.write(to_cplex_lp(result.smo.program))
        _emit(f"wrote {args.lp}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    graph, schedule = _load(args.file)
    if schedule is None:
        _error(
            "error: the file's clock block has no concrete schedule "
            "(need 'period' and per-phase 'start'/'width')"
        )
        return 2
    options = _constraint_options(args)
    code = _preflight_lint(graph, options, args)
    if code:
        return code
    report = analyze(graph, schedule, options)
    _emit(str(report))
    obs.emit("analyze.done", file=args.file, feasible=report.feasible)
    if args.hold:
        hold = check_hold(graph, schedule)
        _emit(
            f"\nhold: {'clean' if hold.feasible else 'VIOLATED'} "
            f"(worst slack {hold.worst_slack:g})"
        )
        for timing in hold.violations:
            _emit(f"  hold violation at {timing.name}: slack {timing.slack:g}")
        if not hold.feasible:
            return 1
    return 0 if report.feasible else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    graph, _ = _load(args.file)
    options = _constraint_options(args)
    # One LP solve per distinct point; the revised backend warm-starts each
    # solve from the previous point's basis unless --cold-start is given.
    mlp = MLPOptions(
        backend=args.backend or "revised",
        verify=False,
        compact=False,
        warm_start=not args.cold_start,
        kernel=args.kernel,
    )
    if args.exact:
        # Bisection is sequential, but the engine cache still dedupes
        # the repeated endpoint evaluations inside refine_breakpoint.
        engine = None
        if args.jobs > 1:
            from repro.engine import Engine

            engine = Engine(jobs=1)
        result = exact_sweep_delay(
            graph, args.src, args.dst, args.lo, args.hi, options=options,
            mlp=mlp, engine=engine,
        )
    else:
        steps = max(2, args.points)
        grid = [
            args.lo + (args.hi - args.lo) * i / (steps - 1) for i in range(steps)
        ]
        result = sweep_delay(
            graph, args.src, args.dst, grid, options=options, mlp=mlp,
            jobs=args.jobs,
        )
    _emit(f"segments of Tc(delay {args.src}->{args.dst}):")
    for seg in result.segments:
        _emit(
            f"  [{seg.start:g}, {seg.end:g}]  slope {seg.slope:g}  "
            f"Tc = {seg.intercept:g} + {seg.slope:g} * delay"
        )
    if result.breakpoints:
        _emit(f"breakpoints: {[round(b, 6) for b in result.breakpoints]}")
    obs.emit("sweep.done", file=args.file, segments=len(result.segments))
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    graph, _ = _load(args.file)
    options = _constraint_options(args)
    tuned = maximize_slack(graph, args.period, options=options)
    _emit(
        f"best uniform setup slack at Tc = {args.period:g}: {tuned.slack:g}"
    )
    _emit(str(tuned.schedule))
    return 0 if tuned.meets_timing else 1


def cmd_baselines(args: argparse.Namespace) -> int:
    graph, _ = _load(args.file)
    options = _constraint_options(args)
    ladder = run_ladder(
        graph, options=options, mlp=MLPOptions(verify=False), jobs=args.jobs
    )
    rows = [
        {"algorithm": row.label, "Tc": row.period, "ratio": row.ratio}
        for row in ladder
    ]
    _emit(format_comparison(rows, ["algorithm", "Tc", "ratio"]))
    return 0


def _batch_files(entries: Sequence[str]) -> list[str]:
    """Expand ``batch`` arguments: ``.lcd`` files directly, manifests by line."""
    files: list[str] = []
    for entry in entries:
        if entry.endswith(".lcd"):
            files.append(entry)
            continue
        with open(entry, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line and not line.startswith("#"):
                    files.append(line)
    return files


def cmd_batch(args: argparse.Namespace) -> int:
    from repro.engine import Engine, MinimizeJob
    from repro.serve.store import open_cache

    files = _batch_files(args.files)
    if not files:
        _error("error: no .lcd files to run")
        return 2
    options = _constraint_options(args)
    mlp = MLPOptions(backend=args.backend, verify=False, kernel=args.kernel)
    batch = []
    load_errors: dict[str, str] = {}
    for path in files:
        # A malformed design must not abort the rest of the batch.
        try:
            graph, _ = _load(path)
        except (ReproError, OSError) as exc:
            load_errors[path] = str(exc)
            obs.emit("batch.load_error", level="warning", file=path,
                     error=str(exc))
            continue
        batch.append(
            MinimizeJob(graph=graph, options=options, mlp=mlp, label=path)
        )
    # A *.sqlite cache is the persistent content-addressed store shared
    # with `repro serve`; any other path keeps the JSON file cache.
    cache = open_cache(args.cache) if args.cache else None
    engine = Engine(
        jobs=args.jobs,
        cache=cache,
        timeout=args.timeout,
        retries=args.retries,
    )
    try:
        results = engine.run_jobs(batch)
        engine.save_cache()
        report_text = engine.report.format()
    finally:
        store = getattr(engine.cache, "store", None)
        if store is not None:
            store.close()

    by_label = {result.label: result for result in results}
    width = max(len(path) for path in files)
    failures = 0
    for path in files:
        result = by_label.get(path)
        if result is None:
            failures += 1
            _emit(f"{path:<{width}}  FAILED: {load_errors[path]}")
        elif result.ok:
            note = " (cached)" if result.cached else ""
            _emit(f"{path:<{width}}  Tc = {result.value:g}{note}")
        else:
            failures += 1
            _emit(f"{path:<{width}}  FAILED: {result.error}")
    _emit()
    _emit(report_text)
    obs.emit("batch.done", files=len(files), failures=failures)
    return 1 if failures else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the analysis service (docs/SERVE.md) until SIGINT/SIGTERM."""
    import asyncio

    from repro.serve import AnalysisService, HttpServer, ResultStore

    store = ResultStore(args.store) if args.store else None
    service = AnalysisService(
        store=store,
        workers=args.workers,
        lint=not args.no_lint,
        trace_jobs=not args.no_job_trace,
    )
    server = HttpServer(
        service, host=args.host, port=args.port,
        drain_timeout=args.drain_timeout,
    )

    def _ready(srv: "HttpServer") -> None:
        where = store.path if store else "in-memory only"
        _emit(f"serving on {srv.url} (results: {where})")
        obs.emit("serve.start", url=srv.url, store=str(where))

    try:
        asyncio.run(server.run(on_ready=_ready))
    except KeyboardInterrupt:
        pass  # drained inside run(); exit cleanly
    _emit("drained; bye")
    obs.emit("serve.stop")
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive a running service with a weighted request mix and report."""
    from repro.serve import load_mix, run_load

    mix = load_mix(args.mix) if args.mix else None
    report = run_load(
        args.url,
        mix=mix,
        requests=args.requests,
        concurrency=args.concurrency,
        seed=args.seed,
        timeout=args.timeout,
    )
    if args.format == "json":
        _emit(json.dumps(report.to_dict(), indent=2))
    else:
        _emit(report.format())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        _info(f"wrote {args.out}")
    obs.emit("loadgen.done", requests=report.requests, errors=report.errors)
    return 1 if report.errors else 0


def cmd_devlint(args: argparse.Namespace) -> int:
    """Project static analysis over the repo's own source.

    Where ``repro lint`` checks circuits, ``repro devlint`` checks the
    codebase: blocking calls on the serve event loop, nondeterminism in
    job-signature functions, observability hygiene, and sparsity wiring
    (see docs/DEVLINT.md).  Exit code 0 when clean modulo the committed
    baseline, 1 on actionable findings, 2 on unusable input.
    """
    import os

    from repro.devlint import (
        DEFAULT_BASELINE,
        DevLintError,
        lint_paths,
        registered_rules,
        run_devlint,
        save_baseline,
    )

    if args.list_rules:
        for rule_def in registered_rules():
            _emit(
                f"{rule_def.code} [{rule_def.severity.value}] "
                f"{rule_def.description}"
            )
            if rule_def.fix_hint:
                _emit(f"    fix: {rule_def.fix_hint}")
        return 0
    paths = args.paths or [os.path.join(args.root, "src", "repro")]
    codes = (
        [c.strip() for c in args.rules.split(",") if c.strip()]
        if args.rules
        else None
    )
    try:
        if args.no_baseline:
            report = lint_paths(paths, root=args.root, codes=codes)
        else:
            report = run_devlint(
                paths,
                root=args.root,
                baseline_path=args.baseline,
                codes=codes,
            )
    except DevLintError as exc:
        _error(f"error: {exc}")
        return 2
    if args.update_baseline:
        target = args.baseline or os.path.join(args.root, DEFAULT_BASELINE)
        count = save_baseline(target, report.findings + report.baselined)
        _emit(
            f"devlint: wrote {count} "
            f"entr{'y' if count == 1 else 'ies'} to {target}"
        )
        return 0
    obs.emit("devlint.done", ok=report.ok, findings=len(report.findings),
             files=report.files)
    if args.format == "json":
        _emit(json.dumps(report.to_dict(), indent=2))
    else:
        _emit(report.format(show_baselined=args.show_baselined))
    return 0 if report.ok else 1


def cmd_lint(args: argparse.Namespace) -> int:
    """Static analysis over one or more designs (see docs/LINT.md).

    Runs every registered rule plus the constraint-graph diagnostics on
    each design (against its embedded schedule when the file carries one)
    and reports findings as text or JSON.  Exit code 1 when any design has
    an error-severity finding, 2 when nothing could be loaded.
    """
    files = _batch_files(args.files)
    if not files:
        _error("error: no .lcd files to lint")
        return 2
    options = _constraint_options(args)
    reports = []
    load_errors = 0
    failures = 0
    for path in files:
        try:
            graph, schedule = _load(path)
        except (ReproError, OSError) as exc:
            load_errors += 1
            failures += 1
            _error(f"error: {path}: {exc}")
            reports.append(
                {"source": path, "ok": False, "load_error": str(exc)}
            )
            continue
        file_options = options
        if (
            schedule is not None
            and not args.no_schedule
            and options.max_period is None
        ):
            # A fully specified clock pins the cycle time: diagnose
            # feasibility *at the declared period*, so a design that can
            # never run this fast gets a negative-cycle certificate.
            file_options = replace(options, max_period=schedule.period)
        report = run_lint(
            graph,
            None if args.no_schedule else schedule,
            file_options,
            graph_diagnostics=not args.no_graph,
            source=path,
        )
        obs.emit("lint.done", file=path, ok=report.ok,
                 findings=len(report.findings))
        if not report.ok:
            failures += 1
        reports.append(report.to_dict())
        if args.format == "text":
            _emit(report.format())
    if args.format == "json":
        _emit(json.dumps(reports if len(reports) > 1 else reports[0],
                         indent=2))
    if load_errors == len(files):
        return 2
    return 1 if failures else 0


def cmd_top(args: argparse.Namespace) -> int:
    """Live terminal dashboard over a running service's /metrics."""
    from repro.obs.top import run_top

    frames = run_top(
        args.url,
        interval=args.interval,
        iterations=args.iterations,
        clear=not args.no_clear,
    )
    obs.emit("top.done", url=args.url, frames=frames)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """The ``repro bench`` family: record/compare a perf trajectory."""
    from repro.obs import bench

    if args.bench_cmd == "record":
        entry = bench.record(
            args.file,
            label=args.label,
            only=args.only or None,
            repeats=args.repeats,
        )
        _emit(f"recorded {len(entry['results'])} benchmark(s) to {args.file}"
              + (f" (label {args.label!r})" if args.label else ""))
        for name, res in sorted(entry["results"].items()):
            _emit(f"  {name:<28} {1000.0 * res['seconds']:9.2f} ms  "
                  f"(check {res['check']:g})")
        obs.emit("bench.record", file=args.file,
                 benchmarks=len(entry["results"]))
        return 0
    # "compare" -- membership enforced by argparse choices
    report = bench.compare(args.file, threshold=args.threshold)
    _emit(report.format())
    obs.emit("bench.compare", file=args.file,
             regressions=len(report.regressions), ok=report.ok)
    if not report.ok:
        if args.warn_only:
            _error("warning: benchmark regressions detected (warn-only)")
            return 0
        return 1
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """The ``repro trace`` family: offline tools over recorded trace files."""
    try:
        run_id, spans = obs.load_trace(args.file)
    except ValueError as err:  # includes json.JSONDecodeError
        _error(f"error: {err}")
        return 2
    if args.trace_cmd == "summarize":
        _emit(obs.summarize(spans, run_id))
    else:  # "export-prom" -- membership enforced by argparse choices
        _emit(obs.prometheus_text(spans))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SMO latch timing: optimal clock scheduling by LP "
        "(Sakallah, Mudge, Olukotun, DAC 1990)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    common = _global_flags_parser()

    p = sub.add_parser("minimize", parents=[common],
                       help="find the optimal cycle time (MLP)")
    p.add_argument("file", help=".lcd circuit description")
    p.add_argument("--backend", default=None, help=_backend_help())
    p.add_argument("--kernel", default="auto",
                   choices=("dict", "array", "auto"),
                   help="fixpoint kernel for the departure slide "
                   "(default auto)")
    p.add_argument("--max-period", type=float, default=None, dest="max_period")
    p.add_argument("--nrip", action="store_true", help="run the NRIP baseline")
    p.add_argument("--initial-phase", default=None, dest="initial_phase",
                   help="NRIP initial phase (default: last)")
    p.add_argument("--critical", action="store_true",
                   help="print critical segments")
    p.add_argument("--strips", action="store_true",
                   help="print Fig. 6-style strip diagrams")
    p.add_argument("--svg", default=None, help="write an SVG schedule")
    p.add_argument("--write", default=None,
                   help="write the circuit + solved schedule back to .lcd")
    p.add_argument("--dot", default=None,
                   help="write a Graphviz view of the circuit")
    p.add_argument("--lp", default=None,
                   help="write the constraint system in CPLEX LP format")
    p.add_argument("--no-lint", action="store_true", dest="no_lint",
                   help="skip the structural lint pre-flight")
    p.add_argument("--sanitize", action="store_true",
                   help="re-verify the result against every P1 constraint")
    _add_common_constraints(p)
    p.set_defaults(func=cmd_minimize)

    p = sub.add_parser("analyze", parents=[common],
                       help="verify a circuit at its embedded clock")
    p.add_argument("file")
    p.add_argument("--hold", action="store_true", help="also run the hold check")
    p.add_argument("--no-lint", action="store_true", dest="no_lint",
                   help="skip the structural lint pre-flight")
    _add_common_constraints(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "lint",
        parents=[common],
        help="static analysis: rules, certificates, Tc lower bounds",
        description="Run the lint rule registry and the constraint-graph "
        "diagnostics (negative-cycle infeasibility certificates, Karp Tc "
        "lower bound) over .lcd files and/or manifests.  Exit code 1 when "
        "any design has an error-severity finding.  See docs/LINT.md.",
    )
    p.add_argument("files", nargs="+",
                   help=".lcd files or manifests listing them")
    p.add_argument("--format", default="text", choices=("text", "json"),
                   help="output format (default text)")
    p.add_argument("--no-graph", action="store_true", dest="no_graph",
                   help="skip the constraint-graph diagnostics pass")
    p.add_argument("--no-schedule", action="store_true", dest="no_schedule",
                   help="ignore any schedule embedded in the files")
    p.add_argument("--max-period", type=float, default=None,
                   dest="max_period",
                   help="diagnose feasibility against a period cap")
    _add_common_constraints(p)
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "devlint",
        parents=[common],
        help="static analysis over the repro source tree itself",
        description="Run the devlint rule registry (async blocking-call "
        "detection, hash-determinism checks, observability hygiene, "
        "sparsity wiring) over the project's own Python source.  Exit "
        "code 0 when clean modulo the committed baseline.  See "
        "docs/DEVLINT.md.",
    )
    p.add_argument("paths", nargs="*",
                   help="files or directories to lint (default src/repro)")
    p.add_argument("--format", default="text", choices=("text", "json"),
                   help="output format (default text)")
    p.add_argument("--root", default=".",
                   help="repo root for relative paths and the default "
                   "baseline location (default .)")
    p.add_argument("--baseline", default=None,
                   help="baseline file (default <root>/devlint-baseline.json "
                   "when present)")
    p.add_argument("--no-baseline", action="store_true", dest="no_baseline",
                   help="report every finding, ignoring any baseline")
    p.add_argument("--update-baseline", action="store_true",
                   dest="update_baseline",
                   help="accept all current findings into the baseline file")
    p.add_argument("--show-baselined", action="store_true",
                   dest="show_baselined",
                   help="also list baselined (accepted) findings")
    p.add_argument("--rules", default=None,
                   help="comma-separated rule codes to run (default all)")
    p.add_argument("--list-rules", action="store_true", dest="list_rules",
                   help="list registered rules and exit")
    p.set_defaults(func=cmd_devlint)

    p = sub.add_parser("sweep", parents=[common],
                       help="piecewise-linear Tc(delay) curve")
    p.add_argument("file")
    p.add_argument("src")
    p.add_argument("dst")
    p.add_argument("--lo", type=float, required=True)
    p.add_argument("--hi", type=float, required=True)
    p.add_argument("--points", type=int, default=29, help="grid size")
    p.add_argument("--exact", action="store_true",
                   help="adaptive exact breakpoints instead of a grid")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for grid evaluation (default 1)")
    p.add_argument("--backend", default=None,
                   help=_backend_help(default="revised"))
    p.add_argument("--kernel", default="auto",
                   choices=("dict", "array", "auto"),
                   help="fixpoint kernel for the departure slide "
                   "(default auto)")
    p.add_argument("--cold-start", action="store_true", dest="cold_start",
                   help="disable warm-started solves (identical results, "
                   "more pivots)")
    _add_common_constraints(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("tune", parents=[common],
                       help="maximize setup slack at a fixed period")
    p.add_argument("file")
    p.add_argument("--period", type=float, required=True)
    _add_common_constraints(p)
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser("baselines", parents=[common],
                       help="compare MLP with every baseline")
    p.add_argument("file")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the ladder (default 1)")
    _add_common_constraints(p)
    p.set_defaults(func=cmd_baselines)

    p = sub.add_parser(
        "batch",
        parents=[common],
        help="run many designs through the cached, parallel engine",
        description="Arguments are .lcd files and/or manifest files "
        "(one .lcd path per line, '#' comments).  Every design is "
        "minimized through the engine; a per-stage metrics report is "
        "printed at the end.",
    )
    p.add_argument("files", nargs="+",
                   help=".lcd files or manifests listing them")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (default 1: in-process serial)")
    p.add_argument("--cache", default=None,
                   help="JSON result-cache file (read if present, updated)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-job wall-clock limit in seconds")
    p.add_argument("--retries", type=int, default=1,
                   help="extra attempts after a worker crash/timeout")
    p.add_argument("--backend", default=None, help=_backend_help())
    p.add_argument("--kernel", default="auto",
                   choices=("dict", "array", "auto"),
                   help="fixpoint kernel for the departure slide "
                   "(default auto)")
    _add_common_constraints(p)
    p.set_defaults(func=cmd_batch)

    p = sub.add_parser(
        "serve",
        parents=[common],
        help="run the analysis-as-a-service HTTP server",
        description="Long-running HTTP+JSON service over the batch engine "
        "(see docs/SERVE.md): POST /v1/jobs, streamed progress events, "
        "request coalescing, and a persistent content-addressed SQLite "
        "result store shared with `repro batch --cache *.sqlite`.  "
        "SIGINT/SIGTERM drain in-flight jobs before exit.",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8350,
                   help="TCP port (default 8350; 0 picks a free port)")
    p.add_argument("--store", default=None, metavar="FILE",
                   help="persistent SQLite result store "
                   "(e.g. results.sqlite; omit for in-memory only)")
    p.add_argument("--workers", type=int, default=2,
                   help="executor threads for job execution (default 2)")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   dest="drain_timeout",
                   help="seconds to wait for in-flight jobs on shutdown")
    p.add_argument("--no-lint", action="store_true", dest="no_lint",
                   help="skip the lint admission pre-flight")
    p.add_argument("--no-job-trace", action="store_true", dest="no_job_trace",
                   help="disable per-job span recording (fewer progress "
                   "events, slightly faster)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "loadgen",
        parents=[common],
        help="drive a running service with a weighted request mix",
        description="Deterministic load generator for `repro serve`: "
        "fires a seeded weighted mix of requests (see "
        "examples/loadgen_mix.json) and reports client latency "
        "percentiles plus server-side counter deltas from /metrics.",
    )
    p.add_argument("--url", default="http://127.0.0.1:8350",
                   help="server base URL (default http://127.0.0.1:8350)")
    p.add_argument("--mix", default=None, metavar="FILE",
                   help="request-mix JSON file (default: built-in mix)")
    p.add_argument("--requests", type=int, default=32,
                   help="total requests to send (default 32)")
    p.add_argument("--concurrency", type=int, default=4,
                   help="concurrent client connections (default 4)")
    p.add_argument("--seed", type=int, default=0,
                   help="PRNG seed for the weighted draws (default 0)")
    p.add_argument("--timeout", type=float, default=60.0,
                   help="per-request timeout in seconds (default 60)")
    p.add_argument("--format", default="text", choices=("text", "json"),
                   help="report format (default text)")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="also write the JSON report to FILE")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser(
        "top",
        parents=[common],
        help="live terminal dashboard over a service's /metrics",
        description="Poll the Prometheus exposition endpoint of a running "
        "`repro serve` and render request rate, error %, latency "
        "quantiles (derived from histogram buckets), cache hit ratio and "
        "queue depth, refreshed every --interval seconds until Ctrl-C.",
    )
    p.add_argument("--url", default="http://127.0.0.1:8350",
                   help="server base URL (default http://127.0.0.1:8350)")
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between scrapes (default 2)")
    p.add_argument("--iterations", type=int, default=None,
                   help="stop after N frames (default: run until Ctrl-C)")
    p.add_argument("--no-clear", action="store_true", dest="no_clear",
                   help="append frames instead of clearing the screen")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser(
        "bench",
        help="record/compare a benchmark trajectory (perf regression gate)",
        description="'record' runs a quick deterministic workload suite "
        "and appends best-of-N timings to a versioned BENCH_*.json "
        "trajectory; 'compare' diffs two entries (default: the last two) "
        "and flags workloads slower than --threshold.  CI runs compare "
        "--warn-only as the perf-regression gate.",
    )
    bsub = p.add_subparsers(dest="bench_cmd", required=True)
    bp = bsub.add_parser("record", parents=[common])
    bp.add_argument("file", nargs="?", default="BENCH_local.json",
                    help="trajectory JSON file (default BENCH_local.json)")
    bp.add_argument("--label", default="",
                    help="entry label (e.g. a commit hash)")
    bp.add_argument("--repeats", type=int, default=3,
                    help="timed runs per workload; best is kept (default 3)")
    bp.add_argument("--only", action="append", default=None,
                    metavar="NAME", help="run only this workload (repeatable)")
    bp.set_defaults(func=cmd_bench)
    bp = bsub.add_parser("compare", parents=[common])
    bp.add_argument("file", nargs="?", default="BENCH_local.json",
                    help="trajectory JSON file (default BENCH_local.json)")
    bp.add_argument("--threshold", type=float, default=0.20,
                    help="regression threshold as a fraction (default 0.20)")
    bp.add_argument("--warn-only", action="store_true", dest="warn_only",
                    help="report regressions but exit 0 (CI soft gate)")
    bp.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "trace",
        help="inspect a recorded --trace file",
        description="Offline tools over a trace recorded with --trace: "
        "'summarize' prints a top-down time breakdown plus LP/slide "
        "convergence tables; 'export-prom' flattens the spans into "
        "Prometheus exposition text.",
    )
    tsub = p.add_subparsers(dest="trace_cmd", required=True)
    for action in ("summarize", "export-prom"):
        tp = tsub.add_parser(action, parents=[common])
        tp.add_argument("file", help="trace JSON written by --trace")
        tp.set_defaults(func=cmd_trace)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    global _QUIET, _VERBOSE
    parser = build_parser()
    args = parser.parse_args(argv)
    _QUIET = bool(getattr(args, "quiet", False))
    _VERBOSE = bool(getattr(args, "verbose", False))
    trace_path = getattr(args, "trace", None)
    log_path = getattr(args, "log_json", None)

    tracer = obs.enable() if trace_path else None
    log = None
    bridge = None
    if log_path:
        log = obs.EventLog(log_path, level="debug" if _VERBOSE else "info")
        obs.set_log(log)
        bridge = obs.install_logging_bridge(log)
        log.emit("run.start", command=args.command)

    start = time.perf_counter()
    code = 2
    try:
        root = tracer.span(f"repro.{args.command}") if tracer else None
        if root is not None:
            root.__enter__()
        try:
            code = args.func(args)
        finally:
            if root is not None:
                root.__exit__(None, None, None)
        return code
    except ReproError as err:
        _error(f"error: {err}")
        obs.emit("run.error", level="error", error=str(err))
        return code
    except KeyboardInterrupt:
        # Ctrl-C or SIGTERM (converted by the worker pool): children are
        # already torn down; report the conventional 128+SIGINT code.
        _error("interrupted")
        obs.emit("run.interrupted", level="warning", command=args.command)
        code = 130
        return code
    except BrokenPipeError:
        # Downstream consumer (head, less) closed stdout; not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return code
    except OSError as err:
        _error(f"error: {err}")
        obs.emit("run.error", level="error", error=str(err))
        return code
    finally:
        if tracer is not None:
            spans = [s.to_dict() for s in tracer.roots]
            try:
                obs.write_chrome_trace(trace_path, spans, tracer.run_id)
                _info(
                    f"wrote trace ({len(spans)} root span(s), "
                    f"run {tracer.run_id}) to {trace_path}"
                )
            except OSError as err:
                _error(f"error: could not write trace: {err}")
            obs.disable()
        if log is not None:
            log.emit("run.end", command=args.command, exit_code=code,
                     seconds=time.perf_counter() - start)
            if bridge is not None:
                obs.remove_logging_bridge(bridge)
            obs.set_log(None)
            log.close()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
