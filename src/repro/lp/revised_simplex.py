"""A revised primal simplex solver with explicit bases and warm starts.

Where the dense solver (:mod:`repro.lp.simplex`) carries the whole tableau
through every pivot, this solver maintains only the basis inverse, updated
in product form and periodically refactorized for numerical hygiene.  Its
distinguishing feature is the **warm start**: given the optimal
:class:`~repro.lp.basis.Basis` of a structurally identical program (for
example the previous point of a parametric delay sweep), it refactorizes
that basis against the new coefficients and -- when the basis is still
primal feasible -- skips phase 1 entirely, typically finishing in a few
pivots instead of a few hundred.  An infeasible or unusable warm basis
falls back to the ordinary two-phase cold start, so warm starting can
change only the *path* to the optimum, never the optimum itself.

Pivoting uses Dantzig's rule with the same Bland anti-cycling fallback as
the dense solver, so termination is guaranteed.  The returned
:class:`~repro.lp.result.LPResult` carries the optimal basis, the warm
start outcome (``"hit"``, ``"miss"`` or ``"cold"``) and the periodic
refactorization count in :attr:`~repro.lp.result.LPResult.extra`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError
from repro.lp.basis import Basis
from repro.lp.model import LinearProgram
from repro.lp.result import LPResult, LPStatus, attach_slacks
from repro.lp.standard_form import StandardForm
from repro.obs import trace


@dataclass(frozen=True)
class RevisedSimplexOptions:
    """Tuning knobs for :func:`solve_revised_simplex`."""

    tol: float = 1e-9
    max_iterations: int = 100_000
    #: switch from Dantzig's rule to Bland's rule after this many consecutive
    #: degenerate pivots (prevents cycling while keeping typical speed).
    bland_after: int = 50
    #: recompute the basis inverse from scratch after this many product-form
    #: updates; bounds the accumulated floating-point drift.
    refactor_every: int = 64


class _RevisedState:
    """Basis, basis inverse and basic solution, kept in sync across pivots."""

    def __init__(
        self,
        a: np.ndarray,
        b: np.ndarray,
        basis: np.ndarray,
        options: RevisedSimplexOptions,
    ) -> None:
        self.a = a
        self.b = b
        self.basis = basis
        self.options = options
        self.refactorizations = 0  # periodic only; the initial one is free
        self._pivots_since_refactor = 0
        self._factorize()

    def _factorize(self) -> None:
        try:
            self.b_inv = np.linalg.inv(self.a[:, self.basis])
        except np.linalg.LinAlgError:
            raise SolverError("singular basis matrix") from None
        self.x_b = self.b_inv @ self.b
        self._pivots_since_refactor = 0

    def pivot(self, row: int, col: int, direction: np.ndarray) -> None:
        """Bring ``col`` into the basis at ``row``; ``direction = B^-1 a_col``."""
        ur = direction[row]
        theta = max(0.0, self.x_b[row]) / ur
        self.x_b -= theta * direction
        self.x_b[row] = theta
        pivot_row = self.b_inv[row, :] / ur
        self.b_inv -= np.outer(direction, pivot_row)
        self.b_inv[row, :] = pivot_row
        self.basis[row] = col
        self._pivots_since_refactor += 1
        if self._pivots_since_refactor >= self.options.refactor_every:
            self.refactorizations += 1
            if trace.is_enabled():
                trace.add_event("refactorize", count=self.refactorizations)
            self._factorize()


def _optimize(
    state: _RevisedState,
    costs: np.ndarray,
    allowed: np.ndarray,
    options: RevisedSimplexOptions,
) -> tuple[str, int]:
    """Optimize min costs'x from the current basis; returns (status, pivots)."""
    m = state.a.shape[0]
    tol = options.tol
    iterations = 0
    degenerate_run = 0
    traced = trace.is_enabled()  # hoisted so untraced pivots pay one bool test

    while True:
        if iterations >= options.max_iterations:
            raise SolverError(
                f"revised simplex exceeded {options.max_iterations} iterations"
            )
        y = costs[state.basis] @ state.b_inv
        reduced = costs - y @ state.a
        reduced[~allowed] = np.inf  # never enter disallowed columns
        reduced[state.basis] = np.inf  # basic columns have zero reduced cost

        candidates = np.where(reduced < -tol)[0]
        if candidates.size == 0:
            return "optimal", iterations
        if degenerate_run >= options.bland_after:
            col = int(candidates[0])
        else:
            col = int(candidates[np.argmin(reduced[candidates])])

        direction = state.b_inv @ state.a[:, col]
        positive = direction > tol
        if not positive.any():
            return "unbounded", iterations
        ratios = np.full(m, np.inf)
        feasible_xb = np.maximum(state.x_b, 0.0)
        ratios[positive] = feasible_xb[positive] / direction[positive]
        best = ratios.min()
        # Tie-break on the smallest basis index (Bland-compatible).
        tied = np.where(ratios <= best + tol)[0]
        row = int(tied[np.argmin(state.basis[tied])])

        degenerate_run = degenerate_run + 1 if best <= tol else 0
        if traced:
            trace.add_event(
                "pivot",
                enter=col,
                leave=int(state.basis[row]),
                row=row,
                degenerate=bool(best <= tol),
            )
        state.pivot(row, col, direction)
        iterations += 1


def _try_warm_start(
    sf: StandardForm, warm_start: Basis | None, options: RevisedSimplexOptions
) -> _RevisedState | None:
    """A ready phase-2 state from a warm basis, or None when unusable.

    The correctness guard: a basis is accepted only if it indexes this
    standard form's columns (structure match), is nonsingular against the
    *new* coefficients, and its basic solution is primal feasible.  Every
    other case returns None and the caller runs an ordinary phase 1.
    """
    if warm_start is None or not warm_start.matches(sf):
        return None
    columns = np.asarray(warm_start.columns, dtype=int)
    if len(set(columns.tolist())) != sf.m:
        return None
    try:
        state = _RevisedState(sf.a, sf.b, columns.copy(), options)
    except SolverError:
        return None
    if state.x_b.min() < -1e-7:
        return None  # basis infeasible for the perturbed program
    state.x_b = np.maximum(state.x_b, 0.0)
    return state


def solve_revised_simplex(
    program: LinearProgram,
    options: RevisedSimplexOptions | None = None,
    warm_start: Basis | None = None,
) -> LPResult:
    """Solve a :class:`LinearProgram` with the revised simplex method.

    ``warm_start`` optionally supplies the optimal basis of a structurally
    identical program.  The result's ``extra`` dict carries:

    * ``"basis"`` -- the optimal :class:`~repro.lp.basis.Basis` (when every
      basic column is structural), reusable as the next warm start;
    * ``"warm_start"`` -- ``"hit"`` (basis accepted, phase 1 skipped),
      ``"miss"`` (basis supplied but rejected) or ``"cold"``;
    * ``"refactorizations"`` -- periodic basis-inverse rebuilds;
    * ``"phase1_pivots"`` -- pivots spent in phase 1 (0 on a warm hit).
    """
    start = time.perf_counter()
    result = _solve_revised(program, options, warm_start)
    result.solve_seconds = time.perf_counter() - start
    return result


def _solve_revised(
    program: LinearProgram,
    options: RevisedSimplexOptions | None,
    warm_start: Basis | None,
) -> LPResult:
    options = options or RevisedSimplexOptions()
    sf = StandardForm(program)
    m, n = sf.m, sf.n_struct
    tol = options.tol
    extra: dict[str, object] = {
        "warm_start": "cold" if warm_start is None else "miss",
        "refactorizations": 0,
        "phase1_pivots": 0,
    }

    if m == 0:
        # No constraints: optimum is 0 for all nonnegative variables (any
        # negative cost coefficient would make the problem unbounded).
        if np.any(sf.c < -tol):
            return LPResult(status=LPStatus.UNBOUNDED, backend="revised", extra=extra)
        result = LPResult(
            status=LPStatus.OPTIMAL,
            objective=sf.objective_constant,
            values=sf.recover_values(np.zeros(n)),
            duals={},
            backend="revised",
            extra=extra,
        )
        return attach_slacks(result, program)

    iterations = 0
    state = _try_warm_start(sf, warm_start, options)
    if state is not None:
        extra["warm_start"] = "hit"
    if trace.is_enabled():
        trace.add_event("warm_start", outcome=extra["warm_start"])

    if state is None:
        # ------------------------------------------------------------------
        # Phase 1: find a basic feasible solution using artificial variables.
        # Rows with a +1 slack can use it directly; others get an artificial.
        # ------------------------------------------------------------------
        basis = np.full(m, -1, dtype=int)
        artificial_rows = []
        for i in range(m):
            sc = sf.slack_col_of_row[i]
            if sc >= 0 and sf.a[i, sc] == 1.0:
                basis[i] = sc
            else:
                artificial_rows.append(i)
        n_art = len(artificial_rows)
        a_full = sf.a
        if n_art:
            a_full = np.hstack([sf.a, np.zeros((m, n_art))])
            for k, i in enumerate(artificial_rows):
                a_full[i, n + k] = 1.0
                basis[i] = n + k
        state = _RevisedState(a_full, sf.b, basis, options)
        if n_art:
            phase1_costs = np.zeros(n + n_art)
            phase1_costs[n:] = 1.0
            allowed = np.ones(n + n_art, dtype=bool)
            status, it1 = _optimize(state, phase1_costs, allowed, options)
            iterations += it1
            extra["phase1_pivots"] = it1
            if trace.is_enabled():
                trace.add_event("phase1", pivots=it1)
            if status != "optimal":  # pragma: no cover - phase 1 never unbounded
                raise SolverError(f"phase 1 ended with status {status}")
            infeasibility = float(
                np.maximum(state.x_b, 0.0)[state.basis >= n].sum()
            )
            if infeasibility > 1e-7:
                extra["refactorizations"] = state.refactorizations
                return LPResult(
                    status=LPStatus.INFEASIBLE,
                    iterations=iterations,
                    backend="revised",
                    extra=extra,
                )
            # Drive any remaining zero-level artificials out of the basis.
            for i in range(m):
                if state.basis[i] >= n:
                    row_vec = state.b_inv[i, :] @ state.a[:, :n]
                    pivotable = np.where(np.abs(row_vec) > tol)[0]
                    if pivotable.size:
                        col = int(pivotable[0])
                        direction = state.b_inv @ state.a[:, col]
                        state.pivot(i, col, direction)
                    # else: the row is redundant; the artificial stays basic at 0.

    # ------------------------------------------------------------------
    # Phase 2: optimize the true objective with artificials locked out.
    # ------------------------------------------------------------------
    n_total = state.a.shape[1]
    costs = np.zeros(n_total)
    costs[:n] = sf.c
    allowed = np.zeros(n_total, dtype=bool)
    allowed[:n] = True
    status, it2 = _optimize(state, costs, allowed, options)
    iterations += it2
    extra["refactorizations"] = state.refactorizations
    if status == "unbounded":
        return LPResult(
            status=LPStatus.UNBOUNDED,
            iterations=iterations,
            backend="revised",
            extra=extra,
        )

    x = np.zeros(n_total)
    x[state.basis] = np.maximum(state.x_b, 0.0)
    objective = float(sf.c @ x[:n]) + sf.objective_constant
    values = sf.recover_values(x[:n])

    # Duals come straight from the basis inverse: y = c_B B^-1, mapped back
    # through the sign flips of the b >= 0 normalization.
    y = costs[state.basis] @ state.b_inv
    duals = {
        name: float(y[i] * sf.row_sign[i]) for i, name in enumerate(sf.row_names)
    }

    if bool(np.all(state.basis < n)):
        extra["basis"] = Basis(
            columns=tuple(int(c) for c in state.basis),
            structure=sf.structure_key,
        )

    result = LPResult(
        status=LPStatus.OPTIMAL,
        objective=objective,
        values=values,
        duals=duals,
        iterations=iterations,
        backend="revised",
        extra=extra,
    )
    return attach_slacks(result, program)
