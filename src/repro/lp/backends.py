"""Backend registry: route LPs to a simplex, scipy, or the cycle solver.

All backends answer the same question and must produce identical optima;
they differ in speed and capabilities:

* ``"simplex"`` -- the from-scratch dense tableau solver (the default,
  and the paper's own choice);
* ``"revised"`` -- the revised simplex with explicit basis objects; it
  accepts a **warm start**, which repeated-solve paths (sweeps, batches)
  use to skip phase 1 between structurally identical programs;
* ``"sparse"``  -- the sparse revised simplex (:mod:`repro.lp.sparse_simplex`):
  pivot-for-pivot the revised solver, but with CSC constraint storage and
  an LU + eta-file basis factorization -- O(nnz) memory instead of O(m^2),
  the backend that scales to 10k+ latches.  Emits and accepts the same
  :class:`~repro.lp.basis.Basis` objects as ``"revised"``;
* ``"scipy"``   -- :func:`scipy.optimize.linprog` (HiGHS), registered when
  scipy is importable;
* ``"cycle"``   -- the graph-native parametric critical-cycle solver of
  :mod:`repro.cycle`: no tableau at all, but it needs the originating
  :class:`~repro.core.constraints.SMOProgram` as ``context`` and falls
  back to the revised simplex whenever it cannot certify its answer;
* ``"cycle+check"`` -- ``"cycle"`` plus an unconditional revised-simplex
  cross-check asserting agreement to 1e-9 (the CI trust anchor).

``solve(program, backend=..., warm_start=..., context=...)`` is the
single entry point.  A warm start or context is silently dropped for
backends that cannot use it, so callers can thread both unconditionally.
"""

from __future__ import annotations

import inspect
import time
from typing import Callable

from repro.errors import SolverError
from repro.lp.basis import Basis
from repro.lp.model import LinearProgram
from repro.lp.result import LPResult
from repro.lp.revised_simplex import solve_revised_simplex
from repro.lp.scipy_backend import HAVE_SCIPY, solve_scipy
from repro.lp.simplex import solve_simplex
from repro.lp.sparse_simplex import solve_sparse_simplex
from repro.obs import metrics, trace

#: Name of the backend used when the caller does not specify one.
DEFAULT_BACKEND = "simplex"

#: Programs with more constraint rows than this are auto-routed from the
#: dense default to the sparse revised simplex when the caller passes
#: ``backend=None``: the dense tableau above this size is both slow and a
#: counted dense-materialization event (see :mod:`repro.lp.sparse`).
AUTO_SPARSE_ROWS = 2000


def _solve_revised(program: LinearProgram, warm_start: Basis | None = None) -> LPResult:
    return solve_revised_simplex(program, warm_start=warm_start)


def _solve_sparse(program: LinearProgram, warm_start: Basis | None = None) -> LPResult:
    return solve_sparse_simplex(program, warm_start=warm_start)


def _solve_cycle(
    program: LinearProgram,
    warm_start: Basis | None = None,
    context: object | None = None,
) -> LPResult:
    # Imported lazily: repro.cycle itself falls back through this module.
    from repro.cycle.solver import solve_cycle

    return solve_cycle(program, warm_start=warm_start, context=context)


def _solve_cycle_check(
    program: LinearProgram,
    warm_start: Basis | None = None,
    context: object | None = None,
) -> LPResult:
    from repro.cycle.solver import solve_cycle

    return solve_cycle(
        program, warm_start=warm_start, context=context, check=True
    )


#: name -> (solver, accepts_warm_start, accepts_context)
_BACKENDS: dict[str, tuple[Callable[..., LPResult], bool, bool]] = {
    "simplex": (solve_simplex, False, False),
    "revised": (_solve_revised, True, False),
    "sparse": (_solve_sparse, True, False),
    "cycle": (_solve_cycle, True, True),
    "cycle+check": (_solve_cycle_check, True, True),
}
if HAVE_SCIPY:
    _BACKENDS["scipy"] = (solve_scipy, False, False)


def available_backends() -> list[str]:
    """Names of all usable LP backends."""
    return sorted(_BACKENDS)


def supports_warm_start(name: str | None = None) -> bool:
    """True when the named backend (default: the default one) takes a basis.

    The cycle backends report True because a supplied basis still warm
    starts their revised-simplex fallback and cross-check solves; they
    never *emit* a basis, so chains simply go cold through them.
    """
    entry = _BACKENDS.get(name or DEFAULT_BACKEND)
    return bool(entry and entry[1])


def supports_context(name: str | None = None) -> bool:
    """True when the named backend consumes the SMO ``context`` object."""
    entry = _BACKENDS.get(name or DEFAULT_BACKEND)
    return bool(entry and entry[2])


def canonical_backend(name: str | None) -> str:
    """The registry name that actually answers for ``name``.

    Strips decoration suffixes (``"cycle+check"`` -> ``"cycle"``), so
    cache keys and signatures built from the canonical name hit across
    checked and unchecked variants of the same backend.  Unknown names
    pass through unchanged -- validation stays with :func:`solve`.
    """
    full = name or DEFAULT_BACKEND
    base = full.split("+", 1)[0]
    return base if base in _BACKENDS else full


def register_backend(
    name: str, solver: Callable[..., LPResult]
) -> None:
    """Register a custom solver callable under ``name``.

    A solver whose signature accepts a ``warm_start`` (resp. ``context``)
    keyword is handed the caller's basis (resp. SMO program); any other
    callable is invoked as ``solver(program)``.
    """
    try:
        parameters = inspect.signature(solver).parameters
        accepts_warm = "warm_start" in parameters
        accepts_context = "context" in parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins, C callables
        accepts_warm = False
        accepts_context = False
    _BACKENDS[name] = (solver, accepts_warm, accepts_context)


def solve(
    program: LinearProgram,
    backend: str | None = None,
    warm_start: Basis | None = None,
    context: object | None = None,
) -> LPResult:
    """Solve a program with the named backend (default: from-scratch simplex).

    ``warm_start`` optionally supplies the optimal basis of a structurally
    identical, previously solved program; it is forwarded to backends that
    support it (``"revised"``, ``"sparse"`` and, for their LP fallback,
    the cycle backends) and ignored by the rest.  ``context`` optionally
    supplies the :class:`~repro.core.constraints.SMOProgram` the program
    was generated from; the graph-native ``"cycle"``/``"cycle+check"``
    backends require it to recover event times and fall back to the LP
    without it.  Neither option ever changes the reported optimum.

    When no backend is named, programs above :data:`AUTO_SPARSE_ROWS`
    rows route to ``"sparse"`` instead of the dense default: at that
    size the dense tableau is an O(m x n) allocation the sparse solver
    answers identically without.
    """
    name = backend or DEFAULT_BACKEND
    if backend is None and len(program) > AUTO_SPARSE_ROWS:
        name = "sparse"
    try:
        solver, accepts_warm, accepts_context = _BACKENDS[name]
    except KeyError:
        raise SolverError(
            f"unknown LP backend {name!r}; available: {available_backends()}"
        ) from None
    with trace.span("lp_solve", backend=name) as span:
        start = time.perf_counter()
        kwargs: dict[str, object] = {}
        if accepts_warm:
            kwargs["warm_start"] = warm_start
        if accepts_context:
            kwargs["context"] = context
        result = solver(program, **kwargs)
        elapsed = time.perf_counter() - start
        if not result.solve_seconds:
            result.solve_seconds = elapsed
        span.set("status", result.status.name)
        span.set("pivots", result.iterations)
        outcome = result.extra.get("warm_start")
        if outcome is not None:
            span.set("warm_start", outcome)
        cycle_info = result.extra.get("cycle")
        if isinstance(cycle_info, dict):
            span.set("cycle_used", bool(cycle_info.get("used")))
    if metrics.is_enabled():
        metrics.inc("lp_solves_total", backend=name, status=result.status.name)
        metrics.observe("lp_solve_seconds", elapsed, backend=name)
        metrics.observe(
            "lp_pivots",
            float(result.iterations),
            buckets=metrics.COUNT_BUCKETS,
            backend=name,
        )
    return result
