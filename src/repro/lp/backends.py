"""Backend registry: route LPs to the simplex or the scipy solver."""

from __future__ import annotations

import time
from typing import Callable

from repro.errors import SolverError
from repro.lp.model import LinearProgram
from repro.lp.result import LPResult
from repro.lp.scipy_backend import HAVE_SCIPY, solve_scipy
from repro.lp.simplex import solve_simplex

#: Name of the backend used when the caller does not specify one.
DEFAULT_BACKEND = "simplex"

_BACKENDS: dict[str, Callable[[LinearProgram], LPResult]] = {
    "simplex": solve_simplex,
}
if HAVE_SCIPY:
    _BACKENDS["scipy"] = solve_scipy


def available_backends() -> list[str]:
    """Names of all usable LP backends."""
    return sorted(_BACKENDS)


def register_backend(
    name: str, solver: Callable[[LinearProgram], LPResult]
) -> None:
    """Register a custom solver callable under ``name``."""
    _BACKENDS[name] = solver


def solve(program: LinearProgram, backend: str | None = None) -> LPResult:
    """Solve a program with the named backend (default: from-scratch simplex)."""
    name = backend or DEFAULT_BACKEND
    try:
        solver = _BACKENDS[name]
    except KeyError:
        raise SolverError(
            f"unknown LP backend {name!r}; available: {available_backends()}"
        ) from None
    start = time.perf_counter()
    result = solver(program)
    elapsed = time.perf_counter() - start
    if not result.solve_seconds:
        result.solve_seconds = elapsed
    return result
