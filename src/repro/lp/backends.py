"""Backend registry: route LPs to the simplex, revised-simplex or scipy solver.

All backends answer the same question and must produce identical optima;
they differ in speed and capabilities:

* ``"simplex"`` -- the from-scratch dense tableau solver (the default, and
  the paper's own choice);
* ``"revised"`` -- the revised simplex with explicit basis objects; the
  only backend that accepts a **warm start**, which repeated-solve paths
  (sweeps, batches) use to skip phase 1 between structurally identical
  programs;
* ``"scipy"``   -- :func:`scipy.optimize.linprog` (HiGHS), registered when
  scipy is importable.

``solve(program, backend=..., warm_start=...)`` is the single entry
point.  A warm start is silently ignored by backends that cannot use one,
so callers can thread a basis unconditionally.
"""

from __future__ import annotations

import inspect
import time
from typing import Callable

from repro.errors import SolverError
from repro.lp.basis import Basis
from repro.lp.model import LinearProgram
from repro.lp.result import LPResult
from repro.lp.revised_simplex import solve_revised_simplex
from repro.lp.scipy_backend import HAVE_SCIPY, solve_scipy
from repro.lp.simplex import solve_simplex
from repro.obs import trace

#: Name of the backend used when the caller does not specify one.
DEFAULT_BACKEND = "simplex"


def _solve_revised(program: LinearProgram, warm_start: Basis | None = None) -> LPResult:
    return solve_revised_simplex(program, warm_start=warm_start)


#: name -> (solver, accepts_warm_start)
_BACKENDS: dict[str, tuple[Callable[..., LPResult], bool]] = {
    "simplex": (solve_simplex, False),
    "revised": (_solve_revised, True),
}
if HAVE_SCIPY:
    _BACKENDS["scipy"] = (solve_scipy, False)


def available_backends() -> list[str]:
    """Names of all usable LP backends."""
    return sorted(_BACKENDS)


def supports_warm_start(name: str | None = None) -> bool:
    """True when the named backend (default: the default one) takes a basis."""
    entry = _BACKENDS.get(name or DEFAULT_BACKEND)
    return bool(entry and entry[1])


def register_backend(
    name: str, solver: Callable[..., LPResult]
) -> None:
    """Register a custom solver callable under ``name``.

    A solver whose signature accepts a ``warm_start`` keyword is handed the
    caller's basis; any other callable is invoked as ``solver(program)``.
    """
    try:
        accepts_warm = "warm_start" in inspect.signature(solver).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins, C callables
        accepts_warm = False
    _BACKENDS[name] = (solver, accepts_warm)


def solve(
    program: LinearProgram,
    backend: str | None = None,
    warm_start: Basis | None = None,
) -> LPResult:
    """Solve a program with the named backend (default: from-scratch simplex).

    ``warm_start`` optionally supplies the optimal basis of a structurally
    identical, previously solved program; it is forwarded to backends that
    support it (currently ``"revised"``) and ignored by the rest.  Warm
    starting never changes the reported optimum -- an unusable basis falls
    back to a cold start inside the solver.
    """
    name = backend or DEFAULT_BACKEND
    try:
        solver, accepts_warm = _BACKENDS[name]
    except KeyError:
        raise SolverError(
            f"unknown LP backend {name!r}; available: {available_backends()}"
        ) from None
    with trace.span("lp_solve", backend=name) as span:
        start = time.perf_counter()
        if accepts_warm:
            result = solver(program, warm_start=warm_start)
        else:
            result = solver(program)
        elapsed = time.perf_counter() - start
        if not result.solve_seconds:
            result.solve_seconds = elapsed
        span.set("status", result.status.name)
        span.set("pivots", result.iterations)
        outcome = result.extra.get("warm_start")
        if outcome is not None:
            span.set("warm_start", outcome)
    return result
