"""Explicit simplex basis objects, the currency of warm starting.

A :class:`Basis` records which standard-form column is basic in each row
of an optimal solution, plus the structure fingerprint of the standard
form it came from.  Because successive LPs of a parametric sweep (or a
batch of near-identical designs) share their column structure and differ
only in constraint constants, the optimal basis of one solve is usually
feasible -- and close to optimal -- for the next; offering it to
:func:`repro.lp.revised_simplex.solve_revised_simplex` lets the solver
skip phase 1 entirely and finish in a handful of pivots.

Bases are plain data (a tuple of column indices and a short fingerprint
string), so they pickle across process boundaries and round-trip through
the engine's JSON result cache via :meth:`Basis.to_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import LPError


@dataclass(frozen=True)
class Basis:
    """One basic column index per standard-form row, plus a structure key.

    ``columns[i]`` is the structural column that is basic in row ``i``;
    ``structure`` is :attr:`repro.lp.standard_form.StandardForm.structure_key`
    of the program the basis was extracted from.  A basis is only offered
    as a warm start to a program whose standard form has the same key --
    the solver then re-factorizes the basis matrix against the *new*
    coefficients and falls back to a cold phase-1 start if the basis turns
    out infeasible for the perturbed program.
    """

    columns: tuple[int, ...]
    structure: str

    def __post_init__(self) -> None:
        if any(c < 0 for c in self.columns):
            raise LPError("basis columns must be nonnegative indices")

    @property
    def m(self) -> int:
        """Number of rows the basis covers."""
        return len(self.columns)

    def matches(self, standard_form) -> bool:
        """True when this basis indexes valid columns of ``standard_form``."""
        return (
            self.structure == standard_form.structure_key
            and len(self.columns) == standard_form.m
            and all(c < standard_form.n_struct for c in self.columns)
        )

    # ------------------------------------------------------------------
    # Plain-data round trip (JSON result cache, process boundaries)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"columns": list(self.columns), "structure": self.structure}

    @classmethod
    def from_dict(cls, data: Mapping) -> "Basis":
        return cls(
            columns=tuple(int(c) for c in data["columns"]),
            structure=str(data["structure"]),
        )
