"""Solver-independent result object for linear programs."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import InfeasibleError, UnboundedError
from repro.lp.model import LinearProgram


class LPStatus(str, enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclass
class LPResult:
    """Outcome of solving a :class:`repro.lp.model.LinearProgram`.

    ``values`` maps every model variable to its optimal value; ``duals``
    maps constraint names to shadow prices (the derivative of the optimal
    objective with respect to that constraint's right-hand side); ``slacks``
    maps constraint names to ``|lhs - rhs|`` distance from binding.

    ``iterations`` counts solver iterations -- simplex pivots for the dense
    simplex backend (also exposed as :attr:`pivots`), ``res.nit`` for
    scipy -- and ``solve_seconds`` is the wall-clock time spent inside the
    backend, filled by :func:`repro.lp.backends.solve` when the backend
    itself does not report it.

    ``extra`` carries backend-specific artifacts; the revised simplex puts
    the optimal :class:`~repro.lp.basis.Basis` under ``extra["basis"]``
    (reusable as the next solve's warm start), the warm-start outcome under
    ``extra["warm_start"]`` and its refactorization count under
    ``extra["refactorizations"]``.
    """

    status: LPStatus
    objective: float = float("nan")
    values: dict[str, float] = field(default_factory=dict)
    duals: dict[str, float] = field(default_factory=dict)
    slacks: dict[str, float] = field(default_factory=dict)
    iterations: int = 0
    backend: str = ""
    solve_seconds: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status is LPStatus.OPTIMAL

    @property
    def pivots(self) -> int:
        """Simplex pivot count (alias of ``iterations`` for LP backends)."""
        return self.iterations

    def raise_for_status(self) -> "LPResult":
        """Raise a typed error unless the status is OPTIMAL."""
        if self.status is LPStatus.INFEASIBLE:
            raise InfeasibleError(f"LP infeasible ({self.backend})")
        if self.status is LPStatus.UNBOUNDED:
            raise UnboundedError(f"LP unbounded ({self.backend})")
        return self

    def value(self, name: str) -> float:
        return self.values[name]

    def binding_constraints(self, tol: float = 1e-7) -> list[str]:
        """Names of constraints with (near-)zero slack."""
        return [name for name, s in self.slacks.items() if abs(s) <= tol]


def attach_slacks(result: LPResult, program: LinearProgram) -> LPResult:
    """Fill in per-constraint slacks by evaluating at the solution point."""
    if result.status is not LPStatus.OPTIMAL:
        return result
    point: Mapping[str, float] = result.values
    slacks: dict[str, float] = {}
    for con in program.constraints:
        value = con.lhs.evaluate(point)
        slacks[con.name] = abs(con.rhs - value)
    result.slacks = slacks
    return result
