"""Conversion of a :class:`LinearProgram` to simplex standard form.

Both simplex backends (the dense tableau solver in :mod:`repro.lp.simplex`
and the revised solver in :mod:`repro.lp.revised_simplex`) operate on the
same canonical shape::

    min c'x   s.t.   Ax = b,  b >= 0,  x >= 0

built here: free variables are split into positive/negative parts, slack
columns turn inequalities into equalities, and rows are sign-normalized so
every right-hand side is nonnegative (the flips are remembered for dual
recovery).

Two programs with the same variables, constraint names and senses -- for
example successive points of a parametric delay sweep, which differ only
in constraint constants -- produce standard forms with identical *column
structure*.  :attr:`StandardForm.structure_key` fingerprints that
structure, which is what lets an optimal basis from one solve be offered
as a warm start for the next (see :mod:`repro.lp.basis`).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.lp.model import LinearProgram


class StandardForm:
    """min c'x  s.t.  Ax = b (b >= 0), x >= 0, built from a LinearProgram."""

    def __init__(self, program: LinearProgram):
        arrays = program.to_arrays()
        self.program = program
        n_orig = arrays.n_variables

        # Split free variables into positive and negative parts.
        self.var_names = list(arrays.variables)
        self.pos_col = list(range(n_orig))
        self.neg_col = [-1] * n_orig
        extra_cols = []
        for idx, free in enumerate(arrays.free):
            if free:
                self.neg_col[idx] = n_orig + len(extra_cols)
                extra_cols.append(idx)

        blocks = []
        senses = []
        rhs = []
        self.row_names: list[str] = []
        for a, b, names, sense in (
            (arrays.a_le, arrays.b_le, arrays.names_le, "<="),
            (arrays.a_ge, arrays.b_ge, arrays.names_ge, ">="),
            (arrays.a_eq, arrays.b_eq, arrays.names_eq, "=="),
        ):
            for row, bi, name in zip(a, b, names):
                blocks.append(row)
                senses.append(sense)
                rhs.append(bi)
                self.row_names.append(name)

        m = len(blocks)
        a_orig = np.vstack(blocks) if m else np.zeros((0, n_orig))
        b_vec = np.asarray(rhs, dtype=float)

        # Structural columns: originals, negative parts of free vars, slacks.
        n_slack = sum(1 for s in senses if s != "==")
        n_struct = n_orig + len(extra_cols) + n_slack
        a = np.zeros((m, n_struct))
        a[:, :n_orig] = a_orig
        for k, orig_idx in enumerate(extra_cols):
            a[:, n_orig + k] = -a_orig[:, orig_idx]

        self.slack_col_of_row = [-1] * m
        col = n_orig + len(extra_cols)
        for i, sense in enumerate(senses):
            if sense == "<=":
                a[i, col] = 1.0
                self.slack_col_of_row[i] = col
                col += 1
            elif sense == ">=":
                a[i, col] = -1.0
                self.slack_col_of_row[i] = col
                col += 1

        # Normalize to b >= 0, remembering the sign flips for dual recovery.
        self.row_sign = np.ones(m)
        for i in range(m):
            if b_vec[i] < 0:
                a[i, :] *= -1.0
                b_vec[i] *= -1.0
                self.row_sign[i] = -1.0

        c = np.zeros(n_struct)
        c[:n_orig] = arrays.c
        for k, orig_idx in enumerate(extra_cols):
            c[n_orig + k] = -arrays.c[orig_idx]

        self.a = a
        self.b = b_vec
        self.c = c
        self.m = m
        self.n_struct = n_struct
        self.senses = senses
        self.objective_constant = arrays.objective_constant

    @property
    def structure_key(self) -> str:
        """Fingerprint of the column/row *structure* (not the numbers).

        Two standard forms share a key exactly when they have the same
        variables (in order), the same constraint names and senses (in
        order) and the same free-variable split -- i.e. when a basis of
        one indexes meaningful columns of the other.
        """
        blob = "\x1f".join(
            [
                "v1",
                str(self.m),
                str(self.n_struct),
                "\x1e".join(self.var_names),
                "\x1e".join(self.row_names),
                "".join(
                    "E" if s == "==" else ("L" if s == "<=" else "G")
                    for s in self.senses
                ),
                ",".join(str(c) for c in self.neg_col if c >= 0),
            ]
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def recover_values(self, x: np.ndarray) -> dict[str, float]:
        values: dict[str, float] = {}
        for idx, name in enumerate(self.var_names):
            v = x[self.pos_col[idx]]
            if self.neg_col[idx] >= 0:
                v -= x[self.neg_col[idx]]
            values[name] = float(v)
        return values
