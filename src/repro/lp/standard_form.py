"""Conversion of a :class:`LinearProgram` to simplex standard form.

All three simplex backends (the dense tableau solver in
:mod:`repro.lp.simplex`, the revised solver in
:mod:`repro.lp.revised_simplex` and the sparse revised solver in
:mod:`repro.lp.sparse_simplex`) operate on the same canonical shape::

    min c'x   s.t.   Ax = b,  b >= 0,  x >= 0

built here: free variables are split into positive/negative parts, slack
columns turn inequalities into equalities, and rows are sign-normalized so
every right-hand side is nonnegative (the flips are remembered for dual
recovery).

The matrix is assembled *sparsely* -- straight from the program's CSR
storage into a CSC layout (:attr:`StandardForm.a_csc`), O(nnz) work and
memory.  The dense ``(m, n_struct)`` array the legacy solvers index is a
lazy cached property (:attr:`StandardForm.a`); materializing it above
2000 rows is counted and reported by :mod:`repro.lp.sparse` so accidental
densification of a large program is visible.

Two programs with the same variables, constraint names and senses -- for
example successive points of a parametric delay sweep, which differ only
in constraint constants -- produce standard forms with identical *column
structure*.  :attr:`StandardForm.structure_key` fingerprints that
structure, which is what lets an optimal basis from one solve be offered
as a warm start for the next (see :mod:`repro.lp.basis`).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.lp.model import LinearProgram, Sense
from repro.lp.sparse import CSCMatrix, csc_from_triplets


class StandardForm:
    """min c'x  s.t.  Ax = b (b >= 0), x >= 0, built from a LinearProgram."""

    def __init__(self, program: LinearProgram):
        csr = program.to_csr()
        self.program = program
        n_orig = csr.n_variables

        # Split free variables into positive and negative parts.
        self.var_names = list(csr.variables)
        self.pos_col = list(range(n_orig))
        self.neg_col = [-1] * n_orig
        extra_cols = []
        for idx, free in enumerate(csr.free):
            if free:
                self.neg_col[idx] = n_orig + len(extra_cols)
                extra_cols.append(idx)

        # Standard-form row order groups by sense (<=, then >=, then ==),
        # insertion order within each group -- the historical layout every
        # cached Basis was built against.
        m = csr.n_constraints
        perm = np.array(
            [i for i, s in enumerate(csr.senses) if s is Sense.LE]
            + [i for i, s in enumerate(csr.senses) if s is Sense.GE]
            + [i for i, s in enumerate(csr.senses) if s is Sense.EQ],
            dtype=np.int64,
        )
        inv_perm = np.empty(m, dtype=np.int64)
        inv_perm[perm] = np.arange(m, dtype=np.int64)
        senses = [csr.senses[i].value for i in perm]
        self.row_names = [csr.names[i] for i in perm]
        b_vec = csr.rhs[perm].astype(float, copy=True)

        # Normalize to b >= 0, remembering the sign flips for dual recovery.
        self.row_sign = np.where(b_vec < 0, -1.0, 1.0)
        b_vec = b_vec * self.row_sign

        # Structural columns: originals, negative parts of free vars, slacks.
        n_slack = sum(1 for s in senses if s != "==")
        n_struct = n_orig + len(extra_cols) + n_slack

        self.slack_col_of_row = [-1] * m
        col = n_orig + len(extra_cols)
        slack_rows = []
        slack_cols = []
        slack_vals = []
        for i, sense in enumerate(senses):
            if sense == "==":
                continue
            sign = 1.0 if sense == "<=" else -1.0
            self.slack_col_of_row[i] = col
            slack_rows.append(i)
            slack_cols.append(col)
            slack_vals.append(sign * self.row_sign[i])
            col += 1

        # Original-variable entries, permuted and sign-normalized.
        entry_old_rows = np.repeat(
            np.arange(m, dtype=np.int64), np.diff(csr.a.indptr)
        )
        entry_rows = inv_perm[entry_old_rows]
        entry_cols = csr.a.indices
        entry_vals = csr.a.data * self.row_sign[entry_rows]

        # Negated copies of the free-variable columns.
        neg_map = np.full(n_orig, -1, dtype=np.int64)
        for k, orig_idx in enumerate(extra_cols):
            neg_map[orig_idx] = n_orig + k
        if extra_cols:
            neg_mask = neg_map[entry_cols] >= 0
            neg_rows = entry_rows[neg_mask]
            neg_cols = neg_map[entry_cols[neg_mask]]
            neg_vals = -entry_vals[neg_mask]
        else:
            neg_rows = np.zeros(0, dtype=np.int64)
            neg_cols = np.zeros(0, dtype=np.int64)
            neg_vals = np.zeros(0)

        self.a_csc: CSCMatrix = csc_from_triplets(
            (m, n_struct),
            np.concatenate(
                [entry_rows, neg_rows,
                 np.asarray(slack_rows, dtype=np.int64)]
            ),
            np.concatenate(
                [entry_cols, neg_cols,
                 np.asarray(slack_cols, dtype=np.int64)]
            ),
            np.concatenate([entry_vals, neg_vals, np.asarray(slack_vals)]),
        )

        c = np.zeros(n_struct)
        c[:n_orig] = csr.c
        for k, orig_idx in enumerate(extra_cols):
            c[n_orig + k] = -csr.c[orig_idx]

        self._a_dense: np.ndarray | None = None
        self.b = b_vec
        self.c = c
        self.m = m
        self.n_struct = n_struct
        self.senses = senses
        self.objective_constant = csr.objective_constant

    @property
    def a(self) -> np.ndarray:
        """The dense ``(m, n_struct)`` matrix, materialized on first use.

        The tableau and dense-revised solvers index this freely; the
        sparse solver never touches it.  Above 2000 rows the
        materialization is counted in
        :data:`repro.lp.sparse.DENSE_STATS` and surfaced as an event +
        metric (the dense-fallback footgun made visible).
        """
        if self._a_dense is None:
            self._a_dense = self.a_csc.to_dense(site="standard_form.a")
        return self._a_dense

    @property
    def structure_key(self) -> str:
        """Fingerprint of the column/row *structure* (not the numbers).

        Two standard forms share a key exactly when they have the same
        variables (in order), the same constraint names and senses (in
        order) and the same free-variable split -- i.e. when a basis of
        one indexes meaningful columns of the other.
        """
        blob = "\x1f".join(
            [
                "v1",
                str(self.m),
                str(self.n_struct),
                "\x1e".join(self.var_names),
                "\x1e".join(self.row_names),
                "".join(
                    "E" if s == "==" else ("L" if s == "<=" else "G")
                    for s in self.senses
                ),
                ",".join(str(c) for c in self.neg_col if c >= 0),
            ]
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def recover_values(self, x: np.ndarray) -> dict[str, float]:
        values: dict[str, float] = {}
        for idx, name in enumerate(self.var_names):
            v = x[self.pos_col[idx]]
            if self.neg_col[idx] >= 0:
                v -= x[self.neg_col[idx]]
            values[name] = float(v)
        return values
