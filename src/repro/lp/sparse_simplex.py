"""A sparse revised primal simplex: O(nnz) memory, LU + eta-file basis.

Pivot-for-pivot this is :mod:`repro.lp.revised_simplex` -- same two-phase
structure, same Dantzig/Bland pricing, same ratio test and tie-breaks,
same warm-start acceptance guard -- but nothing dense is ever formed:

* the constraint matrix is read straight from
  :attr:`~repro.lp.standard_form.StandardForm.a_csc` (CSC, O(nnz));
* the basis inverse is a sparse LU of ``B_0`` plus a product-form eta
  file (:class:`~repro.lp.sparse_lu.BasisFactorization`), periodically
  refactorized;
* pricing is one :meth:`~repro.lp.sparse.CSCMatrix.rmatvec` pass over
  the CSC columns;
* phase-1 artificials are *implicit* unit columns -- they have no
  storage at all.

Peak memory is O(nnz + fill), which for the paper's exclusively
topological matrices (a few +/-1 entries per row) stays linear in latch
count; the dense solvers' O(m^2) basis inverse is what capped
``bench_scaling`` at ~1k latches.  Warm starts accept the same
:class:`~repro.lp.basis.Basis` objects the dense revised solver emits
(both index the same :class:`StandardForm` columns), so sweep chaining
works across backends.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.errors import SolverError
from repro.lp.basis import Basis
from repro.lp.model import LinearProgram
from repro.lp.result import LPResult, LPStatus, attach_slacks
from repro.lp.sparse import CSCMatrix
from repro.lp.sparse_lu import BasisFactorization
from repro.lp.standard_form import StandardForm
from repro.obs import trace

_F64 = npt.NDArray[np.float64]
_I64 = npt.NDArray[np.int64]


@dataclass(frozen=True)
class SparseSimplexOptions:
    """Tuning knobs for :func:`solve_sparse_simplex`."""

    tol: float = 1e-9
    max_iterations: int = 100_000
    #: switch from Dantzig's rule to Bland's rule after this many consecutive
    #: degenerate pivots (prevents cycling while keeping typical speed).
    bland_after: int = 50
    #: refactorize ``B_0`` after this many eta updates; bounds both the
    #: eta-file length (FTRAN/BTRAN cost) and the accumulated roundoff.
    refactor_every: int = 64
    #: LU engine: "auto" (scipy when importable, else pure python),
    #: "scipy", or "python".
    factorization: str = "auto"


class _SparseState:
    """Basis, factorization and basic solution, kept in sync across pivots.

    ``basis`` entries ``>= n_struct`` denote phase-1 artificials: the
    implicit unit column ``e_{art_row[col - n_struct]}``.
    """

    def __init__(
        self,
        a_csc: CSCMatrix,
        b: _F64,
        basis: _I64,
        art_row: _I64,
        options: SparseSimplexOptions,
    ) -> None:
        self.a = a_csc
        self.b = b
        self.basis = basis
        self.art_row = art_row
        self.n_struct = a_csc.shape[1]
        self.options = options
        self.refactorizations = 0  # periodic only; the initial one is free
        self.factors = BasisFactorization(
            a_csc,
            factorization=options.factorization,
            refactor_every=options.refactor_every,
        )
        self._scratch = np.zeros(a_csc.shape[0])
        self._factorize()

    def _basis_cols(self) -> _I64:
        """Basis columns with artificials encoded as unit-column sentinels."""
        cols = self.basis.copy()
        art = cols >= self.n_struct
        if art.any():
            cols[art] = -(self.art_row[cols[art] - self.n_struct] + 1)
        return cols

    def _factorize(self) -> None:
        try:
            self.factors.refactor(self._basis_cols())
        except (np.linalg.LinAlgError, RuntimeError):
            raise SolverError("singular basis matrix") from None
        self.x_b = self.factors.ftran(self.b)

    def column(self, col: int) -> _F64:
        """Column ``col`` of the full (structural + artificial) matrix."""
        if col < self.n_struct:
            return self.a.column_dense(col, out=self._scratch)
        self._scratch[:] = 0.0
        self._scratch[self.art_row[col - self.n_struct]] = 1.0
        return self._scratch

    def reduced_costs(self, costs: _F64, y: _F64) -> _F64:
        """``costs - y'A`` over structural then artificial columns."""
        n_art = len(self.art_row)
        reduced = np.empty(self.n_struct + n_art)
        reduced[: self.n_struct] = costs[: self.n_struct] - self.a.rmatvec(y)
        if n_art:
            reduced[self.n_struct :] = (
                costs[self.n_struct :] - y[self.art_row]
            )
        return reduced

    def btran_unit(self, i: int) -> _F64:
        """Row ``i`` of ``B^{-1}``, i.e. ``B^{-T} e_i``."""
        e = np.zeros(self.a.shape[0])
        e[i] = 1.0
        return self.factors.btran(e)

    def pivot(self, row: int, col: int, direction: _F64) -> None:
        """Bring ``col`` into the basis at ``row``; ``direction = B^-1 a_col``."""
        ur = direction[row]
        theta = max(0.0, self.x_b[row]) / ur
        self.x_b -= theta * direction
        self.x_b[row] = theta
        self.factors.update(row, direction)
        self.basis[row] = col
        if self.factors.should_refactor():
            self.refactorizations += 1
            if trace.is_enabled():
                trace.add_event("refactorize", count=self.refactorizations)
            self._factorize()


def _optimize(
    state: _SparseState,
    costs: _F64,
    allowed: npt.NDArray[np.bool_],
    options: SparseSimplexOptions,
) -> tuple[str, int]:
    """Optimize min costs'x from the current basis; returns (status, pivots)."""
    m = state.a.shape[0]
    tol = options.tol
    iterations = 0
    degenerate_run = 0
    traced = trace.is_enabled()  # hoisted so untraced pivots pay one bool test

    while True:
        if iterations >= options.max_iterations:
            raise SolverError(
                f"sparse simplex exceeded {options.max_iterations} iterations"
            )
        y = state.factors.btran(costs[state.basis])
        reduced = state.reduced_costs(costs, y)
        reduced[~allowed] = np.inf  # never enter disallowed columns
        reduced[state.basis] = np.inf  # basic columns have zero reduced cost

        candidates = np.where(reduced < -tol)[0]
        if candidates.size == 0:
            return "optimal", iterations
        if degenerate_run >= options.bland_after:
            col = int(candidates[0])
        else:
            col = int(candidates[np.argmin(reduced[candidates])])

        direction = state.factors.ftran(state.column(col))
        positive = direction > tol
        if not positive.any():
            return "unbounded", iterations
        ratios = np.full(m, np.inf)
        feasible_xb = np.maximum(state.x_b, 0.0)
        ratios[positive] = feasible_xb[positive] / direction[positive]
        best = ratios.min()
        # Tie-break on the smallest basis index (Bland-compatible).
        tied = np.where(ratios <= best + tol)[0]
        row = int(tied[np.argmin(state.basis[tied])])

        degenerate_run = degenerate_run + 1 if best <= tol else 0
        if traced:
            trace.add_event(
                "pivot",
                enter=col,
                leave=int(state.basis[row]),
                row=row,
                degenerate=bool(best <= tol),
            )
        state.pivot(row, col, direction)
        iterations += 1


def _try_warm_start(
    sf: StandardForm, warm_start: Basis | None, options: SparseSimplexOptions
) -> _SparseState | None:
    """A ready phase-2 state from a warm basis, or None when unusable.

    Same acceptance guard as the dense revised solver: structure match,
    no duplicate columns, nonsingular against the new coefficients, and
    primal feasible.  Anything else falls back to an ordinary phase 1.
    """
    if warm_start is None or not warm_start.matches(sf):
        return None
    columns = np.asarray(warm_start.columns, dtype=np.int64)
    if len(set(columns.tolist())) != sf.m:
        return None
    try:
        state = _SparseState(
            sf.a_csc,
            sf.b,
            columns.copy(),
            np.zeros(0, dtype=np.int64),
            options,
        )
    except SolverError:
        return None
    if state.x_b.min() < -1e-7:
        return None  # basis infeasible for the perturbed program
    state.x_b = np.maximum(state.x_b, 0.0)
    return state


def solve_sparse_simplex(
    program: LinearProgram,
    options: SparseSimplexOptions | None = None,
    warm_start: Basis | None = None,
) -> LPResult:
    """Solve a :class:`LinearProgram` with the sparse revised simplex.

    Semantically identical to
    :func:`~repro.lp.revised_simplex.solve_revised_simplex` (same pivot
    rules, warm-start contract and result shape) but with O(nnz) peak
    memory.  The result's ``extra`` dict carries the same keys
    (``"basis"``, ``"warm_start"``, ``"refactorizations"``,
    ``"phase1_pivots"``) plus ``"factorization"`` -- the LU engine used
    (``"scipy"`` or ``"python"``).
    """
    start = time.perf_counter()
    result = _solve_sparse(program, options, warm_start)
    result.solve_seconds = time.perf_counter() - start
    return result


def _solve_sparse(
    program: LinearProgram,
    options: SparseSimplexOptions | None,
    warm_start: Basis | None,
) -> LPResult:
    options = options or SparseSimplexOptions()
    sf = StandardForm(program)
    m, n = sf.m, sf.n_struct
    tol = options.tol
    extra: dict[str, object] = {
        "warm_start": "cold" if warm_start is None else "miss",
        "refactorizations": 0,
        "phase1_pivots": 0,
    }

    if m == 0:
        if np.any(sf.c < -tol):
            return LPResult(
                status=LPStatus.UNBOUNDED, backend="sparse", extra=extra
            )
        result = LPResult(
            status=LPStatus.OPTIMAL,
            objective=sf.objective_constant,
            values=sf.recover_values(np.zeros(n)),
            duals={},
            backend="sparse",
            extra=extra,
        )
        return attach_slacks(result, program)

    iterations = 0
    state = _try_warm_start(sf, warm_start, options)
    if state is not None:
        extra["warm_start"] = "hit"
    if trace.is_enabled():
        trace.add_event("warm_start", outcome=extra["warm_start"])

    if state is None:
        # ------------------------------------------------------------------
        # Phase 1: find a basic feasible solution using artificial variables.
        # Rows with a +1 slack can use it directly; others get an implicit
        # artificial unit column.  The slack coefficient is
        # sign(sense) * row_sign, so "+1 slack" is a two-flag predicate --
        # no matrix access needed.
        # ------------------------------------------------------------------
        basis = np.full(m, -1, dtype=np.int64)
        artificial_rows = []
        for i in range(m):
            sc = sf.slack_col_of_row[i]
            if sc >= 0 and (sf.senses[i] == "<=") == (sf.row_sign[i] > 0):
                basis[i] = sc
            else:
                artificial_rows.append(i)
        n_art = len(artificial_rows)
        art_row = np.asarray(artificial_rows, dtype=np.int64)
        for k, i in enumerate(artificial_rows):
            basis[i] = n + k
        state = _SparseState(sf.a_csc, sf.b, basis, art_row, options)
        if n_art:
            phase1_costs = np.zeros(n + n_art)
            phase1_costs[n:] = 1.0
            allowed = np.ones(n + n_art, dtype=bool)
            status, it1 = _optimize(state, phase1_costs, allowed, options)
            iterations += it1
            extra["phase1_pivots"] = it1
            if trace.is_enabled():
                trace.add_event("phase1", pivots=it1)
            if status != "optimal":  # pragma: no cover - never unbounded
                raise SolverError(f"phase 1 ended with status {status}")
            infeasibility = float(
                np.maximum(state.x_b, 0.0)[state.basis >= n].sum()
            )
            if infeasibility > 1e-7:
                extra["refactorizations"] = state.refactorizations
                extra["factorization"] = state.factors.engine_name
                return LPResult(
                    status=LPStatus.INFEASIBLE,
                    iterations=iterations,
                    backend="sparse",
                    extra=extra,
                )
            # Drive any remaining zero-level artificials out of the basis.
            for i in range(m):
                if state.basis[i] >= n:
                    # e_i' B^-1 A over structural columns, assembled
                    # sparsely: (B^-T e_i)' A is one btran + one rmatvec.
                    row_vec = state.a.rmatvec(state.btran_unit(i))
                    pivotable = np.where(np.abs(row_vec) > tol)[0]
                    if pivotable.size:
                        col = int(pivotable[0])
                        direction = state.factors.ftran(state.column(col))
                        state.pivot(i, col, direction)
                    # else: redundant row; the artificial stays basic at 0.

    # ------------------------------------------------------------------
    # Phase 2: optimize the true objective with artificials locked out.
    # ------------------------------------------------------------------
    n_total = n + len(state.art_row)
    costs = np.zeros(n_total)
    costs[:n] = sf.c
    allowed = np.zeros(n_total, dtype=bool)
    allowed[:n] = True
    status, it2 = _optimize(state, costs, allowed, options)
    iterations += it2
    extra["refactorizations"] = state.refactorizations
    extra["factorization"] = state.factors.engine_name
    if status == "unbounded":
        return LPResult(
            status=LPStatus.UNBOUNDED,
            iterations=iterations,
            backend="sparse",
            extra=extra,
        )

    # One fresh factorization before extracting the solution: the eta
    # file is exact in exact arithmetic but accumulates roundoff, and
    # the 1e-9 cross-backend agreement bar at 25k rows is strict.
    if state.factors.n_etas:
        state._factorize()

    x = np.zeros(n_total)
    x[state.basis] = np.maximum(state.x_b, 0.0)
    objective = float(sf.c @ x[:n]) + sf.objective_constant
    values = sf.recover_values(x[:n])

    # Duals: y = c_B B^-1 (one btran), mapped back through the sign flips
    # of the b >= 0 normalization.
    y = state.factors.btran(costs[state.basis])
    duals = {
        name: float(y[i] * sf.row_sign[i])
        for i, name in enumerate(sf.row_names)
    }

    if bool(np.all(state.basis < n)):
        extra["basis"] = Basis(
            columns=tuple(int(c) for c in state.basis),
            structure=sf.structure_key,
        )

    result = LPResult(
        status=LPStatus.OPTIMAL,
        objective=objective,
        values=values,
        duals=duals,
        iterations=iterations,
        backend="sparse",
        extra=extra,
    )
    return attach_slacks(result, program)
