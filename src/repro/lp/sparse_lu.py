"""Sparse basis factorization for the revised simplex.

The sparse solver never forms or stores a dense ``B^{-1}``.  Instead the
basis is held as

    B_k = B_0 . E_1 . E_2 ... E_k

where ``B_0`` is LU-factorized and each ``E_t`` is a product-form eta
matrix (identity with one column replaced by ``d = B^{-1} a_q`` from the
pivot that produced it).  FTRAN/BTRAN then cost one sparse triangular
solve plus one cheap sparse pass per eta, and a periodic refactorization
(every ``refactor_every`` pivots) bounds both the eta-file length and the
accumulated roundoff.

Two LU engines implement the same 3-method protocol
(:meth:`solve` / :meth:`solve_transpose` / ``nnz_factors``):

* :class:`ScipyLU` -- ``scipy.sparse.linalg.splu``.  Simplex bases of the
  SMO difference-constraint LPs are near-triangular, so SuperLU factors a
  25 000-row basis in ~2 ms with almost no fill-in.  Preferred whenever
  the ``scipy`` extra is importable.
* :class:`MarkowitzLU` -- pure-python right-looking LU with Markowitz
  ``(r_i - 1)(c_j - 1)`` pivot selection and threshold partial pivoting.
  Always available; keeps ``backend="sparse"`` working on a numpy-only
  install (slower, but the same answers).

Engine choice is ``factorization="auto" | "scipy" | "python"`` on
:func:`make_factorization`; ``auto`` takes scipy when present.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np
import numpy.typing as npt

from repro.lp.sparse import CSCMatrix

_F64 = npt.NDArray[np.float64]
_I64 = npt.NDArray[np.int64]

try:  # pragma: no cover - exercised indirectly via engine selection
    from scipy.sparse import csc_matrix as _scipy_csc
    from scipy.sparse.linalg import splu as _scipy_splu

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    _scipy_csc = None
    _scipy_splu = None
    HAVE_SCIPY = False

#: Entries below this magnitude are dropped when sparsifying eta columns
#: and elimination updates.  Well below the solver's 1e-9 optimality
#: tolerance, far above float64 noise at the paper's delay scales.
DROP_TOL = 1e-13


class LUEngine(Protocol):
    """What :class:`BasisFactorization` needs from an LU of ``B_0``."""

    name: str

    def solve(self, b: _F64) -> _F64:
        """Return ``B_0^{-1} b``."""

    def solve_transpose(self, b: _F64) -> _F64:
        """Return ``B_0^{-T} b``."""

    def nnz_factors(self) -> int:
        """Stored nonzeros in L + U (fill-in diagnostic)."""


class ScipyLU:
    """``scipy.sparse.linalg.splu`` behind the :class:`LUEngine` protocol."""

    name = "scipy"

    def __init__(
        self, m: int, indptr: _I64, rows: _I64, vals: _F64
    ) -> None:
        mat = _scipy_csc((vals, rows, indptr), shape=(m, m))
        self._lu = _scipy_splu(mat.tocsc())

    def solve(self, b: _F64) -> _F64:
        out: _F64 = self._lu.solve(b)
        return out

    def solve_transpose(self, b: _F64) -> _F64:
        out: _F64 = self._lu.solve(b, trans="T")
        return out

    def nnz_factors(self) -> int:
        return int(self._lu.L.nnz + self._lu.U.nnz)


class MarkowitzLU:
    """Pure-python sparse LU with Markowitz ordering.

    Right-looking elimination over a dict-of-dicts matrix.  At each step
    the pivot column is the sparsest active column (lazy min-heap), and
    within it the pivot row minimizes the row count subject to threshold
    pivoting ``|a_ij| >= threshold * max_col |a_j|`` -- the classic
    merit/stability compromise.  The factorization is stored as the
    elimination operation sequence (the implicit L) plus the pivot rows
    (the permuted U), which is exactly what the four substitution passes
    in :meth:`solve` / :meth:`solve_transpose` need.
    """

    name = "python"

    def __init__(
        self,
        m: int,
        indptr: _I64,
        rows: _I64,
        vals: _F64,
        threshold: float = 0.1,
    ) -> None:
        self.m = m
        # row -> {col: value} of the active (not yet eliminated) matrix.
        work: dict[int, dict[int, float]] = {i: {} for i in range(m)}
        col_rows: dict[int, set[int]] = {j: set() for j in range(m)}
        for j in range(m):
            for e in range(int(indptr[j]), int(indptr[j + 1])):
                i = int(rows[e])
                v = float(vals[e])
                if v != 0.0:
                    work[i][j] = work[i].get(j, 0.0) + v
                    col_rows[j].add(i)

        import heapq

        heap = [(len(col_rows[j]), j) for j in range(m)]
        heapq.heapify(heap)
        active_cols = set(range(m))
        active_rows = set(range(m))

        # (eliminated_row, pivot_row, factor) in application order.
        self._ops: list[tuple[int, int, float]] = []
        # Per step: (pivot_row, pivot_col, pivot_val, rest-of-U-row items).
        self._steps: list[
            tuple[int, int, float, list[tuple[int, float]]]
        ] = []

        for _ in range(m):
            # Lazily pop until a heap entry matches the live count.
            pj = -1
            while heap:
                count, j = heapq.heappop(heap)
                if j not in active_cols:
                    continue
                if count != len(col_rows[j]):
                    heapq.heappush(heap, (len(col_rows[j]), j))
                    continue
                pj = j
                break
            if pj < 0 or not col_rows[pj]:
                raise np.linalg.LinAlgError(
                    "singular basis in MarkowitzLU"
                )
            col_abs_max = max(abs(work[i][pj]) for i in col_rows[pj])
            if col_abs_max <= DROP_TOL:
                raise np.linalg.LinAlgError(
                    "singular basis in MarkowitzLU"
                )
            # Min row count subject to the stability threshold.
            pi = -1
            best_count = m + 1
            for i in col_rows[pj]:
                if abs(work[i][pj]) < threshold * col_abs_max:
                    continue
                if len(work[i]) < best_count:
                    best_count = len(work[i])
                    pi = i
            pivot_val = work[pi][pj]
            pivot_row = work[pi]

            # Eliminate pj from every other active row that carries it.
            for i in [i for i in col_rows[pj] if i != pi]:
                factor = work[i][pj] / pivot_val
                self._ops.append((i, pi, factor))
                target = work[i]
                for j, v in pivot_row.items():
                    nv = target.get(j, 0.0) - factor * v
                    if abs(nv) <= DROP_TOL:
                        if j in target:
                            del target[j]
                            col_rows[j].discard(i)
                    else:
                        if j not in target:
                            col_rows[j].add(i)
                        target[j] = nv

            rest = [
                (j, v) for j, v in pivot_row.items() if j != pj
            ]
            self._steps.append((pi, pj, pivot_val, rest))
            active_cols.discard(pj)
            active_rows.discard(pi)
            for j in pivot_row:
                col_rows[j].discard(pi)
            del work[pi]

    def solve(self, b: _F64) -> _F64:
        y = np.array(b, dtype=np.float64)
        for i, pi, factor in self._ops:
            y[i] -= factor * y[pi]
        x = np.zeros(self.m)
        for pi, pj, pv, rest in reversed(self._steps):
            acc = y[pi]
            for j, v in rest:
                acc -= v * x[j]
            x[pj] = acc / pv
        return x

    def solve_transpose(self, b: _F64) -> _F64:
        # B^T s = c with B = L U  =>  U^T w = c then L^T s = w.
        c = np.array(b, dtype=np.float64)
        s = np.zeros(self.m)
        for pi, pj, pv, rest in self._steps:
            w = c[pj] / pv
            s[pi] = w
            for j, v in rest:
                c[j] -= v * w
        for i, pi, factor in reversed(self._ops):
            s[pi] -= factor * s[i]
        return s

    def nnz_factors(self) -> int:
        return len(self._ops) + sum(
            1 + len(rest) for *_rest3, rest in self._steps
        )


def make_factorization(
    factorization: str = "auto",
) -> Callable[[int, _I64, _I64, _F64], LUEngine]:
    """Resolve a ``factorization`` option to an LU-engine constructor."""
    if factorization == "auto":
        factorization = "scipy" if HAVE_SCIPY else "python"
    if factorization == "scipy":
        if not HAVE_SCIPY:
            raise RuntimeError(
                "factorization='scipy' requires the scipy extra"
            )
        return ScipyLU
    if factorization == "python":
        return MarkowitzLU
    raise ValueError(
        f"unknown factorization {factorization!r}; "
        "expected 'auto', 'scipy' or 'python'"
    )


class BasisFactorization:
    """``B^{-1}`` as LU(B_0) plus a product-form eta file.

    ``ftran``/``btran`` are the only read operations the simplex needs;
    ``update`` appends one eta after a pivot, and :meth:`should_refactor`
    tells the solver when to rebuild ``B_0`` from the current basis
    columns (which :meth:`refactor` does, resetting the eta file).
    """

    def __init__(
        self,
        a_csc: CSCMatrix,
        factorization: str = "auto",
        refactor_every: int = 64,
    ) -> None:
        self._a = a_csc
        self._make_engine = make_factorization(factorization)
        self.refactor_every = refactor_every
        self.engine: LUEngine | None = None
        self.engine_name = (
            "scipy"
            if factorization == "auto" and HAVE_SCIPY
            else ("python" if factorization == "auto" else factorization)
        )
        self.refactorizations = 0
        # Eta file: (pivot_position r, nonzero rows of d, values, d_r).
        self._etas: list[tuple[int, _I64, _F64, float]] = []

    # -- factorization ------------------------------------------------

    def refactor(self, basis_cols: _I64) -> None:
        """(Re)factorize ``B_0 = A[:, basis_cols]`` and clear the etas.

        ``basis_cols`` may contain ``-(i+1)`` sentinels meaning "unit
        column e_i" (phase-1 artificials), which stay sparse too.
        """
        m = self._a.shape[0]
        indptr, rows, vals = _basis_triplets(self._a, basis_cols)
        self.engine = self._make_engine(m, indptr, rows, vals)
        self._etas = []
        self.refactorizations += 1

    def should_refactor(self) -> bool:
        return len(self._etas) >= self.refactor_every

    @property
    def n_etas(self) -> int:
        return len(self._etas)

    # -- solves -------------------------------------------------------

    def ftran(self, v: _F64) -> _F64:
        """``B^{-1} v``: LU solve, then the etas in application order."""
        assert self.engine is not None
        x = self.engine.solve(v)
        for r, idx, dvals, dr in self._etas:
            xr = x[r] / dr
            x[idx] -= dvals * xr
            x[r] = xr
        return x

    def btran(self, c: _F64) -> _F64:
        """``B^{-T} c``: the eta transposes in reverse, then LU^T solve."""
        u = np.array(c, dtype=np.float64)
        for r, idx, dvals, dr in reversed(self._etas):
            # Row r of E^T is d^T: u_r = (c_r - sum_{i!=r} d_i c_i) / d_r.
            u[r] = (u[r] - float(dvals @ u[idx])) / dr
        assert self.engine is not None
        return self.engine.solve_transpose(u)

    # -- updates ------------------------------------------------------

    def update(self, r: int, d: _F64) -> None:
        """Record the pivot replacing basis position ``r``; ``d=B^{-1}a_q``."""
        dr = float(d[r])
        mask = np.abs(d) > DROP_TOL
        mask[r] = False
        idx = np.nonzero(mask)[0].astype(np.int64)
        self._etas.append((r, idx, d[idx].copy(), dr))

    def nnz_factors(self) -> int:
        assert self.engine is not None
        return self.engine.nnz_factors() + sum(
            1 + len(idx) for _, idx, _vals, _dr in self._etas
        )


def _basis_triplets(
    a: CSCMatrix, basis_cols: _I64
) -> tuple[_I64, _I64, _F64]:
    """CSC triplets of ``A[:, basis_cols]`` with unit-column sentinels.

    Entries of ``basis_cols`` that are ``>= 0`` select structural/slack
    columns of ``a``; an entry ``-(i+1)`` stands for the unit column
    ``e_i`` (phase-1 artificial) without it ever existing in ``a``.
    """
    cols = np.asarray(basis_cols, dtype=np.int64)
    real = cols >= 0
    if real.all():
        return a.gather_columns(cols)
    indptr = np.zeros(len(cols) + 1, dtype=np.int64)
    lengths = np.where(
        real, a.indptr[np.where(real, cols, 0) + 1]
        - a.indptr[np.where(real, cols, 0)], 1
    )
    np.cumsum(lengths, out=indptr[1:])
    rows = np.empty(int(indptr[-1]), dtype=np.int64)
    vals = np.empty(int(indptr[-1]), dtype=np.float64)
    for k, c in enumerate(cols):
        lo = int(indptr[k])
        if c >= 0:
            r, v = a.column(int(c))
            rows[lo : lo + len(r)] = r
            vals[lo : lo + len(r)] = v
        else:
            rows[lo] = -int(c) - 1
            vals[lo] = 1.0
    return indptr, rows, vals
