"""Sparse matrix substrate for the LP stack: CSR/CSC containers + kernels.

The SMO constraint matrix is *exclusively topological* (every coefficient
is 0 or +/-1, Section VI of the paper) and linear in latch count
(``<= 4k + (F+1) l`` rows), so it is catastrophically wasteful to ever
materialize it densely: at 10^4 latches the dense ``(m, n)`` array is
gigabytes while the nonzeros fit in a few megabytes.  This module holds
the two compressed layouts the LP pipeline is built on and the handful
of vectorized kernels the sparse revised simplex needs:

* :class:`CSRMatrix` -- row-compressed, the natural *build* order
  (constraints are appended row by row);
* :class:`CSCMatrix` -- column-compressed, the natural *solve* order
  (simplex pricing and basis extraction walk columns);
* :func:`csr_to_csc` -- O(nnz) counting-sort conversion;
* :meth:`CSCMatrix.rmatvec` -- ``A^T y`` in one ``reduceat`` pass, the
  pricing kernel;
* :meth:`CSCMatrix.gather_columns` -- vectorized multi-column extraction,
  the basis-matrix assembly kernel.

Dense views remain available (the legacy tableau solver needs one) but
are *observable*: every forced materialization above
:data:`DENSE_WARN_ROWS` rows increments the process-wide
:data:`DENSE_STATS` counter, bumps the ``lp_dense_materializations_total``
metric and emits a one-time ``lp.dense_materialized`` event, so an
accidental densification on a supposedly sparse path is visible in
``repro top`` and assertable in benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import numpy.typing as npt

from repro.obs import events, metrics

_F64 = npt.NDArray[np.float64]
_I64 = npt.NDArray[np.int64]

#: Dense views of matrices with more rows than this are considered
#: accidental densifications and are counted / reported (see
#: :func:`note_dense_materialization`).
DENSE_WARN_ROWS = 2000


@dataclass
class DenseMaterializationStats:
    """Process-wide tally of large dense constraint-matrix materializations.

    ``count``/``cells`` only track materializations above
    :data:`DENSE_WARN_ROWS` rows -- paper-sized programs densify freely.
    The counter is deliberately always on (one integer add); benchmarks
    assert it stays flat across their sparse-backend solves.
    """

    count: int = 0
    cells: int = 0
    _event_emitted: bool = field(default=False, repr=False)

    def note(self, site: str, rows: int, cols: int) -> None:
        if rows <= DENSE_WARN_ROWS:
            return
        self.count += 1
        self.cells += rows * cols
        if metrics.is_enabled():
            metrics.inc("lp_dense_materializations_total", site=site)
        if not self._event_emitted:
            # One-time per process: enough to flag the footgun without
            # spamming the run log on every sweep point.
            self._event_emitted = True
            events.emit(
                "lp.dense_materialized",
                level="warning",
                site=site,
                rows=rows,
                cols=cols,
            )

    def reset(self) -> None:
        self.count = 0
        self.cells = 0


#: The process-wide instance (import and read ``DENSE_STATS.count``).
DENSE_STATS = DenseMaterializationStats()


def note_dense_materialization(site: str, rows: int, cols: int) -> None:
    """Record that ``site`` materialized a dense ``(rows, cols)`` view."""
    DENSE_STATS.note(site, rows, cols)


@dataclass(frozen=True)
class CSRMatrix:
    """A read-only compressed-sparse-row matrix (``float64`` data)."""

    shape: tuple[int, int]
    indptr: _I64  #: (m+1,) row start offsets into indices/data
    indices: _I64  #: (nnz,) column index per stored entry
    data: _F64  #: (nnz,) value per stored entry

    @property
    def nnz(self) -> int:
        return int(self.indices.shape[0])

    def row(self, i: int) -> tuple[_I64, _F64]:
        """The (column indices, values) slice of row ``i``."""
        lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
        return self.indices[lo:hi], self.data[lo:hi]

    def matvec(self, x: _F64) -> _F64:
        """``A @ x`` in one gather + ``reduceat`` pass."""
        return _segment_sums(
            self.data * x[self.indices], self.indptr, self.shape[0]
        )

    def tocsc(self) -> "CSCMatrix":
        return csr_to_csc(self)

    def to_dense(self, site: str = "csr") -> _F64:
        """Materialize densely (observable above :data:`DENSE_WARN_ROWS`)."""
        m, n = self.shape
        note_dense_materialization(site, m, n)
        out = np.zeros((m, n))
        rows = np.repeat(
            np.arange(m, dtype=np.int64), np.diff(self.indptr)
        )
        out[rows, self.indices] = self.data
        return out


@dataclass(frozen=True)
class CSCMatrix:
    """A read-only compressed-sparse-column matrix (``float64`` data)."""

    shape: tuple[int, int]
    indptr: _I64  #: (n+1,) column start offsets into indices/data
    indices: _I64  #: (nnz,) row index per stored entry
    data: _F64  #: (nnz,) value per stored entry

    @property
    def nnz(self) -> int:
        return int(self.indices.shape[0])

    def column(self, j: int) -> tuple[_I64, _F64]:
        """The (row indices, values) slice of column ``j``."""
        lo, hi = int(self.indptr[j]), int(self.indptr[j + 1])
        return self.indices[lo:hi], self.data[lo:hi]

    def column_dense(self, j: int, out: _F64 | None = None) -> _F64:
        """Column ``j`` scattered into a dense (m,) vector."""
        if out is None:
            out = np.zeros(self.shape[0])
        else:
            out[:] = 0.0
        rows, vals = self.column(j)
        out[rows] = vals
        return out

    def rmatvec(self, y: _F64) -> _F64:
        """``A^T y`` (one value per column) -- the simplex pricing kernel."""
        return _segment_sums(
            self.data * y[self.indices], self.indptr, self.shape[1]
        )

    def matvec(self, x: _F64) -> _F64:
        """``A @ x`` via scatter-add over the stored entries."""
        out = np.zeros(self.shape[0])
        np.add.at(out, self.indices, self.data * x[self.indices_col()])
        return out

    def indices_col(self) -> _I64:
        """The column index of every stored entry (expanded from indptr)."""
        return np.repeat(
            np.arange(self.shape[1], dtype=np.int64), np.diff(self.indptr)
        )

    def gather_columns(self, cols: _I64) -> tuple[_I64, _I64, _F64]:
        """CSC triplets of the submatrix ``A[:, cols]`` (columns in order).

        Vectorized multi-slice gather: no Python loop over columns, so
        assembling a 25 000-column basis matrix costs microseconds, not
        milliseconds.  Returns ``(indptr, row_indices, values)`` with
        ``indptr`` of length ``len(cols) + 1``.
        """
        starts = self.indptr[cols]
        lengths = self.indptr[cols + 1] - starts
        indptr = np.zeros(len(cols) + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        total = int(indptr[-1])
        # flat[e] = starts[col of e] + offset within that column's run
        flat = np.repeat(starts - indptr[:-1], lengths) + np.arange(
            total, dtype=np.int64
        )
        return indptr, self.indices[flat], self.data[flat]

    def to_dense(self, site: str = "csc") -> _F64:
        """Materialize densely (observable above :data:`DENSE_WARN_ROWS`)."""
        m, n = self.shape
        note_dense_materialization(site, m, n)
        out = np.zeros((m, n))
        out[self.indices, self.indices_col()] = self.data
        return out


def _segment_sums(values: _F64, indptr: _I64, n_segments: int) -> _F64:
    """Per-segment sums of ``values`` partitioned by ``indptr``.

    ``np.add.reduceat`` with the empty-segment fixup: reduceat returns the
    *next* element for an empty segment (and misbehaves at the very end),
    so empty segments are zeroed explicitly.
    """
    out = np.zeros(n_segments)
    if values.shape[0] == 0 or n_segments == 0:
        return out
    starts = indptr[:-1]
    lengths = np.diff(indptr)
    nonempty = lengths > 0
    if nonempty.all():
        out[:] = np.add.reduceat(values, starts)
    elif nonempty.any():
        out[nonempty] = np.add.reduceat(values, starts[nonempty])
    return out


def csr_to_csc(a: CSRMatrix) -> CSCMatrix:
    """O(nnz + n) counting-sort conversion (stable: row order per column)."""
    m, n = a.shape
    nnz = a.nnz
    counts = np.bincount(a.indices, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    rows = np.repeat(np.arange(m, dtype=np.int64), np.diff(a.indptr))
    # Stable counting sort of the entries by column index.
    order = np.argsort(a.indices, kind="stable")
    return CSCMatrix(
        shape=(m, n),
        indptr=indptr,
        indices=rows[order],
        data=a.data[order],
    )


def csc_from_triplets(
    shape: tuple[int, int], rows: _I64, cols: _I64, vals: _F64
) -> CSCMatrix:
    """Assemble a CSC matrix from unordered (row, col, value) triplets."""
    n = shape[1]
    counts = np.bincount(cols, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    order = np.argsort(cols, kind="stable")
    return CSCMatrix(
        shape=shape,
        indptr=indptr,
        indices=np.asarray(rows, dtype=np.int64)[order],
        data=np.asarray(vals, dtype=np.float64)[order],
    )
