"""The linear-program model: objective, constraints and variable bounds."""

from __future__ import annotations

import enum
from array import array
from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from repro.errors import LPError
from repro.lp.expr import LinExpr, Number, as_expr
from repro.lp.sparse import CSRMatrix


class Sense(str, enum.Enum):
    """Direction of a linear constraint ``lhs (sense) rhs``."""

    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass(frozen=True)
class Constraint:
    """A named linear constraint ``lhs (sense) rhs``."""

    name: str
    lhs: LinExpr
    sense: Sense
    rhs: float

    def normalized(self) -> "Constraint":
        """Move any constant from the lhs into the rhs."""
        if self.lhs.constant == 0.0:
            return self
        return Constraint(
            self.name,
            self.lhs - self.lhs.constant,
            self.sense,
            self.rhs - self.lhs.constant,
        )

    def violation(self, assignment: Mapping[str, float]) -> float:
        """How much the constraint is violated at a point (0 if satisfied)."""
        value = self.lhs.evaluate(assignment)
        if self.sense is Sense.LE:
            return max(0.0, value - self.rhs)
        if self.sense is Sense.GE:
            return max(0.0, self.rhs - value)
        return abs(value - self.rhs)

    def __str__(self) -> str:
        return f"{self.name}: {self.lhs} {self.sense.value} {self.rhs:g}"


class LinearProgram:
    """A minimization LP over named, nonnegative-by-default variables.

    Variables spring into existence when first referenced.  By default every
    variable is bounded below by 0 (all the paper's LP variables --
    ``Tc, s_i, T_i, D_i`` -- are nonnegative); :meth:`set_free` lifts that
    bound for the occasional unrestricted variable.
    """

    def __init__(self, name: str = "lp"):
        self.name = name
        self._objective = LinExpr()
        self._constraints: list[Constraint] = []
        self._constraint_names: set[str] = set()
        self._free: set[str] = set()
        self._declared: dict[str, None] = {}  # insertion-ordered variable set
        self._var_index: dict[str, int] = {}  # name -> declared position
        #: Constraint coefficients, accumulated as CSR triplets at add time
        #: (column = declared position of the variable, which never changes
        #: once assigned).  ``array`` keeps appends cheap; :meth:`to_csr`
        #: snapshots into numpy.  ``with_rhs`` clones share these buffers
        #: copy-on-write (``_csr_shared``) since rhs edits never touch them.
        self._csr_indptr: array[int] = array("q", [0])
        self._csr_cols: array[int] = array("q")
        self._csr_vals: array[float] = array("d")
        self._csr_shared = False
        #: Scratch space for *structural* fingerprints computed over this
        #: program (constraint names, senses and coefficients -- never rhs
        #: values).  :meth:`with_rhs` copies it into the clone, so rhs-only
        #: re-cost copies keep their cached fingerprints; any structural
        #: mutation clears it.
        self.structure_memo: dict[str, object] = {}

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def minimize(self, objective: LinExpr | Number) -> None:
        self._objective = as_expr(objective)
        self._touch(self._objective)

    @property
    def objective(self) -> LinExpr:
        return self._objective

    def add(
        self,
        lhs: LinExpr | Number,
        sense: Sense | str,
        rhs: LinExpr | Number = 0.0,
        name: str | None = None,
    ) -> Constraint:
        """Add ``lhs (sense) rhs``; either side may be an expression.

        The constraint is normalized so all variables sit on the left and a
        bare constant on the right.
        """
        lhs_e, rhs_e = as_expr(lhs), as_expr(rhs)
        moved = lhs_e - rhs_e
        constraint = Constraint(
            name=name or f"c{len(self._constraints)}",
            lhs=moved - moved.constant,
            sense=Sense(sense),
            rhs=-moved.constant,
        )
        if constraint.name in self._constraint_names:
            raise LPError(f"duplicate constraint name {constraint.name!r}")
        self._constraint_names.add(constraint.name)
        self._constraints.append(constraint)
        self._append_csr_row(constraint.lhs.terms)
        self.structure_memo.clear()
        return constraint

    def add_row(
        self,
        name: str,
        terms: Mapping[str, float],
        sense: Sense | str,
        rhs: float,
    ) -> Constraint:
        """Add a pre-normalized row directly from a coefficient mapping.

        Fast path for bulk generators (the SMO constraint builder emits
        thousands of structurally known rows on large circuits): skips the
        :class:`LinExpr` operator arithmetic of :meth:`add` entirely.  The
        caller guarantees ``terms`` has no zero coefficients and that any
        constant has already been folded into ``rhs`` -- exactly the shape
        :meth:`add` would have produced.
        """
        constraint = Constraint(
            name=name,
            lhs=LinExpr(terms),
            sense=Sense(sense),
            rhs=float(rhs),
        )
        if name in self._constraint_names:
            raise LPError(f"duplicate constraint name {name!r}")
        self._constraint_names.add(name)
        self._constraints.append(constraint)
        self._append_csr_row(terms)
        self.structure_memo.clear()
        return constraint

    def add_le(self, lhs, rhs, name: str | None = None) -> Constraint:
        return self.add(lhs, Sense.LE, rhs, name=name)

    def add_ge(self, lhs, rhs, name: str | None = None) -> Constraint:
        return self.add(lhs, Sense.GE, rhs, name=name)

    def add_eq(self, lhs, rhs, name: str | None = None) -> Constraint:
        return self.add(lhs, Sense.EQ, rhs, name=name)

    def declare(self, name: str) -> None:
        """Register a variable even if no constraint mentions it yet."""
        if name not in self._var_index:
            self._var_index[name] = len(self._var_index)
            self._declared[name] = None

    def set_free(self, name: str) -> None:
        """Mark a variable as unrestricted in sign."""
        self.declare(name)
        self._free.add(name)
        self.structure_memo.clear()

    def _touch(self, expr: LinExpr) -> None:
        for v in expr.terms:
            self.declare(v)

    def _append_csr_row(self, terms: Mapping[str, float]) -> None:
        """Append one constraint row to the CSR triplet buffers."""
        if self._csr_shared:
            # Copy-on-write: a with_rhs sibling shares these buffers.
            self._csr_indptr = array("q", self._csr_indptr)
            self._csr_cols = array("q", self._csr_cols)
            self._csr_vals = array("d", self._csr_vals)
            self._csr_shared = False
        var_index = self._var_index
        for v, coeff in terms.items():
            idx = var_index.get(v)
            if idx is None:
                idx = len(var_index)
                var_index[v] = idx
                self._declared[v] = None
            self._csr_cols.append(idx)
            self._csr_vals.append(coeff)
        self._csr_indptr.append(len(self._csr_cols))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def constraints(self) -> tuple[Constraint, ...]:
        return tuple(self._constraints)

    @property
    def variables(self) -> tuple[str, ...]:
        """All variables, in order of first appearance."""
        return tuple(self._declared)

    @property
    def free_variables(self) -> frozenset[str]:
        return frozenset(self._free)

    def constraint(self, name: str) -> Constraint:
        for c in self._constraints:
            if c.name == name:
                return c
        raise LPError(f"no constraint named {name!r}")

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self._constraints)

    def __str__(self) -> str:
        lines = [f"minimize {self._objective}", "subject to:"]
        lines.extend(f"  {c}" for c in self._constraints)
        if self._free:
            lines.append(f"free: {', '.join(sorted(self._free))}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Cheap structural copies
    # ------------------------------------------------------------------
    def with_rhs(self, updates: Mapping[str, float]) -> "LinearProgram":
        """A copy of this program with selected constraint right-hand sides
        replaced.

        Expressions are immutable and shared between the copy and the
        original, so this costs one :class:`Constraint` record per updated
        row plus list/dict copies -- no expression arithmetic and no graph
        walking.  This is the substrate of the parametric "re-cost" path:
        a delay change only moves constants, never coefficients, so the
        perturbed LP is the same structure with a handful of new rhs
        values (see :func:`repro.core.constraints.recost_arc_delay`).
        """
        unknown = set(updates) - self._constraint_names
        if unknown:
            raise LPError(f"with_rhs names unknown constraints: {sorted(unknown)}")
        clone = LinearProgram(name=self.name)
        clone._objective = self._objective
        clone._constraints = [
            con
            if con.name not in updates
            else Constraint(con.name, con.lhs, con.sense, float(updates[con.name]))
            for con in self._constraints
        ]
        clone._constraint_names = set(self._constraint_names)
        clone._free = set(self._free)
        clone._declared = dict(self._declared)
        clone._var_index = dict(self._var_index)
        # Coefficients are untouched by rhs edits: share the CSR buffers and
        # let the next structural append on either side copy them first.
        clone._csr_indptr = self._csr_indptr
        clone._csr_cols = self._csr_cols
        clone._csr_vals = self._csr_vals
        clone._csr_shared = self._csr_shared = True
        clone.structure_memo = dict(self.structure_memo)
        return clone

    # ------------------------------------------------------------------
    # Matrix form
    # ------------------------------------------------------------------
    def to_csr(self) -> "LPCSRArrays":
        """Sparse (CSR) matrix form, rows in insertion order.

        The structural arrays (indptr/indices/data, names, senses) are
        snapshotted from the append buffers and cached in
        :attr:`structure_memo` -- so repeated calls during a solve, and
        every :meth:`with_rhs` sibling, share one set of numpy arrays.
        The objective vector and rhs are rebuilt per call: they are not
        structure and may change without clearing the memo.
        """
        variables = list(self._declared)
        n = len(variables)
        m = len(self._constraints)
        nnz = len(self._csr_cols)
        cached = self.structure_memo.get("csr_structure")
        if (
            isinstance(cached, _CSRStructure)
            and cached.a.shape == (m, n)
            and cached.a.nnz == nnz
        ):
            structure = cached
        else:
            structure = _CSRStructure(
                a=CSRMatrix(
                    shape=(m, n),
                    indptr=np.frombuffer(
                        bytes(self._csr_indptr), dtype=np.int64
                    ),
                    indices=np.frombuffer(
                        bytes(self._csr_cols), dtype=np.int64
                    ),
                    data=np.frombuffer(
                        bytes(self._csr_vals), dtype=np.float64
                    ),
                ),
                names=[c.name for c in self._constraints],
                senses=[c.sense for c in self._constraints],
            )
            self.structure_memo["csr_structure"] = structure

        c = np.zeros(n)
        for v, coeff in self._objective.terms.items():
            c[self._var_index[v]] = coeff
        return LPCSRArrays(
            variables=variables,
            c=c,
            objective_constant=self._objective.constant,
            a=structure.a,
            senses=structure.senses,
            rhs=np.array([con.rhs for con in self._constraints]),
            names=structure.names,
            free=[v in self._free for v in variables],
        )

    def to_arrays(self) -> "LPArrays":
        """Dense matrix form, keeping <=, >= and == rows separate.

        This is the legacy tableau-solver view; it materializes the full
        ``(m, n)`` coefficient matrix from the CSR storage, which above
        2000 rows is counted and reported (see :mod:`repro.lp.sparse`).
        """
        csr = self.to_csr()
        n = len(csr.variables)
        dense = csr.a.to_dense(site="model.to_arrays")

        picks: dict[Sense, list[int]] = {
            Sense.LE: [],
            Sense.GE: [],
            Sense.EQ: [],
        }
        for i, sense in enumerate(csr.senses):
            picks[sense].append(i)

        def block(sense: Sense) -> tuple[np.ndarray, np.ndarray]:
            idx = picks[sense]
            if idx:
                return dense[idx], csr.rhs[idx]
            return np.zeros((0, n)), np.zeros(0)

        a_le, b_le = block(Sense.LE)
        a_ge, b_ge = block(Sense.GE)
        a_eq, b_eq = block(Sense.EQ)
        return LPArrays(
            variables=csr.variables,
            c=csr.c,
            objective_constant=csr.objective_constant,
            a_le=a_le,
            b_le=b_le,
            names_le=[csr.names[i] for i in picks[Sense.LE]],
            a_ge=a_ge,
            b_ge=b_ge,
            names_ge=[csr.names[i] for i in picks[Sense.GE]],
            a_eq=a_eq,
            b_eq=b_eq,
            names_eq=[csr.names[i] for i in picks[Sense.EQ]],
            free=csr.free,
        )

    def check_topological(self) -> bool:
        """True if every constraint coefficient is 0 or +/-1.

        Section VI observes that the SMO constraint matrix is exclusively
        topological; the core constraint generator asserts this property.
        """
        for con in self._constraints:
            for coeff in con.lhs.terms.values():
                if coeff not in (1.0, -1.0):
                    return False
        return True


@dataclass
class LPArrays:
    """Dense matrix view of a :class:`LinearProgram`."""

    variables: list[str]
    c: np.ndarray
    objective_constant: float
    a_le: np.ndarray
    b_le: np.ndarray
    names_le: list[str]
    a_ge: np.ndarray
    b_ge: np.ndarray
    names_ge: list[str]
    a_eq: np.ndarray
    b_eq: np.ndarray
    names_eq: list[str]
    free: list[bool]

    @property
    def n_variables(self) -> int:
        return len(self.variables)

    @property
    def n_constraints(self) -> int:
        return len(self.names_le) + len(self.names_ge) + len(self.names_eq)


@dataclass(frozen=True)
class _CSRStructure:
    """The structural (rhs-independent) part of :class:`LPCSRArrays`."""

    a: CSRMatrix
    names: list[str]
    senses: list[Sense]


@dataclass
class LPCSRArrays:
    """Sparse (CSR) matrix view of a :class:`LinearProgram`.

    Rows are in constraint insertion order (not grouped by sense); the
    per-row ``senses`` list carries the direction.  Peak memory is
    O(nnz) -- for the paper's exclusively-topological matrices that is
    a few entries per row regardless of circuit size.
    """

    variables: list[str]
    c: np.ndarray
    objective_constant: float
    a: CSRMatrix
    senses: list[Sense]
    rhs: np.ndarray
    names: list[str]
    free: list[bool]

    @property
    def n_variables(self) -> int:
        return len(self.variables)

    @property
    def n_constraints(self) -> int:
        return len(self.names)
