"""A dense two-phase primal simplex solver.

This mirrors the solver in the paper's initial MLP implementation: "a
dense-matrix LP solver which implements the standard simplex algorithm"
(Section V).  It is self-contained (numpy only) and returns primal values,
duals and an iteration count.

The implementation keeps a full tableau.  Pivoting uses Dantzig's rule for
speed and falls back to Bland's anti-cycling rule after a run of degenerate
pivots, which guarantees termination.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError
from repro.lp.model import LinearProgram
from repro.lp.result import LPResult, LPStatus, attach_slacks
from repro.lp.standard_form import StandardForm
from repro.obs import trace

#: Back-compat alias: the standard-form builder now lives in
#: :mod:`repro.lp.standard_form`, shared with the revised solver.
_StandardForm = StandardForm


@dataclass(frozen=True)
class SimplexOptions:
    """Tuning knobs for :func:`solve_simplex`."""

    tol: float = 1e-9
    max_iterations: int = 100_000
    #: switch from Dantzig's rule to Bland's rule after this many consecutive
    #: degenerate pivots (prevents cycling while keeping typical speed).
    bland_after: int = 50


def _pivot(tableau: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    tableau[row, :] /= tableau[row, col]
    pivot_row = tableau[row, :]
    for r in range(tableau.shape[0]):
        if r != row and tableau[r, col] != 0.0:
            tableau[r, :] -= tableau[r, col] * pivot_row
    basis[row] = col


def _run_simplex(
    tableau: np.ndarray,
    basis: np.ndarray,
    costs: np.ndarray,
    allowed: np.ndarray,
    options: SimplexOptions,
) -> tuple[str, int]:
    """Optimize min costs'x over the tableau; returns (status, iterations).

    ``tableau`` is (m, n+1) with the rhs in the last column; ``basis`` holds
    the basic column of each row; ``allowed`` masks columns eligible to
    enter (used to keep artificials out during phase 2).
    """
    m, n_plus = tableau.shape
    n = n_plus - 1
    tol = options.tol
    iterations = 0
    degenerate_run = 0
    traced = trace.is_enabled()  # hoisted so untraced pivots pay one bool test

    while True:
        if iterations >= options.max_iterations:
            raise SolverError(
                f"simplex exceeded {options.max_iterations} iterations"
            )
        # Reduced costs: z_j - c_j = c_B B^-1 a_j - c_j; with the tableau in
        # canonical form, compute via the basic costs.
        cb = costs[basis]
        reduced = costs[:n] - cb @ tableau[:, :n]
        reduced[~allowed[:n]] = np.inf  # never enter disallowed columns
        reduced[basis] = np.inf  # basic columns have zero reduced cost

        use_bland = degenerate_run >= options.bland_after
        candidates = np.where(reduced < -tol)[0]
        if candidates.size == 0:
            return "optimal", iterations
        if use_bland:
            col = int(candidates[0])
        else:
            col = int(candidates[np.argmin(reduced[candidates])])

        column = tableau[:, col]
        positive = column > tol
        if not positive.any():
            return "unbounded", iterations
        ratios = np.full(m, np.inf)
        ratios[positive] = tableau[positive, n] / column[positive]
        best = ratios.min()
        # Tie-break on the smallest basis index (Bland-compatible).
        tied = np.where(ratios <= best + tol)[0]
        row = int(tied[np.argmin(basis[tied])])

        degenerate_run = degenerate_run + 1 if best <= tol else 0
        if traced:
            trace.add_event(
                "pivot",
                enter=col,
                leave=int(basis[row]),
                row=row,
                degenerate=bool(best <= tol),
            )
        _pivot(tableau, basis, row, col)
        iterations += 1


def solve_simplex(
    program: LinearProgram, options: SimplexOptions | None = None
) -> LPResult:
    """Solve a :class:`LinearProgram` with the two-phase simplex method.

    The result carries ``iterations`` (total pivots across both phases,
    also readable as ``result.pivots``) and ``solve_seconds`` (wall-clock
    time spent in the solver).
    """
    start = time.perf_counter()
    result = _solve_simplex(program, options)
    result.solve_seconds = time.perf_counter() - start
    return result


def _solve_simplex(
    program: LinearProgram, options: SimplexOptions | None = None
) -> LPResult:
    options = options or SimplexOptions()
    sf = _StandardForm(program)
    m, n = sf.m, sf.n_struct
    tol = options.tol

    if m == 0:
        # No constraints: optimum is 0 for all nonnegative variables (any
        # negative cost coefficient would make the problem unbounded).
        if np.any(sf.c < -tol):
            return LPResult(status=LPStatus.UNBOUNDED, backend="simplex")
        values = sf.recover_values(np.zeros(n))
        result = LPResult(
            status=LPStatus.OPTIMAL,
            objective=sf.objective_constant,
            values=values,
            duals={},
            backend="simplex",
        )
        return attach_slacks(result, program)

    # ------------------------------------------------------------------
    # Phase 1: find a basic feasible solution using artificial variables.
    # Rows whose slack column enters with +1 (<= rows with b >= 0 that were
    # not sign-flipped) can use the slack directly; others get an artificial.
    # ------------------------------------------------------------------
    artificial_rows = []
    basis = np.full(m, -1, dtype=int)
    for i in range(m):
        sc = sf.slack_col_of_row[i]
        if sc >= 0 and sf.a[i, sc] == 1.0:
            basis[i] = sc
        else:
            artificial_rows.append(i)

    n_art = len(artificial_rows)
    total = n + n_art
    tableau = np.zeros((m, total + 1))
    tableau[:, :n] = sf.a
    tableau[:, total] = sf.b
    for k, i in enumerate(artificial_rows):
        tableau[i, n + k] = 1.0
        basis[i] = n + k

    iterations = 0
    if n_art:
        phase1_costs = np.zeros(total)
        phase1_costs[n:] = 1.0
        # Canonicalize: zero out reduced costs of the basic artificials by
        # running the optimization (the driver computes reduced costs from
        # the basis directly, so no explicit canonicalization is needed).
        allowed = np.ones(total, dtype=bool)
        status, it1 = _run_simplex(tableau, basis, phase1_costs, allowed, options)
        iterations += it1
        if status != "optimal":  # pragma: no cover - phase 1 is never unbounded
            raise SolverError(f"phase 1 ended with status {status}")
        infeasibility = float(phase1_costs[basis] @ tableau[:, total])
        if infeasibility > 1e-7:
            return LPResult(
                status=LPStatus.INFEASIBLE,
                iterations=iterations,
                backend="simplex",
            )
        # Drive any remaining zero-level artificials out of the basis.
        for i in range(m):
            if basis[i] >= n:
                pivot_col = -1
                for j in range(n):
                    if abs(tableau[i, j]) > tol:
                        pivot_col = j
                        break
                if pivot_col >= 0:
                    _pivot(tableau, basis, i, pivot_col)
                # else: the row is redundant; the artificial stays basic at 0.

    # ------------------------------------------------------------------
    # Phase 2: optimize the true objective with artificials locked out.
    # ------------------------------------------------------------------
    phase2_costs = np.zeros(total)
    phase2_costs[:n] = sf.c
    allowed = np.zeros(total, dtype=bool)
    allowed[:n] = True
    status, it2 = _run_simplex(tableau, basis, phase2_costs, allowed, options)
    iterations += it2
    if status == "unbounded":
        return LPResult(
            status=LPStatus.UNBOUNDED, iterations=iterations, backend="simplex"
        )

    x = np.zeros(total)
    x[basis] = tableau[:, total]
    objective = float(sf.c @ x[:n]) + sf.objective_constant
    values = sf.recover_values(x[:n])

    # Duals: solve B'y = c_B against the *original* standard-form columns.
    columns = np.zeros((m, m))
    cb = np.zeros(m)
    full_a = np.hstack([sf.a, np.zeros((m, n_art))])
    for k, i in enumerate(artificial_rows):
        full_a[i, n + k] = 1.0
    for r in range(m):
        columns[:, r] = full_a[:, basis[r]]
        cb[r] = phase2_costs[basis[r]]
    try:
        y = np.linalg.solve(columns.T, cb)
    except np.linalg.LinAlgError:  # pragma: no cover - basis is nonsingular
        y = np.linalg.lstsq(columns.T, cb, rcond=None)[0]
    duals = {
        name: float(y[i] * sf.row_sign[i]) for i, name in enumerate(sf.row_names)
    }

    result = LPResult(
        status=LPStatus.OPTIMAL,
        objective=objective,
        values=values,
        duals=duals,
        iterations=iterations,
        backend="simplex",
    )
    return attach_slacks(result, program)
