"""Immutable linear expressions over named variables."""

from __future__ import annotations

from typing import Iterable, Mapping, Union

Number = Union[int, float]

#: Coefficients whose magnitude falls below this are dropped.
_COEFF_EPS = 0.0  # exact arithmetic on user-supplied coefficients


class LinExpr:
    """A linear expression ``sum(coeff_i * var_i) + constant``.

    Instances are immutable and support ``+``, ``-``, multiplication and
    division by scalars, and comparison helpers used by
    :class:`repro.lp.model.LinearProgram`.
    """

    __slots__ = ("_terms", "_constant")

    def __init__(self, terms: Mapping[str, float] | None = None, constant: float = 0.0):
        clean: dict[str, float] = {}
        if terms:
            for name, coeff in terms.items():
                c = float(coeff)
                if c != _COEFF_EPS:
                    clean[name] = c
        self._terms = clean
        self._constant = float(constant)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def terms(self) -> dict[str, float]:
        return dict(self._terms)

    @property
    def constant(self) -> float:
        return self._constant

    @property
    def variables(self) -> set[str]:
        return set(self._terms)

    def coefficient(self, name: str) -> float:
        return self._terms.get(name, 0.0)

    def is_constant(self) -> bool:
        return not self._terms

    def evaluate(self, assignment: Mapping[str, float]) -> float:
        """Evaluate at a point; missing variables are an error."""
        total = self._constant
        for name, coeff in self._terms.items():
            total += coeff * assignment[name]
        return total

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _combine(self, other: "LinExpr | Number", sign: float) -> "LinExpr":
        other_expr = as_expr(other)
        terms = dict(self._terms)
        for name, coeff in other_expr._terms.items():
            terms[name] = terms.get(name, 0.0) + sign * coeff
            if terms[name] == 0.0:
                del terms[name]
        return LinExpr(terms, self._constant + sign * other_expr._constant)

    def __add__(self, other: "LinExpr | Number") -> "LinExpr":
        return self._combine(other, 1.0)

    __radd__ = __add__

    def __sub__(self, other: "LinExpr | Number") -> "LinExpr":
        return self._combine(other, -1.0)

    def __rsub__(self, other: "LinExpr | Number") -> "LinExpr":
        return as_expr(other)._combine(self, -1.0)

    def __mul__(self, scalar: Number) -> "LinExpr":
        if isinstance(scalar, LinExpr):
            raise TypeError("cannot multiply two linear expressions")
        s = float(scalar)
        return LinExpr(
            {n: c * s for n, c in self._terms.items()}, self._constant * s
        )

    __rmul__ = __mul__

    def __truediv__(self, scalar: Number) -> "LinExpr":
        return self * (1.0 / float(scalar))

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    def __pos__(self) -> "LinExpr":
        return self

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"LinExpr({self})"

    def __str__(self) -> str:
        parts: list[str] = []
        for name in sorted(self._terms):
            coeff = self._terms[name]
            if coeff == 1.0:
                text = name
            elif coeff == -1.0:
                text = f"-{name}"
            else:
                text = f"{coeff:g}*{name}"
            if parts and not text.startswith("-"):
                parts.append(f"+ {text}")
            elif parts:
                parts.append(f"- {text[1:]}")
            else:
                parts.append(text)
        if self._constant or not parts:
            c = self._constant
            if parts:
                parts.append(f"+ {c:g}" if c >= 0 else f"- {-c:g}")
            else:
                parts.append(f"{c:g}")
        return " ".join(parts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, (LinExpr, int, float)):
            return NotImplemented
        o = as_expr(other)
        return self._terms == o._terms and self._constant == o._constant

    def __hash__(self) -> int:
        return hash((frozenset(self._terms.items()), self._constant))


def var(name: str) -> LinExpr:
    """A linear expression consisting of a single variable."""
    if not name:
        raise ValueError("variable name must be non-empty")
    return LinExpr({name: 1.0})


def as_expr(value: "LinExpr | Number") -> LinExpr:
    """Coerce a number to a constant expression; pass expressions through."""
    if isinstance(value, LinExpr):
        return value
    return LinExpr({}, float(value))


def linear_sum(exprs: Iterable["LinExpr | Number"]) -> LinExpr:
    """Sum an iterable of expressions/numbers into one expression."""
    total = LinExpr()
    for e in exprs:
        total = total + e
    return total
