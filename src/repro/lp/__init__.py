"""A small linear-programming toolkit.

The paper's MLP algorithm reduces optimal cycle-time calculation to a
linear program whose constraint matrix is purely topological (entries in
{0, +1, -1}).  This package provides everything needed to state and solve
such programs:

* :mod:`repro.lp.expr` -- symbolic linear expressions over named variables;
* :mod:`repro.lp.model` -- an LP model (objective, constraints, bounds);
* :mod:`repro.lp.simplex` -- a dense two-phase simplex solver written from
  scratch, mirroring the "dense-matrix LP solver which implements the
  standard simplex algorithm" of the paper's initial implementation;
* :mod:`repro.lp.scipy_backend` -- an optional cross-checking backend on
  top of :func:`scipy.optimize.linprog`;
* :mod:`repro.lp.sensitivity` -- binding-constraint and shadow-price
  reporting used for critical-segment analysis (Section V).
"""

from repro.lp.expr import LinExpr, var
from repro.lp.model import Constraint, LinearProgram, Sense
from repro.lp.result import LPResult, LPStatus
from repro.lp.simplex import SimplexOptions, solve_simplex
from repro.lp.backends import available_backends, solve
from repro.lp.sensitivity import SensitivityReport, sensitivity

__all__ = [
    "LinExpr",
    "var",
    "Constraint",
    "LinearProgram",
    "Sense",
    "LPResult",
    "LPStatus",
    "SimplexOptions",
    "solve_simplex",
    "available_backends",
    "solve",
    "SensitivityReport",
    "sensitivity",
]
