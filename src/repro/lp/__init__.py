"""A small linear-programming toolkit.

The paper's MLP algorithm reduces optimal cycle-time calculation to a
linear program whose constraint matrix is purely topological (entries in
{0, +1, -1}).  This package provides everything needed to state and solve
such programs:

* :mod:`repro.lp.expr` -- symbolic linear expressions over named variables;
* :mod:`repro.lp.model` -- an LP model (objective, constraints, bounds);
* :mod:`repro.lp.simplex` -- a dense two-phase simplex solver written from
  scratch, mirroring the "dense-matrix LP solver which implements the
  standard simplex algorithm" of the paper's initial implementation;
* :mod:`repro.lp.standard_form` -- the shared ``min c'x, Ax = b, x >= 0``
  canonicalization both simplex backends solve;
* :mod:`repro.lp.revised_simplex` -- a revised simplex with explicit
  :mod:`basis <repro.lp.basis>` objects and warm-start support, the fast
  path for repeated solves (sweeps, batches);
* :mod:`repro.lp.sparse` / :mod:`repro.lp.sparse_lu` /
  :mod:`repro.lp.sparse_simplex` -- CSR/CSC constraint storage, sparse
  LU + eta-file basis factorization, and the sparse revised simplex
  built on them: O(nnz) memory, the backend for 10k+ latch designs;
* :mod:`repro.lp.scipy_backend` -- an optional cross-checking backend on
  top of :func:`scipy.optimize.linprog`;
* :mod:`repro.lp.sensitivity` -- binding-constraint and shadow-price
  reporting used for critical-segment analysis (Section V).

See ``docs/LP.md`` for the solver architecture tour.
"""

from repro.lp.backends import (
    available_backends,
    canonical_backend,
    solve,
    supports_warm_start,
)
from repro.lp.basis import Basis
from repro.lp.expr import LinExpr, var
from repro.lp.model import Constraint, LinearProgram, LPCSRArrays, Sense
from repro.lp.result import LPResult, LPStatus
from repro.lp.revised_simplex import RevisedSimplexOptions, solve_revised_simplex
from repro.lp.sensitivity import SensitivityReport, sensitivity
from repro.lp.simplex import SimplexOptions, solve_simplex
from repro.lp.sparse import CSCMatrix, CSRMatrix
from repro.lp.sparse_simplex import SparseSimplexOptions, solve_sparse_simplex
from repro.lp.standard_form import StandardForm

__all__ = [
    "Basis",
    "LinExpr",
    "var",
    "Constraint",
    "LinearProgram",
    "LPCSRArrays",
    "CSRMatrix",
    "CSCMatrix",
    "Sense",
    "LPResult",
    "LPStatus",
    "RevisedSimplexOptions",
    "SimplexOptions",
    "SparseSimplexOptions",
    "StandardForm",
    "solve_revised_simplex",
    "solve_simplex",
    "solve_sparse_simplex",
    "available_backends",
    "canonical_backend",
    "supports_warm_start",
    "solve",
    "SensitivityReport",
    "sensitivity",
]
