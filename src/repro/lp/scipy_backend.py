"""Optional LP backend built on :func:`scipy.optimize.linprog` (HiGHS).

The from-scratch simplex in :mod:`repro.lp.simplex` is the default backend;
this module exists to cross-check it (property tests assert both backends
agree) and to solve the large random instances used by the scaling
benchmarks quickly.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import SolverError
from repro.lp.model import LinearProgram
from repro.lp.result import LPResult, LPStatus, attach_slacks

try:  # pragma: no cover - exercised implicitly by availability checks
    from scipy.optimize import linprog as _linprog

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    _linprog = None
    HAVE_SCIPY = False


def solve_scipy(program: LinearProgram) -> LPResult:
    """Solve a :class:`LinearProgram` via scipy's HiGHS interface."""
    if not HAVE_SCIPY:
        raise SolverError("scipy is not installed; use the 'simplex' backend")
    arrays = program.to_arrays()

    # scipy wants only <= inequalities: flip the >= block.
    if arrays.a_ge.shape[0]:
        a_ub = np.vstack([arrays.a_le, -arrays.a_ge])
        b_ub = np.concatenate([arrays.b_le, -arrays.b_ge])
    else:
        a_ub, b_ub = arrays.a_le, arrays.b_le
    ub_names = arrays.names_le + arrays.names_ge
    ub_signs = [1.0] * len(arrays.names_le) + [-1.0] * len(arrays.names_ge)

    bounds = [
        (None, None) if free else (0.0, None) for free in arrays.free
    ]
    kwargs = {}
    if arrays.a_eq.shape[0]:
        kwargs["A_eq"] = arrays.a_eq
        kwargs["b_eq"] = arrays.b_eq
    if a_ub.shape[0]:
        kwargs["A_ub"] = a_ub
        kwargs["b_ub"] = b_ub

    # Time the solver call itself so `solve_seconds` means the same thing
    # for every backend: time inside the LP code, excluding our model
    # translation (the simplex backends likewise exclude LinearProgram
    # construction but include their own standard-form setup).
    start = time.perf_counter()
    res = _linprog(arrays.c, bounds=bounds, method="highs", **kwargs)
    elapsed = time.perf_counter() - start
    nit = int(getattr(res, "nit", 0))

    if res.status == 2:
        return LPResult(
            status=LPStatus.INFEASIBLE,
            iterations=nit,
            backend="scipy",
            solve_seconds=elapsed,
        )
    if res.status == 3:
        return LPResult(
            status=LPStatus.UNBOUNDED,
            iterations=nit,
            backend="scipy",
            solve_seconds=elapsed,
        )
    if res.status != 0:
        raise SolverError(f"scipy linprog failed: {res.message}")

    values = {
        name: float(v) for name, v in zip(arrays.variables, res.x)
    }
    duals: dict[str, float] = {}
    if a_ub.shape[0] and res.ineqlin is not None:
        for name, sign, marginal in zip(ub_names, ub_signs, res.ineqlin.marginals):
            duals[name] = float(sign * marginal)
    if arrays.a_eq.shape[0] and res.eqlin is not None:
        for name, marginal in zip(arrays.names_eq, res.eqlin.marginals):
            duals[name] = float(marginal)

    result = LPResult(
        status=LPStatus.OPTIMAL,
        objective=float(res.fun) + arrays.objective_constant,
        values=values,
        duals=duals,
        iterations=nit,
        backend="scipy",
        solve_seconds=elapsed,
    )
    return attach_slacks(result, program)
