"""Shadow-price and binding-constraint reporting.

Section V of the paper points out that the criticality of combinational
delay *segments* "are directly related to associated slack variables in the
inequality constraints", and Section VI proposes parametric programming to
study the effect of delay changes.  This module extracts that information
from a solved LP: which constraints are binding, what their shadow prices
are, and a finite-difference rhs-ranging helper that re-solves the program
to measure the true sensitivity of the optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import LPError
from repro.lp.model import Constraint, LinearProgram
from repro.lp.result import LPResult


@dataclass(frozen=True)
class ConstraintSensitivity:
    """Sensitivity record for one constraint at the LP optimum."""

    name: str
    binding: bool
    slack: float
    dual: float


@dataclass
class SensitivityReport:
    """Per-constraint sensitivities at an LP optimum."""

    entries: dict[str, ConstraintSensitivity]

    @property
    def binding(self) -> list[str]:
        return [name for name, e in self.entries.items() if e.binding]

    @property
    def nonbinding(self) -> list[str]:
        return [name for name, e in self.entries.items() if not e.binding]

    def critical(self, tol: float = 1e-7) -> list[str]:
        """Constraints that are binding *and* carry a nonzero shadow price.

        These are the paper's critical segments: relaxing any of them by one
        unit changes the optimal cycle time by its dual value.
        """
        return [
            name
            for name, e in self.entries.items()
            if e.binding and abs(e.dual) > tol
        ]

    def __str__(self) -> str:
        lines = ["constraint                     slack      dual  binding"]
        for name, e in sorted(self.entries.items()):
            lines.append(
                f"{name:<28} {e.slack:>9.4g} {e.dual:>9.4g}  {'*' if e.binding else ''}"
            )
        return "\n".join(lines)


def sensitivity(
    program: LinearProgram, result: LPResult, tol: float = 1e-7
) -> SensitivityReport:
    """Build a :class:`SensitivityReport` from a solved program."""
    if not result.ok:
        raise LPError(f"cannot analyze a {result.status.value} result")
    entries = {}
    for con in program.constraints:
        slack = result.slacks.get(con.name, float("nan"))
        dual = result.duals.get(con.name, 0.0)
        entries[con.name] = ConstraintSensitivity(
            name=con.name,
            binding=abs(slack) <= tol,
            slack=slack,
            dual=dual,
        )
    return SensitivityReport(entries)


def rhs_ranging(
    program_factory: Callable[[float], LinearProgram],
    solve: Callable[[LinearProgram], LPResult],
    at: float,
    step: float = 1e-4,
) -> float:
    """Finite-difference derivative of the optimum w.r.t. a parameter.

    ``program_factory(value)`` must rebuild the LP with the parameter set to
    ``value``.  Used by tests to validate reported duals: the measured slope
    must match the shadow price of the perturbed constraint.
    """
    lo = solve(program_factory(at - step)).raise_for_status().objective
    hi = solve(program_factory(at + step)).raise_for_status().objective
    return (hi - lo) / (2 * step)


def perturbed(constraint: Constraint, delta: float) -> Constraint:
    """A copy of ``constraint`` with its rhs shifted by ``delta``."""
    return Constraint(
        constraint.name, constraint.lhs, constraint.sense, constraint.rhs + delta
    )
