"""Graph-native minimum-Tc solver (see ``docs/CYCLE.md``).

The minimum cycle time of the paper's MLP is determined by a critical
cycle of the parametric difference-constraint graph built by
:mod:`repro.lint.graphdiag`: with edge weights ``a + b*Tc`` and every
``b >= 0``, the system is feasible at period ``t`` iff no cycle is
negative, so the optimum is ``max_C -A(C)/B(C)`` over cycles ``C``.  This
package computes that optimum -- and a feasible schedule witnessing it --
directly on CSR adjacency arrays, without ever building a simplex
tableau:

* :mod:`repro.cycle.compiled` lowers the constraint graph to flat numpy
  arrays (the layout of :mod:`repro.maxplus.compiled`), cached by the
  structural fingerprint so sweeps and re-cost copies only re-fill the
  ``a`` vector;
* :mod:`repro.cycle.solver` runs a Lawler-style parametric search --
  Howard-flavoured cycle-ratio jumps with a binary-search bracket as a
  guard -- over a vectorized Bellman-Ford oracle, recovers a schedule
  from the shortest-path potentials at the optimum, and *certifies* the
  result against every original LP row, falling back to the LP when the
  graph relaxation under-constrains the program.

It is wired in as the ``"cycle"`` LP backend (and ``"cycle+check"``, the
self-verifying variant) in :mod:`repro.lp.backends`.
"""

from repro.cycle.compiled import (
    CompiledCycleGraph,
    clear_cycle_cache,
    compile_cycle_graph,
    cycle_cache_stats,
)
from repro.cycle.solver import (
    CyclePeriod,
    minimum_feasible_period,
    solve_cycle,
)

__all__ = [
    "CompiledCycleGraph",
    "CyclePeriod",
    "clear_cycle_cache",
    "compile_cycle_graph",
    "cycle_cache_stats",
    "minimum_feasible_period",
    "solve_cycle",
]
