"""Parametric critical-cycle search and schedule recovery.

The search is Lawler's cycle-ratio iteration with a Howard-style policy
flavour: at the current period ``t``, a vectorized Bellman-Ford either
proves feasibility (no negative cycle under weights ``a + b*t``) or
extracts a negative cycle ``C`` from its predecessor graph; since every
``b >= 0``, that cycle asserts ``Tc >= -A(C)/B(C) > t``, so ``t`` jumps
there -- each extracted cycle playing the role of the improved policy.
Candidate periods range over the finite set of cycle ratios and increase
strictly, so the iteration terminates at the exact feasibility threshold
of the encoded system.  Should the jumps ever crawl (adversarial graphs
with many near-identical ratios), a binary search brackets the optimum
to a narrow interval first and the ratio jumps finish exactly from
there.

At the optimal period the final Bellman-Ford potentials (every node
initialized to 0 -- a virtual source wired everywhere) satisfy all
encoded difference constraints; shifting them so ``origin = 0`` and
undoing the event-time substitution yields values for every LP variable.
The point is then *certified* against every row of the original program
(including any rows the graph lowering skipped, and sign bounds): since
the graph optimum is a relaxation lower bound, a certified-feasible
point at that objective **is** the LP optimum -- no simplex required.
If certification fails, the graph under-constrained the program and the
solver transparently falls back to the revised simplex.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
import numpy.typing as npt

from repro.core.constraints import TC, SMOProgram, d_var, s_var, t_var
from repro.cycle.compiled import (
    CompiledCycleGraph,
    compile_cycle_graph,
)
from repro.errors import SolverError
from repro.lint.graphdiag import (
    ORIGIN,
    constraint_graph_for,
    dep_node,
    end_node,
    start_node,
    structure_fingerprint,
)
from repro.lp.model import LinearProgram
from repro.lp.result import LPResult, LPStatus, attach_slacks
from repro.obs import metrics, trace

if TYPE_CHECKING:
    from repro.lp.basis import Basis

_I64 = npt.NDArray[np.int64]
_F64 = npt.NDArray[np.float64]

#: Relative feasibility tolerance of the Bellman-Ford oracle.
TOL = 1e-9
#: Tolerance for accepting the decoded point against the original rows.
CERTIFY_TOL = 1e-7
#: Ratio jumps before the binary-search bracket kicks in.
BISECT_AFTER = 24
#: Backend used when the graph relaxation cannot certify the optimum.
FALLBACK_BACKEND = "revised"


def _fallback_backend(program: LinearProgram) -> str:
    """The simplex that answers for the cycle backend on ``program``.

    The dense revised solver at paper scale (bit-stable against the
    existing golden results); the sparse revised solver above the
    dense-materialization threshold, where a dense basis inverse would
    be an O(m^2) allocation.
    """
    from repro.lp.backends import AUTO_SPARSE_ROWS

    if len(program) > AUTO_SPARSE_ROWS:
        return "sparse"
    return FALLBACK_BACKEND


@dataclass(frozen=True)
class _BFOutcome:
    """One Bellman-Ford run: a distance vector or a negative cycle."""

    feasible: bool
    dist: _F64 | None
    cycle: tuple[int, ...]  #: original-order edge indices, cycle order
    rounds: int


@dataclass(frozen=True)
class CyclePeriod:
    """Outcome of the parametric search.

    ``status`` is ``"optimal"`` (``value`` is the minimum feasible period
    and ``dist`` its witnessing potentials), ``"structural"`` (a negative
    cycle with ``B == 0`` -- no period is feasible), ``"contradiction"``
    (a constant row is false), or ``"capped"`` (the cycles force
    ``Tc >= value`` but a scalar row caps the period below that).
    ``cycle`` holds the critical (last binding) cycle as edge indices
    into the compiled graph's original edge order.
    """

    status: str
    value: float
    dist: _F64 | None
    cycle: tuple[int, ...]
    jumps: int
    bisections: int
    bf_rounds: int
    message: str = ""


def _predecessor_cycle(
    pred: _I64, in_tail: _I64, n: int
) -> tuple[int, ...] | None:
    """A cycle in the predecessor graph, as head-sorted edge slots.

    Classic Bellman-Ford fact: whenever the predecessor pointers contain
    a cycle (at any point during relaxation), that cycle has negative
    weight.  Detection is vectorized by pointer doubling over the
    successor map ``v -> tail(pred[v])`` with an absorbing terminal for
    rootless nodes; extraction then walks ``n`` predecessor hops from any
    surviving node, which is guaranteed to land on the cycle.
    """
    succ = np.where(pred >= 0, in_tail[np.maximum(pred, 0)], n)
    chain = np.append(succ, n).astype(np.int64)
    hops = 1
    while hops < n:
        chain = chain[chain]
        hops *= 2
    live = np.flatnonzero(chain[:n] != n)
    if live.size == 0:
        return None
    node = int(live[0])
    for _ in range(n):
        node = int(in_tail[pred[node]])
    start = node
    slots: list[int] = []
    while True:
        slot = int(pred[node])
        slots.append(slot)
        node = int(in_tail[slot])
        if node == start:
            break
    slots.reverse()
    return tuple(slots)


def _bellman_ford(
    comp: CompiledCycleGraph, t: float, tol: float = TOL
) -> _BFOutcome:
    """Vectorized Bellman-Ford at period ``t`` over the CSR arrays.

    All distances start at 0 (virtual source), so the result is the
    greatest potential vector ``<= 0`` satisfying every edge -- exactly
    what schedule recovery needs.  One round is two ``minimum.reduceat``
    sweeps over the head-sorted edges; a predecessor-graph cycle check
    runs periodically so infeasible periods are detected long before the
    |V|-round worst case.
    """
    st = comp.structure
    n = st.n_nodes
    m = st.n_edges
    if m == 0:
        return _BFOutcome(True, np.zeros(n), (), 0)
    w = comp.a_in + st.b_in * t
    dist = np.zeros(n)
    pred = np.full(n, -1, dtype=np.int64)
    slots = np.arange(m, dtype=np.int64)
    eps = tol * max(1.0, abs(t))
    check_every = 32
    max_rounds = 3 * n + 2
    for rounds in range(1, max_rounds + 1):
        cand = dist[st.in_tail] + w
        seg_min = np.minimum.reduceat(cand, st.red_starts)
        improved = seg_min < dist[st.red_heads] - eps
        if not improved.any():
            return _BFOutcome(True, dist, (), rounds)
        seg_full = np.repeat(seg_min, st.red_counts)
        seg_argmin = np.minimum.reduceat(
            np.where(cand <= seg_full, slots, m), st.red_starts
        )
        heads = st.red_heads[improved]
        dist[heads] = seg_min[improved]
        pred[heads] = seg_argmin[improved]
        if rounds % check_every == 0 or rounds >= n:
            cycle_slots = _predecessor_cycle(pred, st.in_tail, n)
            if cycle_slots is not None:
                cycle = tuple(int(st.order[s]) for s in cycle_slots)
                return _BFOutcome(False, None, cycle, rounds)
    raise SolverError(  # pragma: no cover - relaxation must settle by 3|V|
        f"Bellman-Ford did not settle within {max_rounds} rounds at t={t!r}"
    )


def _cycle_totals(
    comp: CompiledCycleGraph, cycle: tuple[int, ...]
) -> tuple[float, float]:
    idx = np.asarray(cycle, dtype=np.int64)
    return float(comp.a[idx].sum()), float(comp.structure.b[idx].sum())


def minimum_feasible_period(
    comp: CompiledCycleGraph,
    tol: float = TOL,
    max_jumps: int = 1000,
    bisect_after: int = BISECT_AFTER,
) -> CyclePeriod:
    """The minimum feasible period of a compiled constraint graph.

    Ratio jumps from the scalar floor; after ``bisect_after`` jumps a
    feasible upper bound (``floor + sum of negative edge weights``) seeds
    a binary search that shrinks the bracket before the jumps finish
    exactly.  Scalar caps and constant-row contradictions are honoured
    the same way :func:`repro.lint.graphdiag.diagnose` reports them.
    """
    cg = comp.graph
    if cg.contradictions:
        name, detail = cg.contradictions[0]
        return CyclePeriod(
            "contradiction", math.inf, None, (), 0, 0, 0,
            f"constraint {name} is unsatisfiable: {detail}",
        )
    t = comp.tc_floor
    cap = comp.tc_cap
    if cap is not None and cap < t - tol * max(1.0, abs(t)):
        return CyclePeriod(
            "capped", t, None, (), 0, 0, 0,
            f"scalar bounds cap Tc at {cap:g} below the floor {t:g}",
        )
    hi: float | None = None  # known-feasible period (bisection bracket)
    jumps = bisections = bf_rounds = 0
    critical: tuple[int, ...] = ()
    boost = 1.0
    while True:
        out = _bellman_ford(comp, t, tol * boost)
        bf_rounds += out.rounds
        if out.feasible:
            return CyclePeriod(
                "optimal", t, out.dist, critical,
                jumps, bisections, bf_rounds,
            )
        a_sum, b_sum = _cycle_totals(comp, out.cycle)
        scale = max(1.0, abs(t))
        if b_sum <= tol:
            return CyclePeriod(
                "structural", math.inf, None, out.cycle,
                jumps, bisections, bf_rounds,
                "negative cycle independent of Tc",
            )
        candidate = -a_sum / b_sum
        if candidate <= t + 1e-15 * scale:
            # Numerical stall: the cycle is negative only within noise of
            # the current period.  Coarsen the oracle tolerance and retry;
            # the certification pass downstream still guards the answer.
            boost *= 10.0
            if boost > 1e6:  # pragma: no cover - would need degenerate data
                raise SolverError(
                    f"cycle-ratio search stalled at t={t!r}"
                )
            continue
        jumps += 1
        critical = out.cycle
        t = candidate
        if cap is not None and t > cap + tol * scale:
            return CyclePeriod(
                "capped", t, None, out.cycle,
                jumps, bisections, bf_rounds,
                f"cycles require Tc >= {t:g} but scalar bounds cap it at {cap:g}",
            )
        if jumps == bisect_after and hi is None:
            # Feasible upper bound: every cycle has A >= -sum(max(0, -a))
            # and B >= 1 when Tc-dependent, so this period kills them all.
            hi = comp.tc_floor + float(
                np.maximum(-comp.a, 0.0).sum()
            ) + 1.0
            lo = t
            while hi - lo > 1e-6 * max(1.0, abs(hi)):
                mid = 0.5 * (lo + hi)
                probe = _bellman_ford(comp, mid, tol)
                bf_rounds += probe.rounds
                bisections += 1
                if probe.feasible:
                    hi = mid
                else:
                    a_mid, b_mid = _cycle_totals(comp, probe.cycle)
                    if b_mid <= tol:
                        return CyclePeriod(
                            "structural", math.inf, None, probe.cycle,
                            jumps, bisections, bf_rounds,
                            "negative cycle independent of Tc",
                        )
                    lo = max(mid, -a_mid / b_mid)
                    critical = probe.cycle
            t = lo
        if jumps > max_jumps:  # pragma: no cover - finite ratio set
            raise SolverError("cycle-ratio search did not converge")


# ----------------------------------------------------------------------
# Schedule recovery and certification
# ----------------------------------------------------------------------
def _recover_values(
    comp: CompiledCycleGraph, smo: SMOProgram, t: float, dist: _F64
) -> dict[str, float]:
    """Undo the event-time substitution at the optimal potentials."""
    st = comp.structure
    index = st.index
    x = dist - dist[index[ORIGIN]]
    values: dict[str, float] = {TC: t}
    for phase in smo.graph.phase_names:
        xs = float(x[index[start_node(phase)]])
        xe = float(x[index[end_node(phase)]])
        values[s_var(phase)] = xs
        values[t_var(phase)] = xe - xs
    for sync in smo.graph.synchronizers:
        xd = float(x[index[dep_node(sync.name)]])
        values[d_var(sync.name)] = xd - float(
            x[index[start_node(sync.phase)]]
        )
    for var in smo.program.variables:
        values.setdefault(var, 0.0)
    return values


def _max_violation(
    program: LinearProgram, values: dict[str, float]
) -> tuple[float, str]:
    """Worst violation of the point across all rows and sign bounds."""
    worst, name = 0.0, ""
    free = program.free_variables
    for var in program.variables:
        if var not in free:
            below = -values.get(var, 0.0)
            if below > worst:
                worst, name = below, f"bound[{var}]"
    for con in program.constraints:
        violation = con.violation(values)
        if violation > worst:
            worst, name = violation, con.name
    return worst, name


def _tc_objective_coeff(program: LinearProgram) -> float | None:
    """The coefficient ``c`` when the objective is ``c*Tc + const``."""
    terms = program.objective.terms
    if set(terms) == {TC} and terms[TC] > 0.0:
        return terms[TC]
    return None


# ----------------------------------------------------------------------
# The backend entry point
# ----------------------------------------------------------------------
def solve_cycle(
    program: LinearProgram,
    warm_start: "Basis | None" = None,
    context: object | None = None,
    check: bool = False,
    tol: float = TOL,
) -> LPResult:
    """Solve ``min Tc`` by parametric critical-cycle search.

    ``context`` must be the :class:`SMOProgram` that owns ``program`` --
    the event-time substitution needs the timing graph and cannot be
    recovered from the bare LP.  Whenever the graph route cannot *prove*
    its answer optimal -- missing context, a non-Tc objective, or a
    decoded schedule that violates a row the lowering skipped -- the
    call transparently falls back to the revised simplex, so
    ``backend="cycle"`` is always correct, merely sometimes no faster.
    With ``check=True`` (the ``"cycle+check"`` backend) the LP reference
    is solved unconditionally and any disagreement beyond ``1e-9``
    relative raises :class:`SolverError`.
    """
    smo = context if isinstance(context, SMOProgram) else None
    reason: str | None = None
    period: CyclePeriod | None = None
    objective_coeff = _tc_objective_coeff(program)
    if smo is None:
        reason = "no SMOProgram context supplied"
    elif smo.program is not program:
        reason = "program is not the context's SMO program"
    elif objective_coeff is None:
        reason = "objective is not a positive multiple of Tc"

    result: LPResult | None = None
    if reason is None:
        assert smo is not None and objective_coeff is not None
        cg = constraint_graph_for(smo)
        comp = compile_cycle_graph(cg, key=structure_fingerprint(smo))
        period = minimum_feasible_period(comp, tol=tol)
        if period.status != "optimal":
            # The graph is a relaxation of the LP: if *it* is infeasible,
            # the LP certainly is -- report that without any fallback.
            result = LPResult(
                status=LPStatus.INFEASIBLE,
                backend="cycle",
                iterations=period.jumps,
                extra={
                    "cycle": {
                        "used": True,
                        "status": period.status,
                        "message": period.message,
                        "jumps": period.jumps,
                        "bisections": period.bisections,
                        "bf_rounds": period.bf_rounds,
                        "cycle_constraints": [
                            comp.structure.constraints[i]
                            for i in period.cycle
                        ],
                    }
                },
            )
        else:
            assert period.dist is not None
            values = _recover_values(comp, smo, period.value, period.dist)
            worst, worst_row = _max_violation(program, values)
            scale = max(1.0, abs(period.value))
            if worst <= CERTIFY_TOL * scale:
                result = LPResult(
                    status=LPStatus.OPTIMAL,
                    objective=objective_coeff * period.value
                    + program.objective.constant,
                    values=values,
                    iterations=period.jumps,
                    backend="cycle",
                    extra={
                        "cycle": {
                            "used": True,
                            "tc": period.value,
                            "jumps": period.jumps,
                            "bisections": period.bisections,
                            "bf_rounds": period.bf_rounds,
                            "certified_rows": len(program.constraints),
                            "max_violation": worst,
                            "critical_cycle": [
                                comp.structure.constraints[i]
                                for i in period.cycle
                            ],
                            "skipped_rows": list(cg.skipped),
                        }
                    },
                )
                attach_slacks(result, program)
            else:
                reason = (
                    f"decoded schedule violates {worst_row} by {worst:.3g}: "
                    f"the cycle bound {period.value!r} under-constrains the LP"
                )

    if result is None:
        # Graceful fallback: the graph route could not certify an answer.
        from repro.lp.backends import solve as lp_solve

        fallback = _fallback_backend(program)
        with trace.span("cycle_fallback", reason=reason or ""):
            result = lp_solve(
                program, backend=fallback, warm_start=warm_start
            )
        fallback_info: dict[str, object] = {
            "used": False,
            "reason": reason,
            "fallback_backend": fallback,
        }
        if period is not None:
            fallback_info["bound"] = period.value
        result.extra["cycle"] = fallback_info

    if metrics.is_enabled():
        _record_cycle_metrics(result, period)
    if check:
        _cross_check(program, result, warm_start, tol)
    return result


def _record_cycle_metrics(result: LPResult, period: CyclePeriod | None) -> None:
    """Fold one cycle solve into the metrics registry.

    ``outcome`` is the certification verdict: ``certified`` (the graph
    answer was proven optimal), ``infeasible`` (the graph proved no
    feasible period exists), or ``fallback`` (the revised simplex had to
    answer).  The iteration-count histograms record only actual graph
    searches, so fallbacks without a parametric pass don't pollute them.
    """
    info = result.extra.get("cycle")
    used = isinstance(info, dict) and bool(info.get("used"))
    if used:
        outcome = (
            "certified" if result.status is LPStatus.OPTIMAL else "infeasible"
        )
    else:
        outcome = "fallback"
    metrics.inc("cycle_solves_total", outcome=outcome)
    if period is not None:
        metrics.observe(
            "cycle_jumps", float(period.jumps), buckets=metrics.COUNT_BUCKETS
        )
        metrics.observe(
            "cycle_bisections",
            float(period.bisections),
            buckets=metrics.COUNT_BUCKETS,
        )
        metrics.observe(
            "cycle_bf_rounds",
            float(period.bf_rounds),
            buckets=metrics.COUNT_BUCKETS,
        )


def _cross_check(
    program: LinearProgram,
    result: LPResult,
    warm_start: "Basis | None",
    tol: float,
) -> None:
    """Solve the LP reference and assert agreement (``cycle+check``)."""
    from repro.lp.backends import solve as lp_solve

    info = result.extra.setdefault("cycle", {})
    reference_backend = _fallback_backend(program)
    if not info.get("used", False):
        # Fallback already *is* the LP answer; nothing to cross-check.
        info["check"] = {"backend": reference_backend, "delta": 0.0}
        return
    with trace.span("cycle_check", backend=reference_backend):
        reference = lp_solve(
            program, backend=reference_backend, warm_start=warm_start
        )
    if result.status is not reference.status:
        raise SolverError(
            f"cycle/LP status disagreement: cycle={result.status.value} "
            f"vs {reference_backend}={reference.status.value}"
        )
    delta = 0.0
    if result.status is LPStatus.OPTIMAL:
        delta = abs(result.objective - reference.objective)
        scale = max(1.0, abs(reference.objective))
        if delta > 1e-9 * scale:
            raise SolverError(
                f"cycle optimum {result.objective!r} disagrees with "
                f"{reference_backend} optimum {reference.objective!r} "
                f"(delta {delta:.3g})"
            )
    info["check"] = {
        "backend": reference_backend,
        "objective": reference.objective,
        "delta": delta,
        "pivots": reference.iterations,
    }
