"""CSR compilation of the difference-constraint graph.

Mirrors the :mod:`repro.maxplus.compiled` split: the *structure* (node
table, edge endpoints, ``b`` coefficients and the in-edge grouping used
by the vectorized Bellman-Ford) depends only on the program's shape and
is cached in a bounded LRU keyed by the same structural fingerprint as
the :mod:`repro.lint.graphdiag` skeleton cache; the ``a`` weight vector
is re-extracted per instance, so a parametric re-cost costs one
O(edges) ``fromiter`` and nothing else.

Edges are grouped by *head* node: ``order`` permutes edges into
head-sorted position, and ``red_starts``/``red_heads``/``red_counts``
delimit the segments, so one relaxation round is two
``np.minimum.reduceat`` calls over ``dist[in_tail] + w`` -- no python
loop over edges.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.lint.graphdiag import ConstraintGraph

_I64 = npt.NDArray[np.int64]
_F64 = npt.NDArray[np.float64]


@dataclass(frozen=True)
class CycleStructure:
    """Shape-only arrays of one constraint graph (shared across re-costs)."""

    nodes: tuple[str, ...]
    index: dict[str, int]
    tail: _I64  #: edge tails, original edge order
    head: _I64  #: edge heads, original edge order
    b: _F64  #: Tc coefficients per edge, original order
    order: _I64  #: permutation sorting edges by head
    in_tail: _I64  #: tail[order]
    b_in: _F64  #: b[order]
    red_heads: _I64  #: distinct heads with incoming edges, sorted
    red_starts: _I64  #: segment starts into the head-sorted edge arrays
    red_counts: _I64  #: segment lengths
    constraints: tuple[str, ...]  #: constraint name per edge, original order
    families: tuple[str, ...]  #: family tag per edge, original order

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_edges(self) -> int:
        return int(self.tail.size)


@dataclass(frozen=True)
class CompiledCycleGraph:
    """A structure plus the current ``a`` weights and scalar Tc bounds."""

    structure: CycleStructure
    graph: ConstraintGraph
    a: _F64  #: additive weights per edge, original order
    a_in: _F64  #: a[order]
    tc_floor: float
    tc_cap: float | None


def _build_structure(cg: ConstraintGraph) -> CycleStructure:
    index = {node: i for i, node in enumerate(cg.nodes)}
    m = len(cg.edges)
    tail = np.fromiter(
        (index[e.tail] for e in cg.edges), dtype=np.int64, count=m
    )
    head = np.fromiter(
        (index[e.head] for e in cg.edges), dtype=np.int64, count=m
    )
    b = np.fromiter((e.b for e in cg.edges), dtype=np.float64, count=m)
    order = np.argsort(head, kind="stable")
    sorted_heads = head[order]
    red_heads, red_starts, red_counts = np.unique(
        sorted_heads, return_index=True, return_counts=True
    )
    return CycleStructure(
        nodes=tuple(cg.nodes),
        index=index,
        tail=tail,
        head=head,
        b=b,
        order=order,
        in_tail=tail[order],
        b_in=b[order],
        red_heads=red_heads.astype(np.int64),
        red_starts=red_starts.astype(np.int64),
        red_counts=red_counts.astype(np.int64),
        constraints=tuple(e.constraint for e in cg.edges),
        families=tuple(e.family for e in cg.edges),
    )


_STRUCTURE_CACHE_SIZE = 128
_STRUCTURES: "OrderedDict[str, CycleStructure]" = OrderedDict()
_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def compile_cycle_graph(
    cg: ConstraintGraph, key: str | None = None
) -> CompiledCycleGraph:
    """Lower a constraint graph to CSR arrays.

    ``key`` is the structural fingerprint of the originating program (see
    :func:`repro.lint.graphdiag.structure_fingerprint`); when given, the
    shape arrays are looked up in -- or inserted into -- the shared LRU,
    and only the ``a`` vector is extracted from this particular graph.
    Without a key the structure is built uncached.
    """
    structure: CycleStructure | None = None
    if key is not None:
        structure = _STRUCTURES.get(key)
        if structure is not None and (
            structure.n_edges != len(cg.edges)
            or structure.n_nodes != len(cg.nodes)
        ):  # pragma: no cover - fingerprint collision guard
            structure = None
    if structure is None:
        _STATS["misses"] += 1
        structure = _build_structure(cg)
        if key is not None:
            _STRUCTURES[key] = structure
            if len(_STRUCTURES) > _STRUCTURE_CACHE_SIZE:
                _STRUCTURES.popitem(last=False)
                _STATS["evictions"] += 1
    else:
        _STATS["hits"] += 1
        _STRUCTURES.move_to_end(key)  # type: ignore[arg-type]
    m = len(cg.edges)
    a = np.fromiter((e.a for e in cg.edges), dtype=np.float64, count=m)
    return CompiledCycleGraph(
        structure=structure,
        graph=cg,
        a=a,
        a_in=a[structure.order],
        tc_floor=cg.tc_floor,
        tc_cap=cg.tc_cap,
    )


def cycle_cache_stats() -> dict[str, int]:
    """Hit/miss/eviction counters plus current size of the structure cache."""
    return dict(_STATS, size=len(_STRUCTURES))


def clear_cycle_cache() -> None:
    """Drop all cached structures and reset the counters (for tests)."""
    _STRUCTURES.clear()
    for counter in _STATS:
        _STATS[counter] = 0
