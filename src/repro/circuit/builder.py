"""A fluent builder for :class:`repro.circuit.TimingGraph` instances."""

from __future__ import annotations

from typing import Sequence

from repro.circuit.elements import EdgeKind, FlipFlop, Latch
from repro.circuit.graph import DelayArc, TimingGraph
from repro.errors import CircuitError


class CircuitBuilder:
    """Incrementally assemble a circuit, then :meth:`build` a TimingGraph.

    Example (the paper's example 1, Fig. 5)::

        builder = CircuitBuilder(phases=["phi1", "phi2"])
        builder.latch("L1", phase="phi1", setup=10, delay=10)
        builder.latch("L2", phase="phi2", setup=10, delay=10)
        builder.path("L1", "L2", delay=20)
        graph = builder.build()
    """

    def __init__(self, phases: Sequence[str]):
        if not phases:
            raise CircuitError("CircuitBuilder needs at least one phase name")
        self._phases = list(phases)
        self._syncs: list[Latch | FlipFlop] = []
        self._arcs: list[DelayArc] = []
        self._names: set[str] = set()

    @property
    def phases(self) -> list[str]:
        return list(self._phases)

    def latch(
        self,
        name: str,
        phase: str,
        setup: float = 0.0,
        delay: float = 0.0,
        hold: float = 0.0,
    ) -> "CircuitBuilder":
        """Add a level-sensitive latch; returns self for chaining."""
        self._check_new(name, phase)
        self._syncs.append(
            Latch(name=name, phase=phase, setup=setup, delay=delay, hold=hold)
        )
        self._names.add(name)
        return self

    def flipflop(
        self,
        name: str,
        phase: str,
        setup: float = 0.0,
        delay: float = 0.0,
        hold: float = 0.0,
        edge: EdgeKind | str = EdgeKind.RISE,
    ) -> "CircuitBuilder":
        """Add an edge-triggered flip-flop; returns self for chaining."""
        self._check_new(name, phase)
        self._syncs.append(
            FlipFlop(
                name=name,
                phase=phase,
                setup=setup,
                delay=delay,
                hold=hold,
                edge=EdgeKind(edge),
            )
        )
        self._names.add(name)
        return self

    def latches(
        self,
        names: Sequence[str],
        phase: str,
        setup: float = 0.0,
        delay: float = 0.0,
        hold: float = 0.0,
    ) -> "CircuitBuilder":
        """Add several identical latches on the same phase."""
        for name in names:
            self.latch(name, phase, setup=setup, delay=delay, hold=hold)
        return self

    def path(
        self,
        src: str,
        dst: str,
        delay: float,
        min_delay: float = 0.0,
        label: str = "",
    ) -> "CircuitBuilder":
        """Add a combinational path (a ``Delta_{src,dst}`` arc)."""
        self._arcs.append(
            DelayArc(src=src, dst=dst, delay=delay, min_delay=min_delay, label=label)
        )
        return self

    def chain(
        self, names: Sequence[str], delay: float, min_delay: float = 0.0
    ) -> "CircuitBuilder":
        """Add identical arcs along a chain of synchronizers."""
        if len(names) < 2:
            raise CircuitError("chain needs at least two synchronizers")
        for src, dst in zip(names, names[1:]):
            self.path(src, dst, delay, min_delay=min_delay)
        return self

    def build(self) -> TimingGraph:
        """Construct the immutable timing graph; raises on structural errors."""
        return TimingGraph(self._phases, self._syncs, self._arcs)

    def _check_new(self, name: str, phase: str) -> None:
        if name in self._names:
            raise CircuitError(f"duplicate synchronizer name {name!r}")
        if phase not in self._phases:
            raise CircuitError(
                f"unknown phase {phase!r}; declared phases: {self._phases}"
            )
