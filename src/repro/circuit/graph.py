"""The synchronizer-level timing graph: latches plus combinational arcs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import networkx as nx

from repro.circuit.elements import FlipFlop, Latch, Synchronizer
from repro.errors import CircuitError


@dataclass(frozen=True)
class DelayArc:
    """A combinational path from synchronizer ``src`` to synchronizer ``dst``.

    ``delay`` is the paper's long-path delay ``Delta_{src,dst}`` (the latest
    any input change at ``src`` can still be rippling at ``dst``); ``min_delay``
    is the corresponding short-path (contamination) delay used only by the
    hold-time extension.  Arcs between unconnected synchronizer pairs simply
    do not exist (the paper writes ``Delta_ij = -inf`` for those).
    """

    src: str
    dst: str
    delay: float
    min_delay: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise CircuitError(
                f"arc {self.src}->{self.dst}: delay must be >= 0, got {self.delay}"
            )
        if self.min_delay < 0:
            raise CircuitError(
                f"arc {self.src}->{self.dst}: min_delay must be >= 0, "
                f"got {self.min_delay}"
            )
        if self.min_delay > self.delay:
            raise CircuitError(
                f"arc {self.src}->{self.dst}: min_delay {self.min_delay} "
                f"exceeds max delay {self.delay}"
            )


class TimingGraph:
    """Synchronizers and combinational delay arcs, plus the phase list.

    This is the circuit abstraction the paper's formulation works on (its
    Fig. 1): ``l`` clocked synchronizers, each bound to one of the ``k``
    phases of the clock, connected by combinational blocks whose
    latch-to-latch propagation delays are the ``Delta_ji`` parameters.

    The graph stores only *structure and delays*; the concrete clock
    schedule (``Tc``, ``s_i``, ``T_i``) is supplied separately, either as a
    :class:`repro.clocking.ClockSchedule` for analysis or as LP variables
    for optimization.
    """

    def __init__(
        self,
        phase_names: Sequence[str],
        synchronizers: Iterable[Synchronizer] = (),
        arcs: Iterable[DelayArc] = (),
    ):
        if not phase_names:
            raise CircuitError("a circuit needs at least one clock phase")
        if len(set(phase_names)) != len(phase_names):
            raise CircuitError(f"duplicate phase names: {list(phase_names)}")
        self._phase_names: tuple[str, ...] = tuple(phase_names)
        self._phase_index = {n: i for i, n in enumerate(self._phase_names)}
        self._synchronizers: dict[str, Synchronizer] = {}
        self._arcs: dict[tuple[str, str], DelayArc] = {}
        for s in synchronizers:
            self.add_synchronizer(s)
        for a in arcs:
            self.add_arc(a)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_synchronizer(self, sync: Synchronizer) -> None:
        if sync.name in self._synchronizers:
            raise CircuitError(f"duplicate synchronizer name {sync.name!r}")
        if sync.phase not in self._phase_index:
            raise CircuitError(
                f"synchronizer {sync.name!r} references unknown phase "
                f"{sync.phase!r}; known phases: {list(self._phase_names)}"
            )
        self._synchronizers[sync.name] = sync

    def add_arc(self, arc: DelayArc) -> None:
        for endpoint in (arc.src, arc.dst):
            if endpoint not in self._synchronizers:
                raise CircuitError(
                    f"arc {arc.src}->{arc.dst} references unknown "
                    f"synchronizer {endpoint!r}"
                )
        key = (arc.src, arc.dst)
        if key in self._arcs:
            raise CircuitError(
                f"duplicate arc {arc.src}->{arc.dst}; merge parallel paths "
                f"into a single max/min delay pair first"
            )
        self._arcs[key] = arc

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def phase_names(self) -> tuple[str, ...]:
        return self._phase_names

    @property
    def k(self) -> int:
        """Number of clock phases."""
        return len(self._phase_names)

    @property
    def l(self) -> int:  # noqa: E743 - matches the paper's symbol
        """Number of synchronizers."""
        return len(self._synchronizers)

    def phase_index(self, name: str) -> int:
        try:
            return self._phase_index[name]
        except KeyError:
            raise CircuitError(
                f"unknown phase {name!r}; known: {list(self._phase_names)}"
            ) from None

    @property
    def synchronizers(self) -> tuple[Synchronizer, ...]:
        return tuple(self._synchronizers.values())

    @property
    def latches(self) -> tuple[Latch, ...]:
        return tuple(s for s in self._synchronizers.values() if s.is_latch)

    @property
    def flipflops(self) -> tuple[FlipFlop, ...]:
        return tuple(s for s in self._synchronizers.values() if not s.is_latch)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._synchronizers)

    @property
    def arcs(self) -> tuple[DelayArc, ...]:
        return tuple(self._arcs.values())

    def __contains__(self, name: str) -> bool:
        return name in self._synchronizers

    def __getitem__(self, name: str) -> Synchronizer:
        try:
            return self._synchronizers[name]
        except KeyError:
            raise CircuitError(f"unknown synchronizer {name!r}") from None

    def __iter__(self) -> Iterator[Synchronizer]:
        return iter(self._synchronizers.values())

    def __repr__(self) -> str:
        return (
            f"TimingGraph(k={self.k}, synchronizers={self.l}, "
            f"arcs={len(self._arcs)})"
        )

    def arc(self, src: str, dst: str) -> DelayArc | None:
        return self._arcs.get((src, dst))

    def fanin(self, name: str) -> tuple[DelayArc, ...]:
        """All arcs ending at ``name``."""
        if name not in self._synchronizers:
            raise CircuitError(f"unknown synchronizer {name!r}")
        return tuple(a for a in self._arcs.values() if a.dst == name)

    def fanout(self, name: str) -> tuple[DelayArc, ...]:
        """All arcs starting at ``name``."""
        if name not in self._synchronizers:
            raise CircuitError(f"unknown synchronizer {name!r}")
        return tuple(a for a in self._arcs.values() if a.src == name)

    def max_fanin(self) -> int:
        """The paper's ``F``: the maximum number of arcs into any latch."""
        counts: dict[str, int] = {n: 0 for n in self._synchronizers}
        for arc in self._arcs.values():
            counts[arc.dst] += 1
        return max(counts.values(), default=0)

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    def k_matrix(self) -> list[list[int]]:
        """The paper's K matrix (eq. 2) over phase indices.

        ``K[i][j] = 1`` when some combinational block has an input *latch*
        on phase i and an output *latch* on phase j -- i.e. when some arc
        runs between two level-sensitive latches.  Arcs bounded by a
        flip-flop on either end are excluded: a flip-flop is never
        transparent, so such paths create no simultaneous-transparency
        hazard and need no phase-nonoverlap constraint C3.  (This is what
        allows the paper's GaAs case study to overlap phi3 with phi1: the
        pipeline re-enters the phi1 domain only through flip-flops, so
        K_13 = K_31 = 0.)
        """
        k = self.k
        mat = [[0] * k for _ in range(k)]
        for arc in self._arcs.values():
            src, dst = self._synchronizers[arc.src], self._synchronizers[arc.dst]
            if not (src.is_latch and dst.is_latch):
                continue
            mat[self.phase_index(src.phase)][self.phase_index(dst.phase)] = 1
        return mat

    def io_phase_pairs(self) -> list[tuple[int, int]]:
        """The (input, output) phase-index pairs with ``K_ij = 1``."""
        mat = self.k_matrix()
        return [
            (i, j)
            for i in range(self.k)
            for j in range(self.k)
            if mat[i][j]
        ]

    def to_networkx(self) -> nx.DiGraph:
        """The synchronizer connectivity as a networkx digraph.

        Node attributes carry the synchronizer object (key ``sync``); edge
        attributes carry the arc (key ``arc``) and its ``delay``.
        """
        g = nx.DiGraph()
        for name, sync in self._synchronizers.items():
            g.add_node(name, sync=sync)
        for (src, dst), arc in self._arcs.items():
            g.add_edge(src, dst, arc=arc, delay=arc.delay)
        return g

    def feedback_loops(self) -> list[list[str]]:
        """All simple cycles of synchronizers (the paper's feedback loops)."""
        return [list(c) for c in nx.simple_cycles(self.to_networkx())]

    def strongly_connected_components(self) -> list[set[str]]:
        """SCCs of the synchronizer graph (cf. LEADOUT's partitioning)."""
        return [set(c) for c in nx.strongly_connected_components(self.to_networkx())]

    def phases_of(self, names: Iterable[str]) -> set[str]:
        """The set of phases controlling the given synchronizers."""
        return {self[name].phase for name in names}

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def with_arc_delay(self, src: str, dst: str, delay: float) -> "TimingGraph":
        """A copy of the graph with one arc's max delay replaced.

        This is the workhorse of parametric sweeps such as Fig. 7, where
        ``Delta_41`` is varied while everything else stays fixed.
        """
        key = (src, dst)
        if key not in self._arcs:
            raise CircuitError(f"no arc {src}->{dst} to modify")
        old = self._arcs[key]
        new_arc = DelayArc(
            src,
            dst,
            delay,
            min_delay=min(old.min_delay, delay),
            label=old.label,
        )
        arcs = [new_arc if (a.src, a.dst) == key else a for a in self._arcs.values()]
        return TimingGraph(self._phase_names, self._synchronizers.values(), arcs)

    def scaled_delays(self, factor: float) -> "TimingGraph":
        """A copy with every delay, setup and hold multiplied by ``factor``."""
        if factor < 0:
            raise CircuitError(f"scale factor must be >= 0, got {factor}")
        syncs = []
        for s in self._synchronizers.values():
            kwargs = dict(
                name=s.name,
                phase=s.phase,
                setup=s.setup * factor,
                delay=s.delay * factor,
                hold=s.hold * factor,
            )
            if isinstance(s, FlipFlop):
                syncs.append(FlipFlop(edge=s.edge, **kwargs))
            else:
                syncs.append(Latch(**kwargs))
        arcs = [
            DelayArc(a.src, a.dst, a.delay * factor, a.min_delay * factor, a.label)
            for a in self._arcs.values()
        ]
        return TimingGraph(self._phase_names, syncs, arcs)

    def subgraph(self, names: Iterable[str]) -> "TimingGraph":
        """The induced subgraph on the given synchronizers."""
        keep = set(names)
        missing = keep - set(self._synchronizers)
        if missing:
            raise CircuitError(f"unknown synchronizers: {sorted(missing)}")
        syncs = [s for n, s in self._synchronizers.items() if n in keep]
        arcs = [
            a for a in self._arcs.values() if a.src in keep and a.dst in keep
        ]
        return TimingGraph(self._phase_names, syncs, arcs)
