"""Circuit-level timing model: synchronizers and combinational delay arcs.

A circuit, for the purposes of the SMO timing model, is a set of clocked
synchronizers (level-sensitive latches and, as in the paper's GaAs case
study, edge-triggered flip-flops) connected by feedback-free combinational
logic blocks.  Each block is abstracted to its input-latch-to-output-latch
propagation delays ``Delta_ji`` (Section III-B); the structure is captured
by :class:`TimingGraph`.
"""

from repro.circuit.builder import CircuitBuilder
from repro.circuit.elements import EdgeKind, FlipFlop, Latch, Synchronizer
from repro.circuit.generate import random_multiloop_circuit, random_pipeline
from repro.circuit.graph import DelayArc, TimingGraph
from repro.circuit.lump import lump_parallel_latches
from repro.circuit.validate import StructureReport, check_loop_phases, check_structure

__all__ = [
    "Latch",
    "FlipFlop",
    "Synchronizer",
    "EdgeKind",
    "DelayArc",
    "TimingGraph",
    "CircuitBuilder",
    "check_structure",
    "check_loop_phases",
    "StructureReport",
    "lump_parallel_latches",
    "random_pipeline",
    "random_multiloop_circuit",
]
