"""Vector-signal lumping: merge timing-equivalent parallel latches.

Section IV of the paper observes that "by lumping latches corresponding to
vector signals with similar timing (e.g., 32-bit data buses), the number
``l`` can be reasonably small even for large circuits".  This module
implements that reduction: latches with identical timing parameters, phase,
fanin and fanout are collapsed into a single representative, so a 32-bit
register described bit-by-bit costs one latch in the LP instead of 32.
"""

from __future__ import annotations

from repro.circuit.elements import FlipFlop
from repro.circuit.graph import DelayArc, TimingGraph


def _signature(graph: TimingGraph, name: str, group_of: dict[str, str]) -> tuple:
    sync = graph[name]
    kind = "ff" if isinstance(sync, FlipFlop) else "latch"
    edge = sync.edge.value if isinstance(sync, FlipFlop) else ""
    fanin = frozenset(
        (group_of[a.src], a.delay, a.min_delay) for a in graph.fanin(name)
    )
    fanout = frozenset(
        (group_of[a.dst], a.delay, a.min_delay) for a in graph.fanout(name)
    )
    return (kind, edge, sync.phase, sync.setup, sync.delay, sync.hold, fanin, fanout)


def lump_parallel_latches(
    graph: TimingGraph, max_rounds: int = 64
) -> tuple[TimingGraph, dict[str, str]]:
    """Collapse timing-equivalent synchronizers.

    Two synchronizers are merged when they have the same kind, phase and
    timing parameters and connect to the same *groups* with the same arc
    delays.  Grouping is refined to a fixpoint (a partition-refinement /
    bisimulation computation), so entire parallel bit-slices collapse even
    when they reference each other.

    Returns the reduced graph and a mapping from original synchronizer name
    to the name of its representative in the reduced graph.
    """
    # Start with everything in one group per (kind, phase, params) and refine.
    group_of = {name: "" for name in graph.names}
    for _ in range(max_rounds):
        sigs = {name: _signature(graph, name, group_of) for name in graph.names}
        # Representative = lexicographically first member of each signature set.
        by_sig: dict[tuple, list[str]] = {}
        for name, sig in sigs.items():
            by_sig.setdefault(sig, []).append(name)
        new_group = {}
        for members in by_sig.values():
            rep = min(members)
            for m in members:
                new_group[m] = rep
        if new_group == group_of:
            break
        group_of = new_group
    else:  # pragma: no cover - max_rounds is far above any realistic depth
        raise RuntimeError("lumping did not converge")

    reps = sorted(set(group_of.values()))
    syncs = [graph[r] for r in reps]
    merged: dict[tuple[str, str], DelayArc] = {}
    for arc in graph.arcs:
        key = (group_of[arc.src], group_of[arc.dst])
        prev = merged.get(key)
        if prev is None:
            merged[key] = DelayArc(
                key[0], key[1], arc.delay, arc.min_delay, arc.label
            )
        else:
            merged[key] = DelayArc(
                key[0],
                key[1],
                max(prev.delay, arc.delay),
                min(prev.min_delay, arc.min_delay),
                prev.label or arc.label,
            )
    reduced = TimingGraph(graph.phase_names, syncs, merged.values())
    return reduced, group_of
