"""Clocked synchronizing elements: level-sensitive latches and flip-flops."""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.errors import CircuitError


class EdgeKind(str, enum.Enum):
    """Triggering edge of an edge-triggered flip-flop."""

    RISE = "rise"  # triggers at the start of its phase's active interval
    FALL = "fall"  # triggers at the end of its phase's active interval


@dataclass(frozen=True)
class Synchronizer:
    """Common data for all clocked storage elements.

    Parameters mirror the paper's per-latch quantities:

    * ``phase`` -- the controlling clock phase ``p_i`` (a phase name),
    * ``setup`` -- the setup time ``Delta_DC`` between the data input and the
      trailing clock edge,
    * ``delay`` -- the propagation delay ``Delta_DQ`` from data input to data
      output while the element is transparent (for flip-flops this plays the
      clock-to-Q role),
    * ``hold``  -- a hold requirement used only by the short-path extension
      (:mod:`repro.core.shortpath`); it does not appear in the paper's
      long-path formulation.
    """

    name: str
    phase: str
    setup: float = 0.0
    delay: float = 0.0
    hold: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise CircuitError("synchronizer must have a non-empty name")
        if not self.phase:
            raise CircuitError(f"synchronizer {self.name!r} must name a clock phase")
        if self.setup < 0:
            raise CircuitError(f"{self.name!r}: setup must be >= 0, got {self.setup}")
        if self.delay < 0:
            raise CircuitError(f"{self.name!r}: delay must be >= 0, got {self.delay}")
        if self.hold < 0:
            raise CircuitError(f"{self.name!r}: hold must be >= 0, got {self.hold}")

    @property
    def is_latch(self) -> bool:
        raise NotImplementedError

    def with_phase(self, phase: str) -> "Synchronizer":
        return replace(self, phase=phase)


@dataclass(frozen=True)
class Latch(Synchronizer):
    """A level-sensitive D latch, transparent while its phase is active.

    The paper assumes ``Delta_DQ >= Delta_DC`` (the latch's propagation delay
    dominates its setup time); :func:`repro.circuit.validate.check_structure`
    verifies this.
    """

    @property
    def is_latch(self) -> bool:
        return True


@dataclass(frozen=True)
class FlipFlop(Synchronizer):
    """An edge-triggered flip-flop.

    The GaAs MIPS case study (Section V) mixes latches with flip-flops; a
    flip-flop samples its input at one edge of its phase and launches the
    new output ``delay`` later.  In the SMO variable scheme this pins the
    departure time ``D_i`` to the triggering edge instead of letting it
    float over the active interval, and requires the data to be set up
    *before the triggering edge* rather than before the trailing edge.
    """

    edge: EdgeKind = EdgeKind.RISE

    def __post_init__(self) -> None:
        super().__post_init__()
        if not isinstance(self.edge, EdgeKind):
            object.__setattr__(self, "edge", EdgeKind(self.edge))

    @property
    def is_latch(self) -> bool:
        return False
