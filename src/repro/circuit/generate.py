"""Random circuit generators for property tests and scaling benchmarks.

The generators only ever produce circuits that satisfy the paper's
structural preconditions: every feedback loop crosses at least two clock
phases, delays are nonnegative and ``Delta_DQ >= Delta_DC`` for every
latch.  They are deterministic given a seed.
"""

from __future__ import annotations

import random

from repro.circuit.builder import CircuitBuilder
from repro.circuit.graph import TimingGraph
from repro.errors import CircuitError


def _phase_names(k: int) -> list[str]:
    return [f"phi{i + 1}" for i in range(k)]


def random_pipeline(
    n_stages: int,
    k: int = 2,
    seed: int = 0,
    close_loop: bool = True,
    delay_range: tuple[float, float] = (5.0, 60.0),
    latch_delay: float = 10.0,
    setup: float = 10.0,
) -> TimingGraph:
    """A single loop of ``n_stages`` latches on a k-phase clock.

    Stage ``i`` is clocked by phase ``i mod k``; consecutive stages are
    connected by a random combinational delay, and (by default) the last
    stage feeds back to the first, forming the canonical latch ring of the
    paper's example 1.
    """
    if n_stages < 1:
        raise CircuitError(f"need at least one stage, got {n_stages}")
    if k < 2 and close_loop and n_stages >= 1:
        raise CircuitError(
            "a closed latch loop needs k >= 2 phases to satisfy the "
            "feedback-loop nonoverlap requirement"
        )
    rng = random.Random(seed)
    phases = _phase_names(k)
    builder = CircuitBuilder(phases)
    names = [f"L{i + 1}" for i in range(n_stages)]
    for i, name in enumerate(names):
        builder.latch(name, phase=phases[i % k], setup=setup, delay=latch_delay)
    lo, hi = delay_range
    for src, dst in zip(names, names[1:]):
        builder.path(src, dst, delay=rng.uniform(lo, hi))
    if close_loop and n_stages > 1:
        builder.path(names[-1], names[0], delay=rng.uniform(lo, hi))
    return builder.build()


def random_multiloop_circuit(
    n_latches: int,
    n_extra_arcs: int = 0,
    k: int = 2,
    seed: int = 0,
    delay_range: tuple[float, float] = (5.0, 60.0),
    latch_delay: float = 10.0,
    setup: float = 10.0,
) -> TimingGraph:
    """A loop of latches plus random forward/backward chords.

    Extra arcs are only added between latches on *different* phases whose
    phase indices are adjacent modulo k, which keeps every induced loop
    compliant with the nonoverlap requirement under conventional
    nonoverlapping k-phase clocks while still producing interacting loops
    (the structure the paper's example 2 illustrates).
    """
    if n_latches < 2:
        raise CircuitError(f"need at least two latches, got {n_latches}")
    if k < 2:
        raise CircuitError("multiloop circuits need k >= 2 phases")
    rng = random.Random(seed)
    base = random_pipeline(
        n_latches,
        k=k,
        seed=seed,
        close_loop=True,
        delay_range=delay_range,
        latch_delay=latch_delay,
        setup=setup,
    )
    builder = CircuitBuilder(list(base.phase_names))
    for sync in base.synchronizers:
        builder.latch(
            sync.name,
            phase=sync.phase,
            setup=sync.setup,
            delay=sync.delay,
            hold=sync.hold,
        )
    existing = set()
    for arc in base.arcs:
        builder.path(arc.src, arc.dst, arc.delay, arc.min_delay)
        existing.add((arc.src, arc.dst))

    names = list(base.names)
    lo, hi = delay_range
    attempts = 0
    added = 0
    while added < n_extra_arcs and attempts < 50 * max(1, n_extra_arcs):
        attempts += 1
        src = rng.choice(names)
        dst = rng.choice(names)
        if src == dst or (src, dst) in existing:
            continue
        pi = base.phase_index(base[src].phase)
        pj = base.phase_index(base[dst].phase)
        if (pi + 1) % k != pj:
            continue  # keep arcs phase-adjacent so loops stay legal
        builder.path(src, dst, delay=rng.uniform(lo, hi))
        existing.add((src, dst))
        added += 1
    return builder.build()
