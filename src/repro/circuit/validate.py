"""Structural validation of circuits against the paper's preconditions."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.graph import TimingGraph
from repro.clocking.schedule import ClockSchedule
from repro.clocking.waveform import simultaneous_and_is_zero
from repro.errors import PhaseOverlapError


@dataclass
class StructureReport:
    """Outcome of :func:`check_structure`."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_on_error(self) -> None:
        if self.errors:
            raise PhaseOverlapError("; ".join(self.errors))


def check_loop_phases(
    graph: TimingGraph, schedule: ClockSchedule | None = None
) -> list[str]:
    """Check the feedback-loop phase requirement of Section III.

    The paper requires the logical AND of the phases controlling each
    feedback loop to be identically zero.  Two checks are performed:

    * **Structural** (always): a loop consisting entirely of level-sensitive
      latches on a *single* phase can never satisfy the requirement -- while
      that phase is active the whole loop is transparent and oscillates.
      Loops containing a flip-flop are exempt, since a flip-flop is never
      transparent.
    * **Against a schedule** (when one is given): the phases of each
      all-latch loop must never be simultaneously active under the concrete
      schedule.

    Returns a list of human-readable violation messages.
    """
    problems: list[str] = []
    for loop in graph.feedback_loops():
        if any(not graph[name].is_latch for name in loop):
            continue  # a flip-flop breaks the transparency chain
        phases = graph.phases_of(loop)
        loop_desc = " -> ".join(loop + [loop[0]])
        if len(phases) == 1:
            (only,) = phases
            problems.append(
                f"latch loop {loop_desc} is controlled by the single phase "
                f"{only!r}; the loop is transparent whenever {only!r} is active"
            )
            continue
        if schedule is not None and not simultaneous_and_is_zero(schedule, phases):
            problems.append(
                f"latch loop {loop_desc}: phases {sorted(phases)} are "
                f"simultaneously active under the given schedule"
            )
    return problems


#: Registry codes backing :func:`check_structure`, in legacy report order.
_LEGACY_ERROR_CODES = ("LINT101", "LINT103")
_LEGACY_WARNING_CODES = ("LINT111", "LINT112")


def check_structure(
    graph: TimingGraph, schedule: ClockSchedule | None = None
) -> StructureReport:
    """Run all structural checks; returns a :class:`StructureReport`.

    The checks are implemented as registered rules of
    :mod:`repro.lint.rules` (codes LINT101/103 for errors, LINT111/112 for
    warnings); this function runs exactly those and re-packages their
    findings with the historical message strings.

    Errors (violations of the paper's stated assumptions):

    * a level-sensitive latch loop on a single phase (or, given a schedule,
      on simultaneously-active phases);
    * a latch whose propagation delay ``Delta_DQ`` is smaller than its setup
      time ``Delta_DC`` (the paper assumes ``Delta_DQ >= Delta_DC``).

    Warnings (legal but often unintended):

    * synchronizers with no fanin and no fanout;
    * clock phases that control no synchronizer.
    """
    # Local import: repro.lint.rules imports check_loop_phases from here.
    from repro.lint.rules import run_rules

    report = StructureReport()
    findings = run_rules(
        graph,
        schedule,
        codes=_LEGACY_ERROR_CODES + _LEGACY_WARNING_CODES,
    )
    for finding in findings:
        if finding.code in _LEGACY_ERROR_CODES:
            report.errors.append(finding.message)
        else:
            report.warnings.append(finding.message)
    return report
