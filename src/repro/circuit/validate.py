"""Structural validation of circuits against the paper's preconditions."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.graph import TimingGraph
from repro.clocking.schedule import ClockSchedule
from repro.clocking.waveform import simultaneous_and_is_zero
from repro.errors import PhaseOverlapError


@dataclass
class StructureReport:
    """Outcome of :func:`check_structure`."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_on_error(self) -> None:
        if self.errors:
            raise PhaseOverlapError("; ".join(self.errors))


def check_loop_phases(
    graph: TimingGraph, schedule: ClockSchedule | None = None
) -> list[str]:
    """Check the feedback-loop phase requirement of Section III.

    The paper requires the logical AND of the phases controlling each
    feedback loop to be identically zero.  Two checks are performed:

    * **Structural** (always): a loop consisting entirely of level-sensitive
      latches on a *single* phase can never satisfy the requirement -- while
      that phase is active the whole loop is transparent and oscillates.
      Loops containing a flip-flop are exempt, since a flip-flop is never
      transparent.
    * **Against a schedule** (when one is given): the phases of each
      all-latch loop must never be simultaneously active under the concrete
      schedule.

    Returns a list of human-readable violation messages.
    """
    problems: list[str] = []
    for loop in graph.feedback_loops():
        if any(not graph[name].is_latch for name in loop):
            continue  # a flip-flop breaks the transparency chain
        phases = graph.phases_of(loop)
        loop_desc = " -> ".join(loop + [loop[0]])
        if len(phases) == 1:
            (only,) = phases
            problems.append(
                f"latch loop {loop_desc} is controlled by the single phase "
                f"{only!r}; the loop is transparent whenever {only!r} is active"
            )
            continue
        if schedule is not None and not simultaneous_and_is_zero(schedule, phases):
            problems.append(
                f"latch loop {loop_desc}: phases {sorted(phases)} are "
                f"simultaneously active under the given schedule"
            )
    return problems


def check_structure(
    graph: TimingGraph, schedule: ClockSchedule | None = None
) -> StructureReport:
    """Run all structural checks; returns a :class:`StructureReport`.

    Errors (violations of the paper's stated assumptions):

    * a level-sensitive latch loop on a single phase (or, given a schedule,
      on simultaneously-active phases);
    * a latch whose propagation delay ``Delta_DQ`` is smaller than its setup
      time ``Delta_DC`` (the paper assumes ``Delta_DQ >= Delta_DC``).

    Warnings (legal but often unintended):

    * synchronizers with no fanin and no fanout;
    * clock phases that control no synchronizer.
    """
    report = StructureReport()
    report.errors.extend(check_loop_phases(graph, schedule))

    for sync in graph.latches:
        if sync.delay < sync.setup:
            report.errors.append(
                f"latch {sync.name!r}: Delta_DQ = {sync.delay:g} is smaller "
                f"than Delta_DC = {sync.setup:g}; the paper assumes "
                f"Delta_DQ >= Delta_DC"
            )

    used_phases = {s.phase for s in graph.synchronizers}
    for phase in graph.phase_names:
        if phase not in used_phases:
            report.warnings.append(f"phase {phase!r} controls no synchronizer")

    for name in graph.names:
        if not graph.fanin(name) and not graph.fanout(name):
            report.warnings.append(
                f"synchronizer {name!r} is isolated (no fanin, no fanout)"
            )
    return report
