"""Write :class:`LinearProgram` instances as CPLEX LP and MPS files."""

from __future__ import annotations

import re

from repro.lp.model import LinearProgram, Sense

#: LP-format identifiers may not contain these; they are replaced by '_'.
_BAD_CHARS = re.compile(r"[^A-Za-z0-9_.]")


def _clean(name: str) -> str:
    """Sanitize a variable/constraint name for solver file formats."""
    cleaned = _BAD_CHARS.sub("_", name)
    if cleaned[0].isdigit():
        cleaned = "v_" + cleaned
    return cleaned


def _terms(expr_terms: dict[str, float], rename: dict[str, str]) -> str:
    parts: list[str] = []
    for name in sorted(expr_terms):
        coeff = expr_terms[name]
        sign = "-" if coeff < 0 else "+"
        mag = abs(coeff)
        term = rename[name] if mag == 1.0 else f"{mag:.12g} {rename[name]}"
        if not parts and sign == "+":
            parts.append(term)
        else:
            parts.append(f"{sign} {term}")
    return " ".join(parts) if parts else "0 " + next(iter(rename.values()))


def to_cplex_lp(program: LinearProgram, name: str | None = None) -> str:
    """Serialize in the CPLEX LP file format.

    Variables keep their default nonnegative bounds; free variables get a
    ``-inf <= v <= +inf`` line in the Bounds section.  Names are sanitized
    (``D[L1]`` becomes ``D_L1_``) -- deterministically, so files diff
    cleanly across runs.
    """
    rename = {v: _clean(v) for v in program.variables}
    lines = [
        f"\\ {name or program.name}",
        "Minimize",
        f" obj: {_terms(program.objective.terms, rename)}",
    ]
    lines.append("Subject To")
    for con in program.constraints:
        op = {Sense.LE: "<=", Sense.GE: ">=", Sense.EQ: "="}[con.sense]
        lines.append(
            f" {_clean(con.name)}: {_terms(con.lhs.terms, rename)} {op} "
            f"{con.rhs:.12g}"
        )
    free = [rename[v] for v in program.free_variables]
    if free:
        lines.append("Bounds")
        for v in sorted(free):
            lines.append(f" {v} free")
    lines.append("End")
    return "\n".join(lines) + "\n"


def to_mps(program: LinearProgram, name: str | None = None) -> str:
    """Serialize in the (free-form) MPS format."""
    rename = {v: _clean(v) for v in program.variables}
    rows = [("N", "COST")]
    senses = {Sense.LE: "L", Sense.GE: "G", Sense.EQ: "E"}
    for con in program.constraints:
        rows.append((senses[con.sense], _clean(con.name)))

    lines = [f"NAME {name or program.name}", "ROWS"]
    for kind, row_name in rows:
        lines.append(f" {kind} {row_name}")

    lines.append("COLUMNS")
    for variable in program.variables:
        col = rename[variable]
        coeff = program.objective.terms.get(variable)
        if coeff:
            lines.append(f" {col} COST {coeff:.12g}")
        for con in program.constraints:
            c = con.lhs.terms.get(variable)
            if c:
                lines.append(f" {col} {_clean(con.name)} {c:.12g}")

    lines.append("RHS")
    for con in program.constraints:
        if con.rhs:
            lines.append(f" RHS {_clean(con.name)} {con.rhs:.12g}")

    free = sorted(rename[v] for v in program.free_variables)
    if free:
        lines.append("BOUNDS")
        for v in free:
            lines.append(f" FR BND {v}")
    lines.append("ENDATA")
    return "\n".join(lines) + "\n"
