"""Render circuits as Graphviz digraphs."""

from __future__ import annotations

from repro.circuit.elements import FlipFlop
from repro.circuit.graph import TimingGraph

#: One fill color per phase index, cycled.
_PALETTE = ["#cfe2f3", "#d9ead3", "#fff2cc", "#f4cccc", "#d9d2e9", "#fce5cd"]


def _quote(text: str) -> str:
    return '"' + text.replace('"', r"\"") + '"'


def to_dot(graph: TimingGraph, name: str = "circuit") -> str:
    """A Graphviz digraph: latches as boxes, flip-flops as double boxes.

    Nodes are colored by controlling phase; edges are labeled with the
    combinational max delay (and min delay when nonzero).  The output is
    deterministic, so it can be committed as documentation.
    """
    lines = [
        f"digraph {_quote(name)} {{",
        "  rankdir=LR;",
        '  node [style=filled, fontname="Helvetica"];',
    ]
    for idx, phase in enumerate(graph.phase_names):
        color = _PALETTE[idx % len(_PALETTE)]
        lines.append(
            f"  subgraph cluster_{idx} {{ label={_quote(phase)}; "
            f"style=dashed; color=gray;"
        )
        for sync in graph.synchronizers:
            if sync.phase != phase:
                continue
            shape = "box" if not isinstance(sync, FlipFlop) else "doubleoctagon"
            label = f"{sync.name}\\nDQ={sync.delay:g} DC={sync.setup:g}"
            if isinstance(sync, FlipFlop):
                label += f"\\n{sync.edge.value}-edge FF"
            lines.append(
                f"    {_quote(sync.name)} [shape={shape}, "
                f"fillcolor={_quote(color)}, label={_quote(label)}];"
            )
        lines.append("  }")
    for arc in graph.arcs:
        label = f"{arc.delay:g}"
        if arc.min_delay:
            label += f" ({arc.min_delay:g} min)"
        if arc.label:
            label = f"{arc.label}: {label}"
        lines.append(
            f"  {_quote(arc.src)} -> {_quote(arc.dst)} [label={_quote(label)}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
