"""Interchange exports: LP/MPS constraint files and Graphviz circuit views.

The SMO constraint systems this library builds are plain linear programs;
:mod:`repro.export.lpformat` writes them in the CPLEX LP and fixed MPS
formats so they can be handed to any industrial solver, and
:mod:`repro.export.dot` renders circuits as Graphviz digraphs for
documentation and debugging.
"""

from repro.export.dot import to_dot
from repro.export.lpformat import to_cplex_lp, to_mps

__all__ = ["to_cplex_lp", "to_mps", "to_dot"]
