"""Persistent content-addressed result store (SQLite, WAL mode).

The store maps canonical job keys (see :func:`repro.engine.jobspec.job_key`)
to JSON-serialized :class:`~repro.engine.jobspec.JobResult` rows.  It is the
durable sibling of the in-process :class:`~repro.engine.cache.ResultCache`:
a server restart -- or a fresh CLI invocation pointed at the same file --
serves previously solved instances without touching the LP.

Design points:

* **Content addressing.**  The primary key is the sha256 content hash of
  the job signature, so two processes that solve the same instance write
  the same row; ``INSERT OR REPLACE`` makes concurrent duplicate writes
  idempotent rather than conflicting.
* **WAL mode.**  Readers never block the single writer and vice versa, so
  a running server and an ad-hoc ``repro batch`` can share one store file.
  A ``busy_timeout`` absorbs short write collisions between processes.
* **Schema versioning.**  The store records both its own table layout
  (:data:`STORE_SCHEMA_VERSION`) and the job-key semantics it was written
  under (:data:`~repro.engine.jobspec.SIGNATURE_VERSION`).  Opening a
  store written under different semantics raises
  :class:`StoreVersionError` -- stale keys must never be *misread* as
  current ones.
* **Corrupted-row recovery.**  A row whose JSON payload no longer parses
  (torn write, manual edit) is dropped and counted, never fatal: content
  addressing means the row can simply be recomputed.

:class:`StoreBackedCache` layers the engine's LRU in front of a store and
is a drop-in :class:`~repro.engine.cache.ResultCache`, which is how both
the server and the CLI ``batch`` path adopt persistence without engine
changes.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass

from repro.engine.cache import ResultCache
from repro.engine.jobspec import SIGNATURE_VERSION, JobResult
from repro.errors import ReproError

#: Version of the SQLite table layout itself (not the job-key semantics).
STORE_SCHEMA_VERSION = 1

#: File extensions routed to the SQLite store by :func:`open_cache`.
SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


class StoreError(ReproError):
    """A result-store operation failed."""


class StoreVersionError(StoreError):
    """The on-disk store was written under incompatible version semantics."""


@dataclass(frozen=True)
class StoreStats:
    """Lookup/write accounting for one :class:`ResultStore` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt_dropped: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def __str__(self) -> str:
        text = (
            f"{self.hits} hits / {self.misses} misses "
            f"({100.0 * self.hit_rate:.1f}% of {self.lookups} lookups), "
            f"{self.writes} writes"
        )
        if self.corrupt_dropped:
            text += f", {self.corrupt_dropped} corrupt rows dropped"
        return text


class ResultStore:
    """A persistent, content-addressed map from job keys to results.

    One instance owns one SQLite connection; all operations are serialized
    behind an internal lock, so a store can be shared by the asyncio event
    loop and executor threads.  Cross-*process* sharing goes through
    SQLite itself (WAL + busy timeout) -- open one instance per process.
    """

    def __init__(
        self,
        path: str,
        signature_version: int = SIGNATURE_VERSION,
        busy_timeout: float = 5.0,
    ) -> None:
        self.path = path
        self.signature_version = signature_version
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._corrupt = 0
        self._closed = False
        try:
            self._conn = sqlite3.connect(
                path, timeout=busy_timeout, check_same_thread=False
            )
        except sqlite3.Error as err:  # unreadable file / bad directory
            raise StoreError(f"cannot open result store {path!r}: {err}") from err
        try:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._init_schema()
        except sqlite3.DatabaseError as err:
            self._conn.close()
            raise StoreError(
                f"{path!r} is not a usable result store: {err}"
            ) from err

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------
    def _init_schema(self) -> None:
        conn = self._conn
        with conn:  # one transaction: create-or-verify must be atomic
            conn.execute(
                "CREATE TABLE IF NOT EXISTS meta (k TEXT PRIMARY KEY, v TEXT)"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                " key TEXT PRIMARY KEY,"
                " kind TEXT NOT NULL,"
                " value REAL,"
                " payload TEXT NOT NULL,"
                " created REAL NOT NULL)"
            )
            rows = dict(conn.execute("SELECT k, v FROM meta"))
            if not rows:
                conn.execute(
                    "INSERT INTO meta (k, v) VALUES (?, ?), (?, ?)",
                    (
                        "store_schema",
                        str(STORE_SCHEMA_VERSION),
                        "signature_version",
                        str(self.signature_version),
                    ),
                )
                return
        self._check_version(rows, "store_schema", STORE_SCHEMA_VERSION)
        self._check_version(rows, "signature_version", self.signature_version)

    def _check_version(self, rows: dict, key: str, expected: int) -> None:
        found = rows.get(key)
        if found != str(expected):
            self._conn.close()
            raise StoreVersionError(
                f"result store {self.path!r} was written with "
                f"{key}={found!r}, this build expects {expected}; "
                "use a fresh store file (keys are not comparable "
                "across versions)"
            )

    # ------------------------------------------------------------------
    # Mapping operations
    # ------------------------------------------------------------------
    def get(self, key: str) -> JobResult | None:
        """Look up a key; corrupted rows are dropped and count as misses."""
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM results WHERE key = ?", (key,)
            ).fetchone()
            if row is None:
                self._misses += 1
                return None
            try:
                result = JobResult.from_dict(json.loads(row[0]))
            except (json.JSONDecodeError, KeyError, TypeError):
                # A torn or hand-mangled row: recovery is deletion -- the
                # content hash guarantees it can simply be recomputed.
                self._conn.execute("DELETE FROM results WHERE key = ?", (key,))
                self._conn.commit()
                self._corrupt += 1
                self._misses += 1
                return None
            self._hits += 1
            result.cached = True
            return result

    def put(self, key: str, result: JobResult) -> None:
        """Insert (or idempotently replace) one result; failures not stored."""
        if not result.ok:
            return
        blob = json.dumps(result.to_dict(), separators=(",", ":"))
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO results "
                "(key, kind, value, payload, created) VALUES (?, ?, ?, ?, ?)",
                (key, result.kind, result.value, blob, time.time()),
            )
            self._conn.commit()
            self._writes += 1

    def __contains__(self, key: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM results WHERE key = ?", (key,)
            ).fetchone()
        return row is not None

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()
        return int(count)

    def keys(self) -> list[str]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT key FROM results ORDER BY created"
            ).fetchall()
        return [r[0] for r in rows]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Force a WAL checkpoint so every write is in the main db file."""
        with self._lock:
            if self._closed:
                return  # close() already checkpointed via commit+close
            self._conn.commit()
            self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._conn.commit()
            finally:
                self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def stats(self) -> StoreStats:
        return StoreStats(
            hits=self._hits,
            misses=self._misses,
            writes=self._writes,
            corrupt_dropped=self._corrupt,
        )


class StoreBackedCache(ResultCache):
    """The engine LRU with a persistent :class:`ResultStore` behind it.

    Lookups fall through memory to the store (promoting store hits into
    the LRU); writes go to both layers.  A drop-in
    :class:`~repro.engine.cache.ResultCache`, so ``Engine(cache=...)``
    gains durable results with no engine changes.  Thread-safe: the serve
    layer executes sweep jobs on worker threads that share one cache.
    """

    def __init__(self, store: ResultStore, max_entries: int = 4096) -> None:
        super().__init__(max_entries=max_entries)
        self.store = store
        self.path = store.path  # Engine.save_cache persists via this
        self._rlock = threading.RLock()

    def get(self, key: str) -> JobResult | None:
        with self._rlock:
            hit = super().get(key)
            if hit is not None:
                return hit
            promoted = self.store.get(key)
            if promoted is None:
                return None
            # Reclassify: the combined cache *hit*, even though the memory
            # layer missed (stats drive the report's hit-rate line).
            self._misses -= 1
            self._hits += 1
            super().put(key, promoted)
            promoted.cached = True
            return promoted

    def put(self, key: str, result: JobResult) -> None:
        with self._rlock:
            super().put(key, result)
        self.store.put(key, result)

    def save(self, path: str | None = None) -> str:
        """Writes are already durable; checkpoint the WAL and report the path."""
        self.store.flush()
        return self.store.path


def open_cache(
    path: str | None, max_entries: int = 4096
) -> ResultCache:
    """A result cache for ``path``: SQLite-backed for store suffixes, JSON else.

    ``repro batch --cache results.sqlite`` and the server share persistent
    stores through this helper; a ``.json`` (or suffix-less) path keeps the
    original load-at-start / save-at-exit JSON behavior.
    """
    if path and path.endswith(SQLITE_SUFFIXES):
        return StoreBackedCache(ResultStore(path), max_entries=max_entries)
    return ResultCache(max_entries=max_entries, path=path)
