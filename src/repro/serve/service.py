"""The analysis service: async job management over the batch engine.

:class:`AnalysisService` is the framework-free core of ``repro serve`` --
the HTTP layer (:mod:`repro.serve.http`) is a thin codec over it, and
tests drive it directly.  One service instance owns:

* a **two-level result cache**: the engine's in-memory LRU in front of an
  optional persistent :class:`~repro.serve.store.ResultStore`, both keyed
  by the canonical job content hash;
* a **coalescing map**: concurrent requests for the same key await one
  shared computation instead of executing it N times (the admission
  order is memory -> store -> in-flight -> execute);
* a **thread-pool executor** running the engine's pure
  :func:`~repro.engine.execute.execute_job` (sweeps run a private
  serial engine whose cache is layered over the shared store, so grid
  points persist too);
* **shared warm-start state**: optimal bases are kept per circuit family
  (the job key with the arc override stripped) in
  :class:`~repro.core.parametric.BasisChain` instances, so repeated
  requests against the same circuit warm-start across requests exactly
  like grid points warm-start within one sweep -- and the PR 4 structure
  caches are process-global, so they are shared for free;
* a **lint admission gate**: structurally broken circuits are rejected
  before they reach the executor (provably infeasible pinned-clock jobs
  are additionally short-circuited inside the executor, as in batch).

Every job runs under a private per-thread tracer; its recorded span tree
is bridged into the job's progress-event stream (:mod:`repro.serve.events`)
for SSE consumers.  All service state lives on the event loop; only the
pure job execution leaves it, so no locks guard the maps.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import AsyncIterator, Callable, SupportsFloat, TypeVar, cast

from repro.core.parametric import BasisChain
from repro.engine.cache import ResultCache
from repro.engine.execute import execute_job
from repro.engine.jobspec import Job, JobResult, MinimizeJob, SweepJob, job_key
from repro.engine.runner import Engine
from repro.errors import ReproError
from repro.lint import diagnose, run_rules
from repro.lp.backends import supports_warm_start
from repro.lp.basis import Basis
from repro.obs import prometheus_text
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import Tracer, use_tracer
from repro.serve.events import result_events
from repro.serve.protocol import job_from_request
from repro.serve.store import ResultStore, StoreBackedCache


_T = TypeVar("_T")


class ServiceUnavailableError(ReproError):
    """The service is draining and no longer admits jobs (HTTP 503)."""


def latency_percentiles(seconds: list[float]) -> dict[str, float]:
    """p50/p95/p99 of a latency sample, by linear interpolation.

    The histogram-less fallback for the /metrics percentiles (used until
    the ``serve_job_seconds`` histogram has observations).  Linear
    interpolation between the two straddling order statistics -- the
    earlier nearest-rank rounding (``int(round(q * last))``) collapsed
    p95/p99 onto the max for any sample smaller than ~10 points.
    """
    if not seconds:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    ordered = sorted(seconds)
    last = len(ordered) - 1

    def rank(q: float) -> float:
        position = q * last
        lower = int(position)
        upper = min(last, lower + 1)
        fraction = position - lower
        return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction

    return {"p50": rank(0.50), "p95": rank(0.95), "p99": rank(0.99)}


class ServiceStats:
    """Monotonic counters for one service instance, backed by a registry.

    Formerly a plain dataclass of ints; the storage now lives in a
    private :class:`~repro.obs.metrics.MetricsRegistry` so the /metrics
    exposition, the flat :meth:`AnalysisService.counters` dict and these
    attributes all read the same values.  Attribute syntax is preserved
    (``stats.requests += 1`` still works) via ``__getattr__``/
    ``__setattr__`` mapping each stat onto its registry counter.
    """

    # Real instance attributes (set via object.__setattr__ below), declared
    # so attribute reads resolve to their own types rather than through
    # the int-returning counter __getattr__.
    registry: MetricsRegistry
    job_seconds_sum: float
    latencies: deque

    #: attribute -> registry counter name (also the exposition name).
    _COUNTERS = {
        "requests": "serve_requests_total",
        "rejected": "serve_rejected_total",
        "executed": "serve_executed_total",
        "coalesced": "serve_coalesced_total",
        "memory_hits": "serve_memory_hits_total",
        "store_hits": "serve_store_hits_total",
        "completed": "serve_completed_total",
        "failed": "serve_failed_total",
        "lp_solves": "serve_lp_solves_total",
        "lp_pivots": "serve_lp_pivots_total",
    }

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        object.__setattr__(
            self, "registry", registry or MetricsRegistry(enabled=True)
        )
        #: Wall seconds summed over finished jobs (the histogram's _sum
        #: twin; kept as a plain attribute so the exposition has exactly
        #: one serve_job_seconds_sum series -- the histogram's).
        object.__setattr__(self, "job_seconds_sum", 0.0)
        #: Rolling window of recent end-to-end job latencies (seconds):
        #: the histogram-less percentile fallback.
        object.__setattr__(self, "latencies", deque(maxlen=512))

    def __getattr__(self, name: str) -> int:
        metric_name = ServiceStats._COUNTERS.get(name)
        if metric_name is None:
            raise AttributeError(name)
        metric = self.registry.find(metric_name)
        return int(metric.value) if metric is not None else 0

    def __setattr__(self, name: str, value: object) -> None:
        metric_name = ServiceStats._COUNTERS.get(name)
        if metric_name is None:
            object.__setattr__(self, name, value)
            return
        numeric = float(cast(SupportsFloat, value))
        self.registry.counter(metric_name).value = numeric


#: Terminal job statuses.
_TERMINAL = ("done", "failed", "rejected")


class JobRecord:
    """One submitted job: identity, lifecycle state, and its event feed."""

    def __init__(self, job_id: str, key: str, kind: str, label: str) -> None:
        self.id = job_id
        self.key = key
        self.kind = kind
        self.label = label
        self.status = "queued"
        self.source: str | None = None  # memory|store|coalesced|executed
        self.created = time.time()
        self.finished_at: float | None = None
        self.result: JobResult | None = None
        self.error: str | None = None
        self.events: list[dict] = []
        self.task: asyncio.Task | None = None
        self._signal = asyncio.Event()
        self.emit("queued", key=key[:12], kind=kind)

    # -- event feed -----------------------------------------------------
    def emit(self, name: str, **attrs: object) -> None:
        self.events.append(
            {"seq": len(self.events), "ts": time.time(), "event": name, **attrs}
        )
        self._signal.set()

    def extend_events(self, bridged: list[dict]) -> None:
        for event in bridged:
            self.events.append({"seq": len(self.events), **event})
        self._signal.set()

    async def stream_events(self, since: int = 0) -> AsyncIterator[dict]:
        """Yield event dicts from ``since`` onward until the job finishes."""
        index = max(0, since)
        while True:
            while index < len(self.events):
                yield self.events[index]
                index += 1
            if self.terminal:
                return
            self._signal.clear()
            if index < len(self.events):
                continue
            await self._signal.wait()

    # -- lifecycle ------------------------------------------------------
    @property
    def terminal(self) -> bool:
        return self.status in _TERMINAL

    def finish(self, result: JobResult, source: str) -> None:
        self.result = result
        self.source = source
        self.status = "done" if result.ok else "failed"
        self.error = result.error
        self.finished_at = time.time()
        self.emit(
            "finished",
            ok=result.ok,
            source=source,
            value=result.value,
            seconds=round(self.finished_at - self.created, 6),
        )

    def fail(self, error: str, status: str = "failed") -> None:
        self.error = error
        self.status = status
        self.finished_at = time.time()
        self.emit("failed" if status == "failed" else status, error=error)

    def to_dict(self, include_result: bool = True,
                include_events: bool = False) -> dict:
        data: dict = {
            "id": self.id,
            "key": self.key,
            "kind": self.kind,
            "label": self.label,
            "status": self.status,
            "source": self.source,
            "created": self.created,
            "finished_at": self.finished_at,
            "error": self.error,
        }
        if include_result and self.result is not None:
            data["result"] = self.result.to_dict()
            data["cached"] = self.result.cached
        if include_events:
            data["events"] = list(self.events)
        return data


class AnalysisService:
    """Coalescing, persistently cached execution of JSON job requests."""

    def __init__(
        self,
        store: ResultStore | None = None,
        workers: int = 2,
        memory_entries: int = 4096,
        lint: bool = True,
        trace_jobs: bool = True,
        retain_records: int = 1024,
    ) -> None:
        self.store = store
        self.workers = max(1, int(workers))
        self.lint = lint
        self.trace_jobs = trace_jobs
        self.retain_records = max(1, retain_records)
        self.stats = ServiceStats()
        #: Private registry holding the serve-layer series (stat counters,
        #: RED metrics per job kind) -- per-instance so concurrent services
        #: in one process report disjoint numbers.
        self.registry: MetricsRegistry = self.stats.registry
        # The compute layers (lp, cycle, maxplus, engine) record into the
        # *process-global* registry from the executor threads; turn it on
        # so /metrics can expose their solve-latency histograms too.
        obs_metrics.enable()
        self.started_at = time.time()
        self.draining = False
        self._memory = ResultCache(max_entries=memory_entries)
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        # Store I/O gets its own single worker: SQLite reads/writes must
        # leave the event loop (they block), but must not queue behind
        # long LP solves on the job executor either.  One worker also
        # serializes them, matching the store's internal lock.
        self._store_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-store"
        )
        self._inflight: dict[str, asyncio.Future] = {}
        self._records: OrderedDict[str, JobRecord] = OrderedDict()
        self._chains: dict[str, BasisChain] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    async def submit(self, request: object) -> JobRecord:
        """Parse, admit and schedule one job request; returns its record.

        Raises :class:`~repro.serve.protocol.RequestError` on malformed
        requests and :class:`ServiceUnavailableError` while draining; a
        lint rejection produces a *record* in status ``rejected`` (the
        request was well-formed -- the circuit is the problem).
        """
        if self.draining:
            raise ServiceUnavailableError("service is draining")
        self.stats.requests += 1
        job = job_from_request(request)
        key = job_key(job)
        record = JobRecord(self._new_id(), key, job.kind, job.label)
        self._remember(record)
        findings = self._admission_findings(job)
        if findings:
            self.stats.rejected += 1
            self.registry.counter(
                "serve_jobs_total", kind=job.kind, status="rejected"
            ).inc()
            record.fail(
                "; ".join(f"lint: {f}" for f in findings), status="rejected"
            )
            return record
        record.task = asyncio.create_task(self._run(record, job))
        return record

    async def submit_and_wait(self, request: object) -> JobRecord:
        record = await self.submit(request)
        await self.wait(record)
        return record

    async def wait(self, record: JobRecord) -> JobRecord:
        if record.task is not None:
            await asyncio.shield(record.task)
        return record

    def get_record(self, job_id: str) -> JobRecord | None:
        return self._records.get(job_id)

    def list_records(self, limit: int = 100) -> list[JobRecord]:
        records = list(self._records.values())
        return records[-limit:]

    async def lookup_result(self, key: str) -> JobResult | None:
        """Content-addressed lookup straight through memory + store."""
        hit = self._memory.get(key)
        if hit is not None:
            return hit
        if self.store is not None:
            return await self._store_call(self.store.get, key)
        return None

    async def _store_call(self, fn: Callable[..., _T], *args: object) -> _T:
        """Run one blocking store operation off the event loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._store_executor, fn, *args)

    def _new_id(self) -> str:
        self._next_id += 1
        return f"j{self._next_id:06d}"

    def _remember(self, record: JobRecord) -> None:
        self._records[record.id] = record
        while len(self._records) > self.retain_records:
            oldest = next(iter(self._records.values()))
            if not oldest.terminal:
                break  # never forget a live job
            self._records.popitem(last=False)

    def _admission_findings(self, job: Job) -> list[str]:
        """Error-severity lint findings that bar a job from execution.

        Mirrors the CLI pre-flight: the structural rule registry always
        runs; when the request pins or caps the clock, the constraint-graph
        diagnosis runs too, so a provably infeasible job is rejected with
        a named certificate instead of burning an executor slot on an LP
        that must fail.
        """
        graph = getattr(job, "graph", None)
        if not self.lint or graph is None:
            return []
        options = getattr(job, "options", None)
        report = run_rules(graph, None, options)
        findings = [finding.message for finding in report.errors]
        if options is not None and (
            options.fixed_period is not None
            or options.max_period is not None
            or options.fixed_starts
            or options.fixed_widths
        ):
            diagnostics = diagnose(graph, options)
            if diagnostics.certificate is not None:
                findings.append(diagnostics.certificate.message)
        return findings

    # ------------------------------------------------------------------
    # Execution pipeline
    # ------------------------------------------------------------------
    async def _run(self, record: JobRecord, job: Job) -> None:
        try:
            result, source = await self._obtain(record, job)
        except asyncio.CancelledError:
            record.fail("cancelled")
            self._finish_metrics(record, job.kind, "error")
            raise
        except Exception as err:  # noqa: BLE001 - a record must terminate
            self.stats.failed += 1
            record.fail(f"{type(err).__name__}: {err}")
            self._finish_metrics(record, job.kind, "error")
            return
        if source == "executed":
            self.stats.executed += 1
            self.stats.lp_solves += int(result.metrics.get("lp_solves", 0))
            self.stats.lp_pivots += int(result.metrics.get("lp_iterations", 0))
        if result.ok:
            self.stats.completed += 1
        else:
            self.stats.failed += 1
        elapsed = time.time() - record.created
        self.stats.job_seconds_sum += elapsed
        self.stats.latencies.append(elapsed)
        self._finish_metrics(
            record, job.kind, "ok" if result.ok else "error", source=source
        )
        record.finish(result, source)

    def _finish_metrics(
        self,
        record: JobRecord,
        kind: str,
        status: str,
        source: str | None = None,
    ) -> None:
        """RED accounting for one finished job: rate, errors, duration."""
        self.registry.counter(
            "serve_jobs_total", kind=kind, status=status
        ).inc()
        if source is not None:
            self.registry.counter(
                "serve_results_total", kind=kind, source=source
            ).inc()
        elapsed = time.time() - record.created
        self.registry.histogram(
            "serve_job_seconds", kind=kind
        ).observe(elapsed)

    async def _obtain(
        self, record: JobRecord, job: Job
    ) -> tuple[JobResult, str]:
        key = record.key
        hit = self._memory.get(key)
        if hit is not None:
            self.stats.memory_hits += 1
            record.emit("cache_hit", layer="memory")
            hit.label = job.label or hit.label
            return hit, "memory"
        if self.store is not None:
            stored = await self._store_call(self.store.get, key)
            if stored is not None:
                self.stats.store_hits += 1
                record.emit("cache_hit", layer="store")
                self._memory.put(key, stored)
                stored.cached = True
                stored.label = job.label or stored.label
                return stored, "store"
        pending = self._inflight.get(key)
        if pending is not None:
            self.stats.coalesced += 1
            record.emit("coalesced")
            leader_result = await asyncio.shield(pending)
            copy = JobResult.from_dict(leader_result.to_dict())
            copy.cached = True
            copy.label = job.label or copy.label
            return copy, "coalesced"

        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        record.emit("started", workers=self.workers)
        try:
            prepared = self._with_warm_start(job)
            result, spans = await loop.run_in_executor(
                self._executor, self._execute, prepared, key
            )
        except BaseException as err:
            if not future.done():
                future.set_exception(err)
                # Consume the exception even if no follower awaits it.
                future.exception()
            raise
        finally:
            del self._inflight[key]
        self._absorb_basis(job, result)
        self._memory.put(key, result)
        record.extend_events(result_events(result, spans))
        # Release coalesced followers before persisting: the store write
        # blocks (SQLite), so it happens off-loop after the result is
        # already visible in memory.
        future.set_result(result)
        if self.store is not None:
            await self._store_call(self.store.put, key, result)
        return result, "executed"

    def _execute(self, job: Job, key: str) -> tuple[JobResult, list[dict]]:
        """Executor-thread entry: run one job under a private tracer."""
        tracer = Tracer(enabled=self.trace_jobs)
        tracer.reset(enabled=self.trace_jobs)
        with use_tracer(tracer):
            if isinstance(job, SweepJob):
                result = self._execute_sweep(job, key)
            else:
                result = execute_job(job, key)
        spans = list(result.spans)
        result.spans = []
        spans.extend(root.to_dict() for root in tracer.roots)
        return result, spans

    def _execute_sweep(self, job: SweepJob, key: str) -> JobResult:
        """Run a sweep through a private serial engine layered on the store.

        The engine's adaptive refinement deduplicates grid points through
        its cache; backing that cache with the shared store persists every
        solved grid point, so a repeated (or overlapping) sweep after a
        restart re-solves nothing.
        """
        if self.store is not None:
            cache: ResultCache = StoreBackedCache(self.store, max_entries=1024)
        else:
            cache = ResultCache(max_entries=1024)
        engine = Engine(jobs=1, cache=cache)
        result = engine._run_sweep_job(job)
        report = engine.report
        result.metrics.setdefault("lp_solves", report.lp_solves)
        result.metrics.setdefault("lp_iterations", report.lp_iterations)
        result.metrics.setdefault("stages", dict(report.stage_seconds))
        return result

    # -- cross-request warm-start sharing --------------------------------
    def _family_key(self, job: MinimizeJob) -> str:
        """The circuit-family key: the job key with the override stripped."""
        if job.arc_override is None:
            return job_key(job)
        return job_key(replace(job, arc_override=None))

    def _chain_for(self, job: Job) -> tuple[BasisChain, float] | None:
        if not isinstance(job, MinimizeJob):
            return None
        mlp = job.mlp
        warm = mlp.warm_start if mlp is not None else True
        backend = mlp.backend if mlp is not None else None
        if not warm or not supports_warm_start(backend):
            return None
        x = job.arc_override[2] if job.arc_override is not None else 0.0
        chain = self._chains.setdefault(self._family_key(job), BasisChain())
        return chain, float(x)

    def _with_warm_start(self, job: Job) -> Job:
        found = self._chain_for(job)
        if found is None:
            return job
        chain, x = found
        basis = chain.get(x)
        if basis is None and not chain.cold_hint:
            return job
        return replace(
            job, warm_start=basis, cold_pivots_hint=chain.cold_hint
        )

    def _absorb_basis(self, job: Job, result: JobResult) -> None:
        found = self._chain_for(job)
        if found is None or not result.ok:
            return
        chain, x = found
        raw = result.payload.get("basis")
        if raw:
            chain.put(x, Basis.from_dict(raw))
        if not chain.cold_hint:
            chain.cold_hint = int(result.metrics.get("lp_iterations", 0))

    # ------------------------------------------------------------------
    # Introspection / shutdown
    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        return len(self._inflight)

    def health(self) -> dict:
        counts: dict[str, int] = {}
        for record in self._records.values():
            counts[record.status] = counts.get(record.status, 0) + 1
        return {
            "ok": True,
            "status": "draining" if self.draining else "serving",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "workers": self.workers,
            "inflight": self.inflight,
            "jobs": counts,
            "store": self.store.path if self.store is not None else None,
        }

    def counters(self) -> dict[str, float]:
        """The flat counter dict exported at /metrics (and diffed by loadgen)."""
        stats = self.stats
        memory = self._memory.stats
        out: dict[str, float] = {
            "serve_requests_total": stats.requests,
            "serve_rejected_total": stats.rejected,
            "serve_executed_total": stats.executed,
            "serve_coalesced_total": stats.coalesced,
            "serve_memory_hits_total": stats.memory_hits,
            "serve_store_hits_total": stats.store_hits,
            "serve_completed_total": stats.completed,
            "serve_failed_total": stats.failed,
            "serve_lp_solves_total": stats.lp_solves,
            "serve_lp_pivots_total": stats.lp_pivots,
            "serve_job_seconds_wall_sum": round(stats.job_seconds_sum, 6),
            "serve_inflight": self.inflight,
            "serve_memory_entries": len(self._memory),
            "serve_uptime_seconds": round(time.time() - self.started_at, 3),
        }
        for name, value in self.latency_summary().items():
            out[f"serve_latency_seconds_{name}"] = round(value, 6)
        if self.store is not None:
            store = self.store.stats
            out["serve_store_lookup_hits_total"] = store.hits
            out["serve_store_writes_total"] = store.writes
            out["serve_store_corrupt_dropped_total"] = store.corrupt_dropped
            out["serve_store_entries"] = len(self.store)
        return out

    def job_latency_histogram(self) -> Histogram | None:
        """The ``serve_job_seconds`` histogram aggregated across job kinds.

        Per-kind instruments share one bucket scheme, so aggregation is a
        vector add -- the same ``sum by (le)`` a Prometheus server would
        compute from the exposition.
        """
        merged: Histogram | None = None
        for metric in self.registry.collect():
            if metric.name != "serve_job_seconds" or not isinstance(
                metric, Histogram
            ):
                continue
            if merged is None:
                merged = Histogram("serve_job_seconds", (), bounds=metric.bounds)
            for i, count in enumerate(metric.counts):
                merged.counts[i] += count
            merged.sum += metric.sum
            merged.count += metric.count
        return merged

    def latency_summary(self) -> dict[str, float]:
        """p50/p95/p99 job latency, bucket-derived when possible.

        Quantiles come from the ``serve_job_seconds`` histogram (accurate
        to one bucket width, covers the full history); the sorted-deque
        :func:`latency_percentiles` remains as the histogram-less
        fallback (e.g. a registry reset mid-flight).
        """
        merged = self.job_latency_histogram()
        if merged is not None and merged.count:
            return {
                "p50": merged.quantile(0.50),
                "p95": merged.quantile(0.95),
                "p99": merged.quantile(0.99),
            }
        return latency_percentiles(list(self.stats.latencies))

    def metrics_text(self) -> str:
        """Prometheus exposition: native histograms plus the flat counters.

        Three blocks, in order: the service's private registry (stat
        counters, RED series, the ``serve_job_seconds{kind=...}``
        ``_bucket``/``_sum``/``_count`` histograms), the process-global
        registry (``lp_solve_seconds``, ``cycle_*``, ``engine_*``,
        ``maxplus_*`` recorded by the compute layers on the executor
        threads), and the legacy flat counters -- minus any name the
        registries already rendered, so every series appears exactly once.
        """
        rendered = {metric.name for metric in self.registry.collect()}
        rendered.update(
            metric.name for metric in obs_metrics.get_registry().collect()
        )
        extra = {
            key: value
            for key, value in self.counters().items()
            if key not in rendered
        }
        blocks = [
            self.registry.to_prometheus(),
            obs_metrics.get_registry().to_prometheus(),
            prometheus_text([], extra=extra),
        ]
        return "".join(
            block if block.endswith("\n") else block + "\n"
            for block in blocks
            if block
        )

    async def drain(self, timeout: float | None = None) -> None:
        """Stop admitting jobs, finish in-flight work, flush the store."""
        self.draining = True
        live = [
            record.task
            for record in self._records.values()
            if record.task is not None and not record.task.done()
        ]
        if live:
            done, pending = await asyncio.wait(live, timeout=timeout)
            for task in pending:
                task.cancel()
        if self.store is not None:
            await self._store_call(self.store.flush)
        # The pool shutdown joins worker threads; hop to a helper thread
        # so in-flight cancellations cannot stall the loop.
        await asyncio.to_thread(
            self._executor.shutdown, wait=True, cancel_futures=True
        )

    async def close(self) -> None:
        await self.drain(timeout=0.0)
        if self.store is not None:
            await self._store_call(self.store.close)
        self._store_executor.shutdown(wait=False)
