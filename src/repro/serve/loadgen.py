"""A self-contained load generator for the analysis service.

Drives a running server with a weighted, deterministic request mix
(seeded PRNG -- two runs with the same seed issue the same sequence),
using one persistent ``http.client`` connection per worker thread.  The
report combines client-side latency percentiles with server-side counter
deltas scraped from ``/metrics`` before and after the burst, so a single
run answers both "how fast" and "how many requests were served from the
store / coalesced / executed".

Used three ways: the ``repro loadgen`` CLI subcommand, the
``benchmarks/bench_serve.py`` benchmark, and the CI service smoke job.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Mapping
from urllib.parse import urlsplit

from repro.errors import ReproError
from repro.serve.service import latency_percentiles

#: Default request mix when none is given: one cheap minimize per design.
DEFAULT_MIX: list[dict] = [
    {"weight": 1, "request": {"kind": "minimize", "design": "example1"}},
    {"weight": 1, "request": {"kind": "minimize", "design": "example2"}},
]


class LoadgenError(ReproError):
    """Load generation failed outright (bad mix file, unreachable server)."""


def load_mix(path: str) -> list[dict]:
    """Read a request-mix JSON file (``examples/loadgen_mix.json`` shape).

    The file is ``{"requests": [{"weight": N, "request": {...}}, ...]}``;
    weights are relative draw probabilities.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        raise LoadgenError(f"cannot read mix file {path!r}: {err}") from err
    entries = data.get("requests") if isinstance(data, Mapping) else None
    if not isinstance(entries, list) or not entries:
        raise LoadgenError(
            f"mix file {path!r} must contain a non-empty 'requests' list"
        )
    mix: list[dict] = []
    for i, entry in enumerate(entries):
        if not isinstance(entry, Mapping) or "request" not in entry:
            raise LoadgenError(
                f"mix entry #{i} must be an object with a 'request' key"
            )
        weight = float(entry.get("weight", 1.0))
        if weight <= 0:
            raise LoadgenError(f"mix entry #{i} has non-positive weight")
        mix.append({"weight": weight, "request": dict(entry["request"])})
    return mix


@dataclass
class LoadgenReport:
    """Everything one burst measured."""

    requests: int = 0
    errors: int = 0
    wall_seconds: float = 0.0
    latencies: list[float] = field(default_factory=list)
    statuses: dict[str, int] = field(default_factory=dict)
    counters_before: dict[str, float] = field(default_factory=dict)
    counters_after: dict[str, float] = field(default_factory=dict)

    @property
    def percentiles(self) -> dict[str, float]:
        return latency_percentiles(self.latencies)

    @property
    def throughput(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.requests / self.wall_seconds

    def counter_delta(self, name: str) -> float:
        # The obs exporter namespaces everything under ``repro_``; accept
        # both spellings so callers can use the service counter names.
        for candidate in (name, f"repro_{name}"):
            if candidate in self.counters_after or candidate in self.counters_before:
                return self.counters_after.get(
                    candidate, 0.0
                ) - self.counters_before.get(candidate, 0.0)
        return 0.0

    def to_dict(self) -> dict:
        pct = self.percentiles
        return {
            "requests": self.requests,
            "errors": self.errors,
            "wall_seconds": round(self.wall_seconds, 4),
            "throughput_rps": round(self.throughput, 2),
            "latency_p50_ms": round(1000.0 * pct["p50"], 3),
            "latency_p95_ms": round(1000.0 * pct["p95"], 3),
            "latency_p99_ms": round(1000.0 * pct["p99"], 3),
            "statuses": dict(sorted(self.statuses.items())),
            "server_executed": self.counter_delta("serve_executed_total"),
            "server_coalesced": self.counter_delta("serve_coalesced_total"),
            "server_memory_hits": self.counter_delta("serve_memory_hits_total"),
            "server_store_hits": self.counter_delta("serve_store_hits_total"),
            "server_lp_solves": self.counter_delta("serve_lp_solves_total"),
        }

    def format(self) -> str:
        d = self.to_dict()
        lines = [
            f"requests : {d['requests']} ({d['errors']} errors, "
            f"{d['throughput_rps']:.1f} req/s over {d['wall_seconds']:.2f}s)",
            f"latency  : p50 {d['latency_p50_ms']:.1f}ms  "
            f"p95 {d['latency_p95_ms']:.1f}ms  p99 {d['latency_p99_ms']:.1f}ms",
            f"server   : executed {d['server_executed']:.0f}  "
            f"coalesced {d['server_coalesced']:.0f}  "
            f"memory hits {d['server_memory_hits']:.0f}  "
            f"store hits {d['server_store_hits']:.0f}  "
            f"lp solves {d['server_lp_solves']:.0f}",
            "statuses : "
            + ", ".join(f"{k}={v}" for k, v in d["statuses"].items()),
        ]
        return "\n".join(lines)


def parse_metrics_text(text: str) -> dict[str, float]:
    """Parse Prometheus exposition text into ``{metric_name: value}``."""
    counters: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        try:
            counters[name.strip()] = float(value)
        except ValueError:
            continue
    return counters


class _Client:
    """A persistent connection to the server, reopened on failure."""

    def __init__(self, host: str, port: int, timeout: float) -> None:
        self.host, self.port, self.timeout = host, port, timeout
        self._conn: http.client.HTTPConnection | None = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict | str]:
        payload = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (1, 2):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read().decode("utf-8", "replace")
                break
            except (OSError, http.client.HTTPException):
                self.close()
                if attempt == 2:
                    raise
        content_type = response.getheader("Content-Type", "")
        if "json" in content_type:
            try:
                return response.status, json.loads(raw)
            except json.JSONDecodeError:
                pass
        return response.status, raw

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None


def _split_url(url: str) -> tuple[str, int]:
    parts = urlsplit(url if "//" in url else f"http://{url}")
    if not parts.hostname or not parts.port:
        raise LoadgenError(f"server URL {url!r} needs an explicit host:port")
    return parts.hostname, parts.port


def run_load(
    url: str,
    mix: list[dict] | None = None,
    requests: int = 32,
    concurrency: int = 4,
    seed: int = 0,
    timeout: float = 60.0,
) -> LoadgenReport:
    """Fire ``requests`` weighted draws at the server and measure.

    Workers share nothing but the counter of remaining requests; each
    holds its own connection and its own deterministic PRNG stream
    (``seed + worker_index``), so runs are reproducible under any thread
    interleaving.
    """
    host, port = _split_url(url)
    entries = mix if mix else DEFAULT_MIX
    weights = [float(e["weight"]) for e in entries]
    bodies = [dict(e["request"]) for e in entries]

    probe = _Client(host, port, timeout)
    status, health = probe.request("GET", "/healthz")
    if status != 200:
        raise LoadgenError(f"server at {url} unhealthy: {status} {health}")
    _, before_text = probe.request("GET", "/metrics")

    report = LoadgenReport()
    report.counters_before = parse_metrics_text(str(before_text))
    lock = threading.Lock()
    remaining = [requests]

    def _worker(index: int) -> None:
        rng = random.Random(seed + index)
        client = _Client(host, port, timeout)
        try:
            while True:
                with lock:
                    if remaining[0] <= 0:
                        return
                    remaining[0] -= 1
                body = rng.choices(bodies, weights=weights, k=1)[0]
                start = time.perf_counter()
                try:
                    status, payload = client.request(
                        "POST", "/v1/jobs?wait=1", body
                    )
                except (OSError, http.client.HTTPException):
                    with lock:
                        report.errors += 1
                        report.requests += 1
                        report.statuses["transport_error"] = (
                            report.statuses.get("transport_error", 0) + 1
                        )
                        report.latencies.append(time.perf_counter() - start)
                    continue
                elapsed = time.perf_counter() - start
                job_status = (
                    payload.get("status", "?")
                    if isinstance(payload, dict)
                    else "?"
                )
                ok = status == 200 and job_status == "done"
                with lock:
                    report.requests += 1
                    report.latencies.append(elapsed)
                    tag = job_status if status == 200 else f"http_{status}"
                    report.statuses[tag] = report.statuses.get(tag, 0) + 1
                    if not ok:
                        report.errors += 1
        finally:
            client.close()

    started = time.perf_counter()
    threads = [
        threading.Thread(target=_worker, args=(i,), daemon=True)
        for i in range(max(1, concurrency))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.wall_seconds = time.perf_counter() - started

    _, after_text = probe.request("GET", "/metrics")
    report.counters_after = parse_metrics_text(str(after_text))
    probe.close()
    return report
