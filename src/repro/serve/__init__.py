"""repro.serve -- the analysis-as-a-service layer.

Five cooperating modules (see ``docs/SERVE.md`` for the tour):

* :mod:`repro.serve.store`    -- persistent content-addressed SQLite
  result store (WAL mode, schema-versioned) plus the
  :class:`StoreBackedCache` adapter the batch CLI shares;
* :mod:`repro.serve.protocol` -- JSON requests in, declarative engine
  jobs out, with strict unknown-key rejection;
* :mod:`repro.serve.service`  -- the asyncio service core: request
  coalescing, two-level result cache, lint admission control,
  cross-request warm-start basis chains, graceful drain;
* :mod:`repro.serve.http`     -- the stdlib HTTP/1.1 front end
  (``repro serve``), including server-sent progress events;
* :mod:`repro.serve.loadgen`  -- the deterministic weighted-mix load
  generator (``repro loadgen``) used by benchmarks and CI smoke.

Everything is standard library on top of the existing engine; the server
holds all mutable state on one event loop and runs jobs as pure
functions on executor threads.
"""

from repro.serve.events import MAX_BRIDGED_EVENTS, result_events, span_events
from repro.serve.http import HttpServer, ServerHandle, run_in_thread
from repro.serve.loadgen import (
    DEFAULT_MIX,
    LoadgenError,
    LoadgenReport,
    load_mix,
    parse_metrics_text,
    run_load,
)
from repro.serve.protocol import (
    DESIGNS,
    PROTOCOL_VERSION,
    RequestError,
    job_from_request,
)
from repro.serve.service import (
    AnalysisService,
    JobRecord,
    ServiceStats,
    ServiceUnavailableError,
    latency_percentiles,
)
from repro.serve.store import (
    SIGNATURE_VERSION,
    SQLITE_SUFFIXES,
    STORE_SCHEMA_VERSION,
    ResultStore,
    StoreBackedCache,
    StoreError,
    StoreStats,
    StoreVersionError,
    open_cache,
)

__all__ = [
    "AnalysisService",
    "DEFAULT_MIX",
    "DESIGNS",
    "HttpServer",
    "JobRecord",
    "LoadgenError",
    "LoadgenReport",
    "MAX_BRIDGED_EVENTS",
    "PROTOCOL_VERSION",
    "RequestError",
    "ResultStore",
    "SIGNATURE_VERSION",
    "SQLITE_SUFFIXES",
    "STORE_SCHEMA_VERSION",
    "ServerHandle",
    "ServiceStats",
    "ServiceUnavailableError",
    "StoreBackedCache",
    "StoreError",
    "StoreStats",
    "StoreVersionError",
    "job_from_request",
    "latency_percentiles",
    "load_mix",
    "open_cache",
    "parse_metrics_text",
    "result_events",
    "run_in_thread",
    "run_load",
    "span_events",
]
