"""JSON wire format of the analysis service: requests in, engine jobs out.

A *request* is a plain JSON object describing one timing job.  The serve
layer converts it into one of the declarative engine jobs (so the job's
canonical content hash -- the coalescing and storage key -- is computed by
exactly the same code the batch CLI uses), runs it, and ships the plain
:class:`~repro.engine.jobspec.JobResult` payload back out as JSON.

Request shape::

    {
      "kind":    "minimize" | "analyze" | "baseline" | "sweep",
      # exactly one circuit source:
      "design":  "example1" | "example2" | "fig1" | "gaas",
      "source":  "<.lcd circuit text>",
      # optional, per kind:
      "options":  {"min_width": 5.0, ...},          # ConstraintOptions
      "mlp":      {"backend": "revised", ...},      # MLPOptions
      "schedule": {"period": 110, "phases": [...]}, # analyze only
      "algorithm": "nrip",                          # baseline only
      "src": "L4", "dst": "L1",                     # sweep only
      "grid": [0, 10, ...] | "lo"/"hi"/"points",    # sweep only
      "arc_override": ["L4", "L1", 95.0],           # minimize only
      "label": "anything"
    }

Unknown keys are rejected rather than ignored: a typo'd option silently
falling back to a default would return a *wrong answer with a 200*, the
worst failure mode an analysis service can have.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.circuit.graph import TimingGraph
from repro.clocking.phase import ClockPhase
from repro.clocking.schedule import ClockSchedule
from repro.core.constraints import ConstraintOptions
from repro.core.mlp import MLPOptions
from repro.designs import example1, example2, fig1_circuit, gaas_datapath
from repro.engine.jobspec import (
    AnalyzeJob,
    BaselineJob,
    Job,
    MinimizeJob,
    SweepJob,
)
from repro.errors import ReproError
from repro.lp.backends import available_backends

#: Version of the request/response wire format.
PROTOCOL_VERSION = 1

#: The bundled paper designs addressable by name in a request.
DESIGNS: dict[str, Callable[[], TimingGraph]] = {
    "example1": example1,
    "example2": example2,
    "fig1": fig1_circuit,
    "gaas": gaas_datapath,
}

_JOB_KINDS = ("minimize", "analyze", "baseline", "sweep")

_COMMON_KEYS = {"kind", "design", "source", "options", "mlp", "label"}
_ALLOWED_KEYS = {
    "minimize": _COMMON_KEYS | {"arc_override"},
    "analyze": _COMMON_KEYS | {"schedule"},
    "baseline": _COMMON_KEYS | {"algorithm"},
    "sweep": _COMMON_KEYS | {"src", "dst", "grid", "lo", "hi", "points",
                             "slope_tol"},
}

_OPTION_KEYS = (
    "min_width",
    "min_separation",
    "setup_margin",
    "fixed_period",
    "max_period",
    "fixed_starts",
    "fixed_widths",
    "zero_departure_phases",
)

_MLP_KEYS = (
    "backend",
    "iteration",
    "verify",
    "compact",
    "tol",
    "warm_start",
    "kernel",
    "sanitize",
)


class RequestError(ReproError):
    """A malformed service request (maps to HTTP 400)."""


def _require_mapping(value: object, what: str) -> Mapping:
    if not isinstance(value, Mapping):
        raise RequestError(f"{what} must be a JSON object, got {type(value).__name__}")
    return value


def _reject_unknown(data: Mapping, allowed: Iterable[str], what: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise RequestError(
            f"unknown {what} key(s) {unknown}; allowed: {sorted(allowed)}"
        )


def graph_from_request(request: Mapping) -> tuple[TimingGraph, ClockSchedule | None]:
    """Resolve the request's circuit: a bundled design or inline .lcd source.

    Returns the graph plus the schedule embedded in inline source (None
    when the source carries no concrete clock, and always for bundled
    designs, which are structural).
    """
    design = request.get("design")
    source = request.get("source")
    if (design is None) == (source is None):
        raise RequestError(
            "a request needs exactly one of 'design' (bundled name) "
            "or 'source' (inline .lcd text)"
        )
    if design is not None:
        factory = DESIGNS.get(str(design))
        if factory is None:
            raise RequestError(
                f"unknown design {design!r}; bundled designs: "
                f"{sorted(DESIGNS)}"
            )
        return factory(), None
    from repro.lang.parser import parse_circuit

    decl = parse_circuit(str(source))
    return decl.to_graph(), decl.to_schedule()


def options_from_request(data: object) -> ConstraintOptions | None:
    if data is None:
        return None
    mapping = _require_mapping(data, "'options'")
    _reject_unknown(mapping, _OPTION_KEYS, "'options'")
    kwargs = dict(mapping)
    if "zero_departure_phases" in kwargs:
        kwargs["zero_departure_phases"] = tuple(kwargs["zero_departure_phases"])
    try:
        return ConstraintOptions(**kwargs)
    except (TypeError, ValueError) as err:
        raise RequestError(f"bad 'options': {err}") from err


def mlp_from_request(data: object) -> MLPOptions | None:
    if data is None:
        return None
    mapping = _require_mapping(data, "'mlp'")
    _reject_unknown(mapping, _MLP_KEYS, "'mlp'")
    backend = mapping.get("backend")
    if backend is not None and backend not in available_backends():
        # Admission-time rejection (HTTP 400) instead of a soft-failed job
        # result after the request was accepted and scheduled.
        raise RequestError(
            f"unknown LP backend {backend!r}; available: "
            f"{available_backends()}"
        )
    try:
        return MLPOptions(**mapping)
    except (TypeError, ValueError) as err:
        raise RequestError(f"bad 'mlp': {err}") from err


def schedule_from_request(data: object) -> ClockSchedule:
    mapping = _require_mapping(data, "'schedule'")
    _reject_unknown(mapping, ("period", "phases"), "'schedule'")
    try:
        phases = [
            ClockPhase(str(p["name"]), float(p["start"]), float(p["width"]))
            for p in mapping["phases"]
        ]
        return ClockSchedule(float(mapping["period"]), phases)
    except (KeyError, TypeError, ValueError, ReproError) as err:
        raise RequestError(f"bad 'schedule': {err}") from err


def _sweep_grid(request: Mapping) -> tuple[float, ...]:
    if "grid" in request:
        try:
            grid = tuple(float(x) for x in request["grid"])
        except (TypeError, ValueError) as err:
            raise RequestError(f"bad 'grid': {err}") from err
    else:
        try:
            lo, hi = float(request["lo"]), float(request["hi"])
        except KeyError as err:
            raise RequestError(
                "a sweep needs either 'grid' or 'lo'/'hi'"
            ) from err
        points = int(request.get("points", 9))
        if points < 2:
            raise RequestError(f"'points' must be >= 2, got {points}")
        grid = tuple(
            lo + (hi - lo) * i / (points - 1) for i in range(points)
        )
    if len(grid) < 2:
        raise RequestError("a sweep grid needs at least two points")
    return grid


def job_from_request(request: object) -> Job:
    """Convert one JSON request object into a declarative engine job."""
    mapping = _require_mapping(request, "a job request")
    kind = mapping.get("kind", "minimize")
    if kind not in _JOB_KINDS:
        raise RequestError(
            f"unknown job kind {kind!r}; expected one of {_JOB_KINDS}"
        )
    _reject_unknown(mapping, _ALLOWED_KEYS[kind], f"{kind} request")
    graph, embedded_schedule = graph_from_request(mapping)
    options = options_from_request(mapping.get("options"))
    mlp = mlp_from_request(mapping.get("mlp"))
    label = str(mapping.get("label", ""))

    if kind == "minimize":
        override = mapping.get("arc_override")
        arc_override = None
        if override is not None:
            try:
                src, dst, delay = override
                arc_override = (str(src), str(dst), float(delay))
            except (TypeError, ValueError) as err:
                raise RequestError(
                    f"bad 'arc_override' (want [src, dst, delay]): {err}"
                ) from err
        return MinimizeJob(
            graph=graph, options=options, mlp=mlp,
            arc_override=arc_override, label=label,
        )
    if kind == "analyze":
        if "schedule" in mapping:
            schedule = schedule_from_request(mapping["schedule"])
        elif embedded_schedule is not None:
            schedule = embedded_schedule
        else:
            raise RequestError(
                "an analyze request needs a 'schedule' (or inline source "
                "with a fully specified clock block)"
            )
        return AnalyzeJob(
            graph=graph, schedule=schedule, options=options, label=label
        )
    if kind == "baseline":
        algorithm = mapping.get("algorithm")
        if not algorithm:
            raise RequestError("a baseline request needs an 'algorithm'")
        try:
            return BaselineJob(
                graph=graph, algorithm=str(algorithm), options=options,
                mlp=mlp, label=label,
            )
        except ReproError as err:
            raise RequestError(str(err)) from err
    # kind == "sweep" -- membership enforced above
    src, dst = mapping.get("src"), mapping.get("dst")
    if not src or not dst:
        raise RequestError("a sweep request needs 'src' and 'dst' latches")
    return SweepJob(
        graph=graph,
        src=str(src),
        dst=str(dst),
        grid=_sweep_grid(mapping),
        options=options,
        mlp=mlp,
        slope_tol=float(mapping.get("slope_tol", 1e-6)),
        label=label,
    )
