"""Bridge the repro.obs span/event stream into job progress events.

Each job executed by the service runs under a private per-thread tracer
(see :func:`repro.obs.trace.set_thread_tracer`), so its hierarchical span
tree -- lp_solve spans, cache.lookup events, slide sweeps -- is recorded
exactly as a ``--trace`` run would record it.  This module flattens that
tree into the flat, ordered event dicts the server streams to clients as
server-sent events, alongside the service's own lifecycle events
(``queued`` / ``started`` / ``finished`` / ...).

The bridge caps the number of events per job: a large sweep records
thousands of pivot events, and a progress stream that drowns its consumer
is worse than one that summarizes.  Truncation is explicit -- a final
``truncated`` event says how much was dropped.
"""

from __future__ import annotations

from repro.engine.jobspec import JobResult
from repro.obs.export import walk_with_ancestors

#: Hard cap on bridged span/trace events per job.
MAX_BRIDGED_EVENTS = 200


def span_events(spans: list[dict], limit: int = MAX_BRIDGED_EVENTS) -> list[dict]:
    """Flatten a span forest into ordered progress-event dicts.

    Every span becomes one ``span`` event (name, duration, key counters);
    every point-in-time event inside a span becomes a ``trace`` event.
    Events are ordered depth-first, matching execution order closely
    enough for a progress feed.
    """
    out: list[dict] = []
    dropped = 0
    for span, ancestors in walk_with_ancestors(spans):
        entry: dict = {
            "event": "span",
            "name": span.get("name", "?"),
            "ms": round(1000.0 * float(span.get("dur", 0.0)), 3),
            "depth": len(ancestors),
        }
        counters = span.get("counters") or {}
        if counters:
            entry["counters"] = dict(counters)
        attrs = span.get("attrs") or {}
        for key in ("backend", "method", "kernel", "feasible", "ok"):
            if key in attrs:
                entry[key] = attrs[key]
        if len(out) < limit:
            out.append(entry)
        else:
            dropped += 1
        for event in span.get("events") or []:
            if len(out) >= limit:
                dropped += 1
                continue
            out.append(
                {
                    "event": "trace",
                    "name": event.get("name", "event"),
                    **{
                        k: v
                        for k, v in event.items()
                        if k not in ("name", "ts")
                    },
                }
            )
    if dropped:
        out.append({"event": "truncated", "dropped": dropped})
    return out


def result_events(result: JobResult, spans: list[dict] | None = None) -> list[dict]:
    """The bridged event list for one finished job result.

    ``spans`` is the span forest recorded by the job's private tracer;
    when absent (tracing disabled server-side) the bridge degrades to a
    stage summary synthesized from the result metrics, so streams always
    carry *some* convergence signal.
    """
    events = span_events(spans or [])
    if not events:
        stages = (result.metrics or {}).get("stages") or {}
        events = [
            {
                "event": "stage",
                "name": name,
                "ms": round(1000.0 * float(seconds), 3),
            }
            for name, seconds in stages.items()
        ]
    lp_solves = int((result.metrics or {}).get("lp_solves", 0))
    if lp_solves:
        events.append(
            {
                "event": "lp",
                "solves": lp_solves,
                "pivots": int((result.metrics or {}).get("lp_iterations", 0)),
            }
        )
    return events
