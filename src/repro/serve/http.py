"""A stdlib-asyncio HTTP/1.1 front end for :class:`AnalysisService`.

No web framework: requests are parsed off an ``asyncio.start_server``
stream directly, which keeps the server dependency-free and small enough
to audit.  Persistent connections are supported (loadgen reuses one
connection per worker); event streams use ``text/event-stream`` and close
the connection when the job finishes.

Routes::

    POST /v1/jobs            submit one job or {"jobs": [...]} (202);
                             ?wait=1 blocks until completion (200)
    GET  /v1/jobs            recent job records (summaries)
    GET  /v1/jobs/{id}       one record, result included when finished
    GET  /v1/jobs/{id}?stream=1   server-sent progress events (also
                             selected by "Accept: text/event-stream");
                             ?since=N resumes after event N
    GET  /v1/results/{key}   content-addressed lookup (memory + store)
    GET  /healthz            liveness + drain state
    GET  /metrics            Prometheus exposition text (obs exporter)

Graceful drain: SIGINT/SIGTERM stop the listener, let in-flight jobs
finish (bounded by ``drain_timeout``), flush the store, then return from
:meth:`HttpServer.run`.  A second signal cancels the wait.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from typing import Callable
from urllib.parse import parse_qs, unquote, urlsplit

from repro.serve.protocol import RequestError
from repro.serve.service import (
    AnalysisService,
    JobRecord,
    ServiceUnavailableError,
)

#: Largest accepted request body (a circuit source is kilobytes, not more).
MAX_BODY_BYTES = 8 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """Internal: abort the current request with a status + JSON message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class HttpServer:
    """One listening socket bound to one :class:`AnalysisService`."""

    def __init__(
        self,
        service: AnalysisService,
        host: str = "127.0.0.1",
        port: int = 0,
        drain_timeout: float | None = 30.0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.drain_timeout = drain_timeout
        self._server: asyncio.base_events.Server | None = None
        self._stop = asyncio.Event()
        self._writers: set[asyncio.StreamWriter] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def request_stop(self) -> None:
        """Signal-safe stop request (idempotent)."""
        self._stop.set()

    async def shutdown(self) -> None:
        """Stop accepting, drain in-flight jobs, flush and close the store."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.service.drain(timeout=self.drain_timeout)
        # Close idle keep-alive connections so their handler tasks exit via
        # EOF instead of being cancelled when the loop shuts down.
        for writer in list(self._writers):
            writer.close()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + 5.0
        while self._writers and loop.time() < deadline:
            await asyncio.sleep(0.01)
        # Delegates to the service's store executor: closing the SQLite
        # handle blocks and must not run on the loop.
        await self.service.close()

    async def run(
        self,
        install_signals: bool = True,
        on_ready: Callable[["HttpServer"], None] | None = None,
    ) -> None:
        """Serve until SIGINT/SIGTERM (or :meth:`request_stop`), then drain."""
        await self.start()
        if on_ready is not None:
            on_ready(self)
        loop = asyncio.get_running_loop()
        installed: list[signal.Signals] = []
        if install_signals and threading.current_thread() is threading.main_thread():
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, self.request_stop)
                    installed.append(sig)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass
        try:
            await self._stop.wait()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
            await self.shutdown()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                keep_alive = headers.get("connection", "").lower() != "close"
                try:
                    finished = await self._dispatch(
                        writer, method, target, headers, body, keep_alive
                    )
                except _HttpError as err:
                    self._write_json(
                        writer, err.status, {"error": str(err)}, keep_alive
                    )
                    finished = True
                await writer.drain()
                if not finished or not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict, bytes] | None:
        try:
            request_line = await reader.readline()
        except (ConnectionResetError, asyncio.LimitOverrunError):
            return None
        if not request_line:
            return None
        try:
            method, target, _version = request_line.decode("latin-1").split()
        except ValueError:
            raise _HttpError(400, "malformed request line") from None
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        target: str,
        headers: dict,
        body: bytes,
        keep_alive: bool,
    ) -> bool:
        """Handle one request; returns False when the connection was taken
        over by a streaming response (which closes it itself)."""
        parts = urlsplit(target)
        path = unquote(parts.path)
        query = {k: v[-1] for k, v in parse_qs(parts.query).items()}

        if path == "/healthz" and method == "GET":
            self._write_json(writer, 200, self.service.health(), keep_alive)
            return True
        if path == "/metrics" and method == "GET":
            self._write_text(
                writer, 200, self.service.metrics_text(), keep_alive,
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
            return True
        if path == "/v1/jobs":
            if method == "POST":
                return await self._post_jobs(writer, query, body, keep_alive)
            if method == "GET":
                records = self.service.list_records()
                self._write_json(
                    writer,
                    200,
                    {"jobs": [r.to_dict(include_result=False) for r in records]},
                    keep_alive,
                )
                return True
            raise _HttpError(405, f"{method} not allowed on {path}")
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                raise _HttpError(405, f"{method} not allowed on {path}")
            job_id = path[len("/v1/jobs/"):]
            return await self._get_job(writer, job_id, query, headers, keep_alive)
        if path.startswith("/v1/results/"):
            if method != "GET":
                raise _HttpError(405, f"{method} not allowed on {path}")
            key = path[len("/v1/results/"):]
            result = await self.service.lookup_result(key)
            if result is None:
                raise _HttpError(404, f"no stored result for key {key!r}")
            self._write_json(writer, 200, result.to_dict(), keep_alive)
            return True
        raise _HttpError(404, f"no route for {method} {path}")

    async def _post_jobs(
        self, writer: asyncio.StreamWriter, query: dict, body: bytes,
        keep_alive: bool,
    ) -> bool:
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise _HttpError(400, f"request body is not valid JSON: {err}") from err
        if payload is None:
            raise _HttpError(400, "empty request body")
        batch = isinstance(payload, dict) and "jobs" in payload
        requests = payload["jobs"] if batch else [payload]
        if not isinstance(requests, list) or not requests:
            raise _HttpError(400, "'jobs' must be a non-empty list")
        wait = query.get("wait") in ("1", "true", "yes")
        records: list[JobRecord] = []
        try:
            for request in requests:
                records.append(await self.service.submit(request))
        except RequestError as err:
            raise _HttpError(400, str(err)) from err
        except ServiceUnavailableError as err:
            raise _HttpError(503, str(err)) from err
        if wait:
            for record in records:
                await self.service.wait(record)
        status = 200 if wait else 202
        payload_out = [
            record.to_dict(include_result=wait) | {
                "href": f"/v1/jobs/{record.id}"
            }
            for record in records
        ]
        self._write_json(
            writer,
            status,
            {"jobs": payload_out} if batch else payload_out[0],
            keep_alive,
        )
        return True

    async def _get_job(
        self, writer: asyncio.StreamWriter, job_id: str, query: dict,
        headers: dict, keep_alive: bool,
    ) -> bool:
        record = self.service.get_record(job_id)
        if record is None:
            raise _HttpError(404, f"unknown job id {job_id!r}")
        wants_stream = (
            query.get("stream") in ("1", "true", "yes")
            or "text/event-stream" in headers.get("accept", "")
        )
        if not wants_stream:
            if query.get("wait") in ("1", "true", "yes"):
                await self.service.wait(record)
            self._write_json(
                writer, 200,
                record.to_dict(include_result=True, include_events=True),
                keep_alive,
            )
            return True
        # Server-sent events: stream progress, then close the connection.
        since = int(query.get("since", 0) or 0)
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        async for event in record.stream_events(since=since):
            name = str(event.get("event", "message"))
            blob = json.dumps(event, default=str)
            writer.write(f"event: {name}\ndata: {blob}\n\n".encode())
            await writer.drain()
        writer.write(b"event: end\ndata: {}\n\n")
        await writer.drain()
        return False

    # ------------------------------------------------------------------
    # Response writers
    # ------------------------------------------------------------------
    def _write_text(
        self, writer: asyncio.StreamWriter, status: int, text: str,
        keep_alive: bool, content_type: str = "text/plain; charset=utf-8",
    ) -> None:
        body = text.encode("utf-8")
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)

    def _write_json(
        self, writer: asyncio.StreamWriter, status: int, payload: dict,
        keep_alive: bool,
    ) -> None:
        self._write_text(
            writer,
            status,
            json.dumps(payload, default=str),
            keep_alive,
            content_type="application/json",
        )


class ServerHandle:
    """A server running on a background thread (tests and benchmarks).

    Owns a private event loop thread; :meth:`stop` requests a graceful
    drain and joins the thread.  The HTTP endpoint is ``handle.url``.
    """

    def __init__(self, server: HttpServer, thread: threading.Thread,
                 loop: asyncio.AbstractEventLoop) -> None:
        self.server = server
        self._thread = thread
        self._loop = loop

    @property
    def url(self) -> str:
        return self.server.url

    def stop(self, timeout: float = 30.0) -> None:
        self._loop.call_soon_threadsafe(self.server.request_stop)
        self._thread.join(timeout=timeout)


def run_in_thread(
    service: AnalysisService, host: str = "127.0.0.1", port: int = 0,
    drain_timeout: float | None = 30.0,
) -> ServerHandle:
    """Start a server on a daemon thread and return once it is listening."""
    server = HttpServer(
        service, host=host, port=port, drain_timeout=drain_timeout
    )
    started = threading.Event()
    loop_box: list[asyncio.AbstractEventLoop] = []

    def _main() -> None:
        async def _run() -> None:
            loop_box.append(asyncio.get_running_loop())
            await server.start()
            started.set()
            await server._stop.wait()
            await server.shutdown()

        asyncio.run(_run())

    thread = threading.Thread(
        target=_main, name="repro-serve-http", daemon=True
    )
    thread.start()
    if not started.wait(timeout=30.0):  # pragma: no cover - startup hang
        raise RuntimeError("HTTP server failed to start within 30s")
    return ServerHandle(server, thread, loop_box[0])
