"""Clock-skew modeling (one of the "further requirements" of Section III-A).

The paper notes that requirements such as clock skew "can be easily added"
to the minimal constraint set C1-C4.  This module provides the schedule-side
machinery: bounded per-phase skews and enumeration of worst-case skewed
schedules.  The corresponding constraint-generation hook lives in
:mod:`repro.core.constraints` (``ConstraintOptions.skew``).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Mapping, Sequence

from repro.clocking.phase import ClockPhase
from repro.clocking.schedule import ClockSchedule
from repro.errors import ClockError


@dataclass(frozen=True)
class SkewBound:
    """Earliest/latest deviation of a phase's edges from their nominal time.

    ``early`` and ``late`` are both nonnegative; the actual phase start may
    fall anywhere in ``[start - early, start + late]``.
    """

    early: float = 0.0
    late: float = 0.0

    def __post_init__(self) -> None:
        if self.early < 0 or self.late < 0:
            raise ClockError(
                f"skew bounds must be >= 0, got early={self.early}, late={self.late}"
            )

    @property
    def span(self) -> float:
        return self.early + self.late


def apply_skew(
    schedule: ClockSchedule, offsets: Mapping[str, float] | Sequence[float]
) -> ClockSchedule:
    """Shift each phase start by a per-phase offset, keeping widths.

    Negative results are clamped to zero (a phase cannot start before the
    cycle origin in the paper's model); clamping only occurs when the
    caller supplies a skew larger than the nominal start.
    """
    if isinstance(offsets, Mapping):
        deltas = [offsets.get(p.name, 0.0) for p in schedule.phases]
    else:
        if len(offsets) != schedule.k:
            raise ClockError(
                f"need {schedule.k} offsets, got {len(offsets)}"
            )
        deltas = list(offsets)
    phases = []
    for p, d in zip(schedule.phases, deltas):
        phases.append(ClockPhase(p.name, max(0.0, p.start + d), p.width))
    return ClockSchedule(schedule.period, phases)


def worst_case_schedules(
    schedule: ClockSchedule,
    bounds: Mapping[str, SkewBound],
    max_phases: int = 12,
) -> list[ClockSchedule]:
    """Enumerate the corner schedules induced by independent phase skews.

    Each skewed phase independently takes its earliest or latest start, so
    there are ``2**m`` corners for ``m`` skewed phases.  Verifying a design
    against every corner is the brute-force counterpart of adding skew
    margins directly to the constraints; tests use it to cross-check the
    constraint-level treatment.
    """
    skewed = [
        p.name
        for p in schedule.phases
        if bounds.get(p.name, SkewBound()).span > 0
    ]
    if len(skewed) > max_phases:
        raise ClockError(
            f"refusing to enumerate 2**{len(skewed)} skew corners; "
            f"raise max_phases if you really want this"
        )
    corners: list[ClockSchedule] = []
    for signs in product((-1, 1), repeat=len(skewed)):
        offsets = {}
        for name, sign in zip(skewed, signs):
            b = bounds[name]
            offsets[name] = -b.early if sign < 0 else b.late
        corners.append(apply_skew(schedule, offsets))
    return corners or [schedule]
