"""A single clock phase: an active interval inside the common clock cycle."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ClockError


@dataclass(frozen=True)
class ClockPhase:
    """One phase of a k-phase clock.

    A phase is identified by ``name`` and described, per Section III-A of the
    paper, by the start time ``start`` (the paper's ``s_i``, measured from the
    beginning of the common clock cycle) and the duration ``width`` (the
    paper's ``T_i``) of its active interval.  Phases are assumed active-high;
    latches controlled by the phase are enabled on ``[start, start + width)``.
    """

    name: str
    start: float
    width: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ClockError("clock phase must have a non-empty name")
        if self.start < 0:
            raise ClockError(
                f"phase {self.name!r}: start must be >= 0, got {self.start}"
            )
        if self.width < 0:
            raise ClockError(
                f"phase {self.name!r}: width must be >= 0, got {self.width}"
            )

    @property
    def end(self) -> float:
        """End time of the active interval (may exceed the cycle boundary)."""
        return self.start + self.width

    def is_active(self, t: float, period: float) -> bool:
        """Return True if the phase is active at absolute time ``t``.

        The phase is periodic with the given ``period``; the active interval
        is taken as half-open, ``[start, end)``, folded into the cycle.
        """
        if period <= 0:
            raise ClockError(f"period must be positive, got {period}")
        local = t % period
        if self.end <= period:
            return self.start <= local < self.end
        # The active interval wraps around the cycle boundary.
        return local >= self.start or local < self.end - period

    def shifted(self, delta: float) -> "ClockPhase":
        """Return a copy with the start moved by ``delta``."""
        return replace(self, start=self.start + delta)

    def scaled(self, factor: float) -> "ClockPhase":
        """Return a copy with start and width scaled by ``factor``."""
        if factor < 0:
            raise ClockError(f"scale factor must be >= 0, got {factor}")
        return replace(self, start=self.start * factor, width=self.width * factor)

    def renamed(self, name: str) -> "ClockPhase":
        """Return a copy carrying a different name."""
        return replace(self, name=name)
