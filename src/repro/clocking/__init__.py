"""Clock modeling for latch-controlled synchronous circuits.

This package implements the temporal clock model of Section III-A of the
paper: a k-phase clock is a set of periodic phases, each with a start time
``s_i`` and an active-interval width ``T_i`` inside a common cycle of period
``Tc``.  The model is purely temporal -- phases carry no logical relationship
to one another -- which is what lets a single formulation cover two-, three-
and four-phase disciplines alike (Fig. 3 of the paper).
"""

from repro.clocking.library import (
    fig3_clocks,
    four_phase_clock,
    single_phase_clock,
    symmetric_clock,
    three_phase_clock,
    two_phase_clock,
)
from repro.clocking.phase import ClockPhase
from repro.clocking.schedule import ClockSchedule, ClockViolation
from repro.clocking.skew import SkewBound, apply_skew, worst_case_schedules
from repro.clocking.waveform import (
    intervals_in_window,
    overlap_duration,
    phase_edges,
    phases_overlap,
    sample_phase,
    sample_schedule,
)

__all__ = [
    "ClockPhase",
    "ClockSchedule",
    "ClockViolation",
    "symmetric_clock",
    "two_phase_clock",
    "three_phase_clock",
    "four_phase_clock",
    "single_phase_clock",
    "fig3_clocks",
    "sample_phase",
    "sample_schedule",
    "phase_edges",
    "intervals_in_window",
    "phases_overlap",
    "overlap_duration",
    "SkewBound",
    "apply_skew",
    "worst_case_schedules",
]
