"""The k-phase clock schedule and the paper's C matrix and S operator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.clocking.phase import ClockPhase
from repro.errors import ClockError

#: Default numerical tolerance used when checking the clock constraints.
DEFAULT_TOL = 1e-9


@dataclass(frozen=True)
class ClockViolation:
    """One violated clock constraint (see :meth:`ClockSchedule.violations`)."""

    constraint: str  # one of "C1", "C2", "C3", "C4"
    message: str
    amount: float  # by how much the inequality is violated (positive)

    def __str__(self) -> str:
        return f"{self.constraint}: {self.message} (by {self.amount:g})"


class ClockSchedule:
    """A concrete k-phase clock: a period plus k ordered phases.

    The schedule holds the clock variables of Section III-A -- the common
    period ``Tc`` and, for each phase, its start ``s_i`` and width ``T_i`` --
    and implements the two pieces of machinery the constraint formulation is
    built on:

    * the phase-ordering flag ``C_ij`` (eq. 1), exposed as
      :meth:`ordering_flag`, and
    * the phase-shift operator ``S_ij = s_j - (s_i + C_ij * Tc)`` (eq. 12),
      exposed as :meth:`phase_shift`.

    Phases are indexed from 0 in the API (the paper numbers them from 1);
    ordering of the ``phases`` sequence defines the phase ordering used by
    ``C_ij`` and by constraint C2.
    """

    def __init__(self, period: float, phases: Sequence[ClockPhase]):
        if period < 0:
            raise ClockError(f"clock period must be >= 0, got {period}")
        if not phases:
            raise ClockError("a clock schedule needs at least one phase")
        names = [p.name for p in phases]
        if len(set(names)) != len(names):
            raise ClockError(f"duplicate phase names in schedule: {names}")
        self._period = float(period)
        self._phases = tuple(phases)
        self._index = {p.name: i for i, p in enumerate(self._phases)}

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def period(self) -> float:
        """The clock cycle time ``Tc``."""
        return self._period

    @property
    def phases(self) -> tuple[ClockPhase, ...]:
        return self._phases

    @property
    def k(self) -> int:
        """Number of phases."""
        return len(self._phases)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self._phases)

    @property
    def starts(self) -> tuple[float, ...]:
        """The ``s_i`` values in phase order."""
        return tuple(p.start for p in self._phases)

    @property
    def widths(self) -> tuple[float, ...]:
        """The ``T_i`` values in phase order."""
        return tuple(p.width for p in self._phases)

    def __len__(self) -> int:
        return len(self._phases)

    def __iter__(self) -> Iterator[ClockPhase]:
        return iter(self._phases)

    def __getitem__(self, key: int | str) -> ClockPhase:
        return self._phases[self.index(key)]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClockSchedule):
            return NotImplemented
        return self._period == other._period and self._phases == other._phases

    def __hash__(self) -> int:
        return hash((self._period, self._phases))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{p.name}[s={p.start:g}, T={p.width:g}]" for p in self._phases
        )
        return f"ClockSchedule(Tc={self._period:g}, {parts})"

    def index(self, key: int | str) -> int:
        """Resolve a phase name or index to its 0-based index."""
        if isinstance(key, str):
            try:
                return self._index[key]
            except KeyError:
                raise ClockError(
                    f"unknown phase {key!r}; have {list(self._index)}"
                ) from None
        if not 0 <= key < self.k:
            raise ClockError(f"phase index {key} out of range 0..{self.k - 1}")
        return key

    # ------------------------------------------------------------------
    # The paper's operators
    # ------------------------------------------------------------------
    def ordering_flag(self, i: int | str, j: int | str) -> int:
        """The phase-ordering flag ``C_ij`` of eq. (1): 0 if i < j else 1.

        ``C_ij = 1`` means that going from phase i to phase j requires
        crossing a clock-cycle boundary.
        """
        return 0 if self.index(i) < self.index(j) else 1

    def phase_shift(self, i: int | str, j: int | str) -> float:
        """The phase-shift operator ``S_ij`` of eq. (12).

        ``S_ij = s_i - (s_j + C_ij * Tc)``.  Adding ``S_ij`` to a time
        referenced to the start of phase i re-references it to the start of
        phase j, accounting for a cycle-boundary crossing when ``i >= j``
        (the paper's Appendix lists, e.g., ``S_13 = s_1 - s_3`` and
        ``S_21 = s_2 - s_1 - Tc``).
        """
        ii, jj = self.index(i), self.index(j)
        c = 0 if ii < jj else 1
        return self._phases[ii].start - (self._phases[jj].start + c * self._period)

    # ------------------------------------------------------------------
    # Constraint checking (C1-C4 of Section III-A)
    # ------------------------------------------------------------------
    def violations(
        self,
        k_matrix: (
            Mapping[tuple[int, int], bool] | Sequence[Sequence[int]] | None
        ) = None,
        tol: float = DEFAULT_TOL,
    ) -> list[ClockViolation]:
        """Check the clock constraints C1-C4 and return any violations.

        ``k_matrix`` identifies the input/output phase pairs of the circuit
        (the paper's K matrix, eq. 2); it is required to check the phase
        nonoverlap constraints C3 and may be given either as a k-by-k nested
        sequence of 0/1 or as a mapping from ``(i, j)`` index pairs.  When it
        is omitted only C1, C2 and C4 are checked.
        """
        out: list[ClockViolation] = []
        tc = self._period

        def check(constraint: str, lhs: float, rhs: float, message: str) -> None:
            # Constraint form: lhs <= rhs.
            if lhs > rhs + tol:
                out.append(ClockViolation(constraint, message, lhs - rhs))

        for idx, p in enumerate(self._phases):
            check("C1", p.width, tc, f"T_{p.name} = {p.width:g} exceeds Tc = {tc:g}")
            check("C1", p.start, tc, f"s_{p.name} = {p.start:g} exceeds Tc = {tc:g}")
            check("C4", 0.0, p.width, f"T_{p.name} = {p.width:g} is negative")
            check("C4", 0.0, p.start, f"s_{p.name} = {p.start:g} is negative")
            if idx + 1 < self.k:
                nxt = self._phases[idx + 1]
                check(
                    "C2",
                    p.start,
                    nxt.start,
                    f"s_{p.name} = {p.start:g} exceeds s_{nxt.name} = {nxt.start:g}",
                )
        check("C4", 0.0, tc, f"Tc = {tc:g} is negative")

        if k_matrix is not None:
            for i, j in self._iter_k_pairs(k_matrix):
                # C3 (eq. 6): s_i >= s_j + T_j - C_ji * Tc for each I/O phase
                # pair phi_i (input) / phi_j (output): the output phase must
                # end before the input phase starts (modulo the cycle).
                pi, pj = self._phases[i], self._phases[j]
                cji = self.ordering_flag(j, i)
                lhs = pj.start + pj.width - cji * tc
                check(
                    "C3",
                    lhs,
                    pi.start,
                    f"output phase {pj.name} must end before input phase "
                    f"{pi.name} starts: s_{pi.name} = {pi.start:g} < {lhs:g}",
                )
        return out

    def _iter_k_pairs(
        self,
        k_matrix: Mapping[tuple[int, int], bool] | Sequence[Sequence[int]],
    ) -> Iterable[tuple[int, int]]:
        if isinstance(k_matrix, Mapping):
            for (i, j), flag in k_matrix.items():
                if flag:
                    yield self.index(i), self.index(j)
            return
        for i, row in enumerate(k_matrix):
            if len(row) != self.k:
                raise ClockError(
                    f"K matrix row {i} has {len(row)} entries, expected {self.k}"
                )
            for j, flag in enumerate(row):
                if flag:
                    yield i, j

    def validate(
        self,
        k_matrix: (
            Mapping[tuple[int, int], bool] | Sequence[Sequence[int]] | None
        ) = None,
        tol: float = DEFAULT_TOL,
    ) -> None:
        """Raise :class:`ClockError` if any of C1-C4 is violated."""
        problems = self.violations(k_matrix, tol=tol)
        if problems:
            details = "; ".join(str(v) for v in problems)
            raise ClockError(f"invalid clock schedule: {details}")

    def is_valid(
        self,
        k_matrix: (
            Mapping[tuple[int, int], bool] | Sequence[Sequence[int]] | None
        ) = None,
        tol: float = DEFAULT_TOL,
    ) -> bool:
        """Return True if the schedule satisfies C1-C4."""
        return not self.violations(k_matrix, tol=tol)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "ClockSchedule":
        """Return a schedule with all times multiplied by ``factor``."""
        if factor < 0:
            raise ClockError(f"scale factor must be >= 0, got {factor}")
        return ClockSchedule(
            self._period * factor, [p.scaled(factor) for p in self._phases]
        )

    def with_period(self, period: float) -> "ClockSchedule":
        """Return a schedule with the same phases but a different period."""
        return ClockSchedule(period, self._phases)

    def normalized(self) -> "ClockSchedule":
        """Return a schedule with phases sorted by start time (stable).

        Constraint C2 requires phases to be numbered in order of their start
        times; this re-establishes that invariant after transformations.
        """
        ordered = sorted(self._phases, key=lambda p: p.start)
        return ClockSchedule(self._period, ordered)

    def as_dict(self) -> dict[str, object]:
        """A plain-data view of the schedule, convenient for reporting."""
        return {
            "period": self._period,
            "phases": [
                {"name": p.name, "start": p.start, "width": p.width}
                for p in self._phases
            ],
        }
