"""Factories for commonly used clock schedules (Fig. 3 of the paper)."""

from __future__ import annotations

from repro.clocking.phase import ClockPhase
from repro.clocking.schedule import ClockSchedule
from repro.errors import ClockError


def _phase_names(k: int, prefix: str) -> list[str]:
    return [f"{prefix}{i + 1}" for i in range(k)]


def symmetric_clock(
    k: int,
    period: float,
    duty: float = 0.5,
    prefix: str = "phi",
) -> ClockSchedule:
    """An evenly spaced k-phase clock.

    Phase ``i`` starts at ``i * period / k``; every phase is active for
    ``duty`` of its slot (``duty * period / k``).  With the default duty of
    one half this produces the canonical nonoverlapping multiphase clocks of
    Fig. 3.
    """
    if k < 1:
        raise ClockError(f"need at least one phase, got k={k}")
    if not 0 <= duty <= 1:
        raise ClockError(f"duty must lie in [0, 1], got {duty}")
    slot = period / k
    phases = [
        ClockPhase(name, start=i * slot, width=duty * slot)
        for i, name in enumerate(_phase_names(k, prefix))
    ]
    return ClockSchedule(period, phases)


def single_phase_clock(period: float, width: float | None = None) -> ClockSchedule:
    """A one-phase clock, active for ``width`` (default: half the period)."""
    if width is None:
        width = period / 2
    return ClockSchedule(period, [ClockPhase("phi1", 0.0, width)])


def two_phase_clock(
    period: float,
    width1: float | None = None,
    width2: float | None = None,
    gap: float | None = None,
) -> ClockSchedule:
    """A two-phase nonoverlapping clock.

    ``gap`` is the separation inserted both between the end of phi1 and the
    start of phi2 and between the end of phi2 and the start of the next
    phi1.  By default the period is divided into four equal quarters:
    two active intervals and two gaps.
    """
    if gap is None:
        gap = period / 4
    if width1 is None:
        width1 = (period - 2 * gap) / 2
    if width2 is None:
        width2 = period - 2 * gap - width1
    if width1 < 0 or width2 < 0 or gap < 0:
        raise ClockError(
            f"two_phase_clock: widths/gap must be >= 0 "
            f"(width1={width1}, width2={width2}, gap={gap})"
        )
    if width1 + width2 + 2 * gap > period + 1e-12:
        raise ClockError(
            f"two_phase_clock: widths {width1}+{width2} plus gaps 2*{gap} "
            f"exceed the period {period}"
        )
    phases = [
        ClockPhase("phi1", 0.0, width1),
        ClockPhase("phi2", width1 + gap, width2),
    ]
    return ClockSchedule(period, phases)


def three_phase_clock(period: float, duty: float = 0.5) -> ClockSchedule:
    """A symmetric three-phase clock (Fig. 3, middle)."""
    return symmetric_clock(3, period, duty)


def four_phase_clock(period: float, duty: float = 0.5) -> ClockSchedule:
    """A symmetric four-phase clock (Fig. 3, bottom)."""
    return symmetric_clock(4, period, duty)


def fig3_clocks(period: float = 100.0) -> dict[str, ClockSchedule]:
    """The two-, three- and four-phase example clocks of the paper's Fig. 3.

    All three satisfy the minimal clock constraints C1-C4; in particular the
    two-phase instance is nonoverlapping, as the constraints require for
    k = 2 (see the remark below eq. (9) in the paper).
    """
    return {
        "two-phase": two_phase_clock(period),
        "three-phase": three_phase_clock(period),
        "four-phase": four_phase_clock(period),
    }
