"""Waveform-level views of clock schedules.

These helpers turn the algebraic schedule description (``s_i``, ``T_i``,
``Tc``) into concrete periodic waveforms: sampled levels, edge lists and
active intervals inside arbitrary observation windows.  They back the
renderers, the discrete-event simulator, and the structural check that the
phases controlling a feedback loop are never simultaneously active.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.clocking.phase import ClockPhase
from repro.clocking.schedule import ClockSchedule
from repro.errors import ClockError


def sample_phase(
    phase: ClockPhase, period: float, times: Sequence[float] | np.ndarray
) -> np.ndarray:
    """Sample one phase at the given absolute times; returns a bool array."""
    if period <= 0:
        raise ClockError(f"period must be positive, got {period}")
    t = np.asarray(times, dtype=float) % period
    end = phase.end
    if end <= period:
        return (t >= phase.start) & (t < end)
    return (t >= phase.start) | (t < end - period)


def sample_schedule(
    schedule: ClockSchedule, times: Sequence[float] | np.ndarray
) -> np.ndarray:
    """Sample all phases; returns a (k, len(times)) bool array."""
    return np.vstack(
        [sample_phase(p, schedule.period, times) for p in schedule.phases]
    )


def phase_edges(
    schedule: ClockSchedule,
    phase: int | str,
    t_start: float = 0.0,
    t_end: float | None = None,
    n_cycles: float = 2.0,
) -> list[tuple[float, str]]:
    """List the (time, kind) edges of a phase inside an observation window.

    ``kind`` is ``"rise"`` at the start of each active interval and
    ``"fall"`` at its end.  The default window spans two clock cycles from
    t = 0, matching the timing diagrams of Fig. 6.
    """
    if t_end is None:
        t_end = t_start + n_cycles * schedule.period
    if t_end < t_start:
        raise ClockError(f"empty window: [{t_start}, {t_end}]")
    p = schedule[schedule.index(phase)]
    tc = schedule.period
    if tc <= 0:
        raise ClockError("phase_edges requires a positive period")
    edges: list[tuple[float, str]] = []
    # Enumerate the cycle instances whose active interval can intersect the
    # window.  The interval of cycle n is [n*Tc + s, n*Tc + s + T).
    n_lo = int(np.floor((t_start - p.end) / tc)) - 1
    n_hi = int(np.ceil((t_end - p.start) / tc)) + 1
    for n in range(n_lo, n_hi + 1):
        rise = n * tc + p.start
        fall = rise + p.width
        if t_start <= rise <= t_end:
            edges.append((rise, "rise"))
        if t_start <= fall <= t_end and p.width > 0:
            edges.append((fall, "fall"))
    edges.sort(key=lambda e: (e[0], e[1] == "fall"))
    return edges


def intervals_in_window(
    schedule: ClockSchedule,
    phase: int | str,
    t_start: float,
    t_end: float,
) -> list[tuple[float, float]]:
    """The active intervals of a phase clipped to ``[t_start, t_end]``."""
    if t_end < t_start:
        raise ClockError(f"empty window: [{t_start}, {t_end}]")
    p = schedule[schedule.index(phase)]
    tc = schedule.period
    if tc <= 0:
        raise ClockError("intervals_in_window requires a positive period")
    if p.width <= 0:
        return []
    out: list[tuple[float, float]] = []
    n_lo = int(np.floor((t_start - p.end) / tc)) - 1
    n_hi = int(np.ceil((t_end - p.start) / tc)) + 1
    for n in range(n_lo, n_hi + 1):
        lo = n * tc + p.start
        hi = lo + p.width
        clipped_lo, clipped_hi = max(lo, t_start), min(hi, t_end)
        if clipped_lo < clipped_hi:
            out.append((clipped_lo, clipped_hi))
    return out


def overlap_duration(
    schedule: ClockSchedule, phase_a: int | str, phase_b: int | str
) -> float:
    """Total time per cycle during which both phases are active.

    Because phases are periodic, the overlap is computed over one full
    period.  A positive value means the two phases are simultaneously
    active for part of the cycle.
    """
    tc = schedule.period
    if tc <= 0:
        raise ClockError("overlap_duration requires a positive period")
    ia = intervals_in_window(schedule, phase_a, 0.0, 2 * tc)
    ib = intervals_in_window(schedule, phase_b, 0.0, 2 * tc)
    total = 0.0
    for lo_a, hi_a in ia:
        for lo_b, hi_b in ib:
            lo, hi = max(lo_a, lo_b), min(hi_a, hi_b)
            if lo < hi:
                total += hi - lo
    # The window covered two periods, so halve the accumulated overlap.
    return total / 2.0


def phases_overlap(
    schedule: ClockSchedule,
    phase_a: int | str,
    phase_b: int | str,
    tol: float = 1e-12,
) -> bool:
    """True if the two phases are ever simultaneously active."""
    return overlap_duration(schedule, phase_a, phase_b) > tol


def simultaneous_and_is_zero(
    schedule: ClockSchedule, phases: Iterable[int | str], tol: float = 1e-12
) -> bool:
    """Check the paper's feedback-loop requirement on a set of phases.

    Section III requires the logical AND of the phases controlling each
    feedback loop to be identically 0: at no time may *all* of them be
    active at once.  Returns True when that holds.
    """
    idxs = [schedule.index(p) for p in phases]
    if not idxs:
        return True
    if len(idxs) == 1:
        # A single phase ANDed with itself is the phase: it must never be
        # active, i.e. have zero width, for the AND to be identically 0.
        return schedule[idxs[0]].width <= tol
    tc = schedule.period
    if tc <= 0:
        raise ClockError("simultaneous_and_is_zero requires a positive period")
    # Intersect the active-interval sets of all phases over one period.
    common = intervals_in_window(schedule, idxs[0], 0.0, 2 * tc)
    for idx in idxs[1:]:
        nxt = intervals_in_window(schedule, idx, 0.0, 2 * tc)
        merged: list[tuple[float, float]] = []
        for lo_a, hi_a in common:
            for lo_b, hi_b in nxt:
                lo, hi = max(lo_a, lo_b), min(hi_a, hi_b)
                if lo < hi - tol:
                    merged.append((lo, hi))
        common = merged
        if not common:
            return True
    return not common
