"""repro: the SMO latch-timing model and LP-optimal clock scheduling.

A from-scratch reproduction of K. A. Sakallah, T. N. Mudge and
O. A. Olukotun, *Analysis and Design of Latch-Controlled Synchronous
Digital Circuits* (DAC 1990): the complete timing-constraint formulation
for level-sensitive latch circuits under arbitrary multiphase clocks
(C1-C4, L1-L3), the proof-backed LP relaxation (Theorem 1), and Algorithm
MLP for computing the optimal cycle time -- plus the analysis problem,
baselines (NRIP, edge-triggered, borrowing, binary search), a gate-level
delay-extraction substrate, a circuit-description language, renderers and
a cycle-accurate simulator.

Quickstart::

    from repro import CircuitBuilder, minimize_cycle_time

    b = CircuitBuilder(phases=["phi1", "phi2"])
    b.latch("L1", phase="phi1", setup=10, delay=10)
    b.latch("L2", phase="phi2", setup=10, delay=10)
    b.path("L1", "L2", delay=20)
    b.path("L2", "L1", delay=60)
    result = minimize_cycle_time(b.build())
    print(result.period, result.schedule)
"""

from repro.baselines import (
    binary_search_minimize,
    borrowing_minimize,
    edge_triggered_minimize,
    nrip_minimize,
)
from repro.circuit import (
    CircuitBuilder,
    DelayArc,
    EdgeKind,
    FlipFlop,
    Latch,
    TimingGraph,
    check_structure,
    lump_parallel_latches,
)
from repro.clocking import (
    ClockPhase,
    ClockSchedule,
    four_phase_clock,
    symmetric_clock,
    three_phase_clock,
    two_phase_clock,
)
from repro.core import (
    ConstraintOptions,
    MLPOptions,
    OptimalClockResult,
    TimingReport,
    analyze,
    build_program,
    check_hold,
    critical_segments,
    minimize_cycle_time,
    signoff,
    sweep_delay,
)
from repro.engine import (
    AnalyzeJob,
    BaselineJob,
    Engine,
    EngineReport,
    JobResult,
    MinimizeJob,
    ResultCache,
    SweepJob,
    job_key,
    run_jobs,
)
from repro.errors import (
    AnalysisError,
    CircuitError,
    ClockError,
    DivergentTimingError,
    InfeasibleError,
    LPError,
    ParseError,
    PhaseOverlapError,
    ReproError,
    SolverError,
    UnboundedError,
)
from repro.export import to_cplex_lp, to_dot, to_mps
from repro.lang import parse_circuit, parse_file, write_circuit
from repro.netlist import Library, Netlist, default_library, extract_timing_graph
from repro.render import clock_diagram, schedule_svg, strip_diagram
from repro.sim import simulate

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "ClockError",
    "CircuitError",
    "PhaseOverlapError",
    "LPError",
    "InfeasibleError",
    "UnboundedError",
    "SolverError",
    "AnalysisError",
    "DivergentTimingError",
    "ParseError",
    # clocking
    "ClockPhase",
    "ClockSchedule",
    "symmetric_clock",
    "two_phase_clock",
    "three_phase_clock",
    "four_phase_clock",
    # circuit
    "Latch",
    "FlipFlop",
    "EdgeKind",
    "DelayArc",
    "TimingGraph",
    "CircuitBuilder",
    "check_structure",
    "lump_parallel_latches",
    # core
    "ConstraintOptions",
    "MLPOptions",
    "OptimalClockResult",
    "TimingReport",
    "analyze",
    "build_program",
    "minimize_cycle_time",
    "signoff",
    "critical_segments",
    "sweep_delay",
    "check_hold",
    # baselines
    "nrip_minimize",
    "edge_triggered_minimize",
    "borrowing_minimize",
    "binary_search_minimize",
    # engine
    "AnalyzeJob",
    "BaselineJob",
    "Engine",
    "EngineReport",
    "JobResult",
    "MinimizeJob",
    "ResultCache",
    "SweepJob",
    "job_key",
    "run_jobs",
    # language
    "parse_circuit",
    "parse_file",
    "write_circuit",
    # netlist
    "Netlist",
    "Library",
    "default_library",
    "extract_timing_graph",
    # render / sim / export
    "clock_diagram",
    "strip_diagram",
    "schedule_svg",
    "simulate",
    "to_cplex_lp",
    "to_mps",
    "to_dot",
    "__version__",
]
