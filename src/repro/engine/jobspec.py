"""Declarative job types and canonical content hashing for the batch engine.

A *job* is a self-contained description of one timing problem -- circuit,
clock information and solver options -- that can be shipped to a worker
process, executed, cached and replayed.  Two jobs that describe the same
problem must hash identically no matter how their circuits were built
(builder insertion order, arc declaration order), so the canonical key is
computed over a *sorted* plain-data signature of the inputs rather than
over Python object identity.

Floats are rendered with ``repr``, which emits the shortest decimal string
that round-trips the value exactly; keys are therefore stable across
processes and sessions while still distinguishing genuinely different
delay values.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.circuit.elements import FlipFlop
from repro.circuit.graph import TimingGraph
from repro.clocking.schedule import ClockSchedule
from repro.core.constraints import ConstraintOptions
from repro.core.mlp import MLPOptions
from repro.lp.backends import canonical_backend
from repro.errors import ReproError
from repro.lp.basis import Basis

#: Bump when the signature layout changes so stale disk caches never match.
SIGNATURE_VERSION = 2


def _f(x: float) -> str:
    """Exact, canonical text for a float (repr round-trips binary floats)."""
    return repr(float(x))


def graph_signature(graph: TimingGraph) -> dict:
    """A plain-data signature of a :class:`TimingGraph`.

    Synchronizers and arcs are sorted by name so equivalent builder
    orderings produce identical signatures; the phase list keeps its order
    because phase ordering is semantically significant (constraint C2).
    """
    syncs = []
    for s in graph.synchronizers:
        entry = {
            "name": s.name,
            "kind": "ff" if isinstance(s, FlipFlop) else "latch",
            "phase": s.phase,
            "setup": _f(s.setup),
            "delay": _f(s.delay),
            "hold": _f(s.hold),
        }
        if isinstance(s, FlipFlop):
            entry["edge"] = s.edge.value
        syncs.append(entry)
    syncs.sort(key=lambda e: e["name"])
    arcs = sorted(
        (
            {
                "src": a.src,
                "dst": a.dst,
                "delay": _f(a.delay),
                "min_delay": _f(a.min_delay),
            }
            for a in graph.arcs
        ),
        key=lambda e: (e["src"], e["dst"]),
    )
    return {"phases": list(graph.phase_names), "syncs": syncs, "arcs": arcs}


def schedule_signature(schedule: ClockSchedule | None) -> dict | None:
    if schedule is None:
        return None
    return {
        "period": _f(schedule.period),
        "phases": [
            {"name": p.name, "start": _f(p.start), "width": _f(p.width)}
            for p in schedule.phases
        ],
    }


def _mapping_signature(mapping: Mapping[str, float] | None) -> list | None:
    if not mapping:
        return None
    return sorted([k, _f(v)] for k, v in mapping.items())


def options_signature(options: ConstraintOptions | None) -> dict | None:
    if options is None:
        return None
    skew = None
    if options.skew:
        skew = sorted(
            [phase, _f(b.early), _f(b.late)] for phase, b in options.skew.items()
        )
    return {
        "min_width": _f(options.min_width),
        "min_separation": _f(options.min_separation),
        "setup_margin": _f(options.setup_margin),
        "fixed_period": None
        if options.fixed_period is None
        else _f(options.fixed_period),
        "fixed_starts": _mapping_signature(options.fixed_starts),
        "fixed_widths": _mapping_signature(options.fixed_widths),
        "zero_departure_phases": list(options.zero_departure_phases),
        "max_period": None if options.max_period is None else _f(options.max_period),
        "skew": skew,
    }


def mlp_signature(mlp: MLPOptions | None) -> dict | None:
    """Cache-relevant MLP options.

    ``kernel`` and ``sanitize`` are deliberately excluded: the fixpoint
    kernel is a pure performance device and the sanitizer a pure
    verification device -- neither changes a reported optimum, so neither
    may split the cache.  For the same reason decorated backend spellings
    hash as their registry-canonical name (``"cycle+check"`` as plain
    ``"cycle"``): the LP cross-check and forced sanitize only ever
    *raise*, they never change what the job returns, so both spellings
    must share one cache entry.
    """
    if mlp is None:
        return None
    backend = None if mlp.backend is None else canonical_backend(mlp.backend)
    return {
        "backend": backend,
        "iteration": mlp.iteration,
        "verify": mlp.verify,
        "compact": mlp.compact,
        "tol": _f(mlp.tol),
        "warm_start": mlp.warm_start,
    }


def _digest(signature: dict) -> str:
    blob = json.dumps(signature, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Job types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MinimizeJob:
    """Run Algorithm MLP on one circuit (optionally with one arc overridden).

    ``arc_override`` carries a ``(src, dst, delay)`` triple applied with
    :meth:`TimingGraph.with_arc_delay` before solving; parametric sweeps use
    it so that every grid point of the same base circuit shares one graph
    object instead of materializing a modified copy per job.

    ``warm_start``, ``cold_pivots_hint`` and ``kernel`` are *hints*,
    deliberately excluded from :meth:`signature`: a warm-start basis
    changes the pivot path, never the optimum, so two jobs that differ
    only in their hints must share one cache entry.  ``cold_pivots_hint``
    anchors the ``pivots_saved`` metric -- it carries the pivot count of
    the chain's cold solve so warm solves can report how much work the
    basis skipped.  ``kernel`` overrides the fixpoint execution engine
    (``"dict"``/``"array"``/``"auto"``, see
    :attr:`repro.core.mlp.MLPOptions.kernel`); it is a pure performance
    device -- every kernel the engine selects produces identical results,
    so it must not split the cache either.
    """

    graph: TimingGraph
    options: ConstraintOptions | None = None
    mlp: MLPOptions | None = None
    arc_override: tuple[str, str, float] | None = None
    label: str = ""
    # Performance hints -- not part of the cache signature (see docstring).
    warm_start: Basis | None = None
    cold_pivots_hint: int = 0
    kernel: str | None = None

    kind = "minimize"

    def signature(self) -> dict:
        return {
            "v": SIGNATURE_VERSION,
            "kind": self.kind,
            "graph": graph_signature(self.graph),
            "options": options_signature(self.options),
            "mlp": mlp_signature(self.mlp),
            "arc_override": None
            if self.arc_override is None
            else [
                self.arc_override[0],
                self.arc_override[1],
                _f(self.arc_override[2]),
            ],
        }


@dataclass(frozen=True)
class AnalyzeJob:
    """Verify one circuit against a fixed clock schedule."""

    graph: TimingGraph
    schedule: ClockSchedule
    options: ConstraintOptions | None = None
    label: str = ""

    kind = "analyze"

    def signature(self) -> dict:
        return {
            "v": SIGNATURE_VERSION,
            "kind": self.kind,
            "graph": graph_signature(self.graph),
            "schedule": schedule_signature(self.schedule),
            "options": options_signature(self.options),
        }


#: Baseline algorithms runnable as jobs, by registry name.
BASELINE_ALGORITHMS = (
    "mlp",
    "nrip",
    "borrowing-1",
    "borrowing",
    "binary-search",
    "edge-triggered",
)


@dataclass(frozen=True)
class BaselineJob:
    """Run one baseline algorithm (see :data:`BASELINE_ALGORITHMS`)."""

    graph: TimingGraph
    algorithm: str
    options: ConstraintOptions | None = None
    mlp: MLPOptions | None = None
    label: str = ""

    kind = "baseline"

    def __post_init__(self) -> None:
        if self.algorithm not in BASELINE_ALGORITHMS:
            raise ReproError(
                f"unknown baseline algorithm {self.algorithm!r}; "
                f"choose from {BASELINE_ALGORITHMS}"
            )

    def signature(self) -> dict:
        return {
            "v": SIGNATURE_VERSION,
            "kind": self.kind,
            "algorithm": self.algorithm,
            "graph": graph_signature(self.graph),
            "options": options_signature(self.options),
            "mlp": mlp_signature(self.mlp),
        }


@dataclass(frozen=True)
class SweepJob:
    """A parametric Tc(delay) sweep over a grid, one arc delay varied.

    Executed by :meth:`repro.engine.runner.Engine.map_sweep`, which expands
    the grid into :class:`MinimizeJob` instances (deduplicated through the
    cache) rather than running monolithically inside one worker.
    """

    graph: TimingGraph
    src: str
    dst: str
    grid: tuple[float, ...]
    options: ConstraintOptions | None = None
    mlp: MLPOptions | None = None
    slope_tol: float = 1e-6
    label: str = ""

    kind = "sweep"

    def signature(self) -> dict:
        return {
            "v": SIGNATURE_VERSION,
            "kind": self.kind,
            "graph": graph_signature(self.graph),
            "src": self.src,
            "dst": self.dst,
            "grid": [_f(x) for x in self.grid],
            "options": options_signature(self.options),
            "mlp": mlp_signature(self.mlp),
            "slope_tol": _f(self.slope_tol),
        }


@dataclass(frozen=True)
class FaultJob:
    """A fault-injection job for exercising the pool's failure handling.

    ``mode`` selects the behavior: ``"ok"`` returns ``value``; ``"error"``
    raises inside the worker (a *soft* failure -- the worker survives);
    ``"crash"`` kills the worker process outright; ``"hang"`` sleeps for
    ``seconds`` (long enough to trip a per-job timeout); ``"siginfo"``
    reports the executing process's SIGINT/SIGTERM dispositions (used to
    verify worker signal setup from inside the pool).  When
    ``crash_once_path`` is set, crash/hang modes succeed on any attempt
    after the file exists -- the first attempt creates it and fails -- which
    is how the retry tests produce a deterministic crash-then-recover run.
    """

    mode: str = "ok"
    value: float = 0.0
    seconds: float = 0.0
    crash_once_path: str | None = None
    label: str = ""

    kind = "fault"

    def signature(self) -> dict:
        return {
            "v": SIGNATURE_VERSION,
            "kind": self.kind,
            "mode": self.mode,
            "value": _f(self.value),
            "seconds": _f(self.seconds),
            "crash_once_path": self.crash_once_path,
        }


Job = MinimizeJob | AnalyzeJob | BaselineJob | SweepJob | FaultJob


def job_key(job: Job) -> str:
    """The canonical content hash of a job (sha256 over its signature)."""
    return _digest(job.signature())


# ----------------------------------------------------------------------
# Job results
# ----------------------------------------------------------------------
@dataclass
class JobResult:
    """Outcome of executing one job: headline value, payload and metrics.

    The payload is plain JSON-serializable data (never live model objects),
    so results can round-trip through the on-disk cache and across process
    boundaries cheaply.  ``value`` is the job's headline scalar -- the
    optimal period for minimize/baseline jobs, the worst slack for analyze
    jobs -- and ``metrics`` carries the per-stage instrumentation collected
    by :mod:`repro.engine.metrics`.
    """

    key: str
    kind: str
    ok: bool
    value: float | None = None
    payload: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    error: str | None = None
    label: str = ""
    attempts: int = 1
    cached: bool = False
    #: Serialized span trees recorded while executing this job in a pool
    #: worker (see :mod:`repro.obs.trace`).  Transport-only: deliberately
    #: excluded from :meth:`to_dict` so cached/duplicated results never
    #: replay another run's spans.
    spans: list = field(default_factory=list)
    #: Metrics-registry snapshot drained by the pool worker that executed
    #: this job (see :mod:`repro.obs.metrics`).  Transport-only like
    #: ``spans``: excluded from :meth:`to_dict` so cached/duplicated
    #: results never double-merge another run's counts -- which also makes
    #: crash-retry merges exactly-once (a crashed attempt never ships).
    obs_metrics: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "kind": self.kind,
            "ok": self.ok,
            "value": self.value,
            "payload": self.payload,
            "metrics": self.metrics,
            "error": self.error,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "JobResult":
        return cls(
            key=data["key"],
            kind=data["kind"],
            ok=data["ok"],
            value=data["value"],
            payload=dict(data.get("payload") or {}),
            metrics=dict(data.get("metrics") or {}),
            error=data.get("error"),
            label=data.get("label", ""),
        )


def jobs_from_grid(
    graph: TimingGraph,
    src: str,
    dst: str,
    values: Sequence[float],
    options: ConstraintOptions | None = None,
    mlp: MLPOptions | None = None,
) -> list[MinimizeJob]:
    """One :class:`MinimizeJob` per grid value of the ``src -> dst`` delay."""
    return [
        MinimizeJob(
            graph=graph,
            options=options,
            mlp=mlp,
            arc_override=(src, dst, float(x)),
            label=f"{src}->{dst}={x:g}",
        )
        for x in values
    ]
