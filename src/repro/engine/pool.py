"""Process pool for the batch engine: timeouts, crash retry, ordered results.

Design goals, in priority order:

1. **Deterministic output.**  Results are returned in submission order, and
   each job is executed by the same pure function
   (:func:`repro.engine.execute.execute_job`) regardless of worker count,
   so a parallel run is bit-identical to a serial run.
2. **Fault isolation.**  Each worker owns a private task queue and result
   pipe; a worker that dies mid-job (segfault, ``os._exit``, OOM kill)
   corrupts nothing shared.  The master detects the death via the process
   sentinel, respawns a fresh worker in the slot, and retries the job up to
   ``retries`` extra attempts before reporting a failed result.
3. **Bounded latency.**  An optional per-job ``timeout`` (seconds) applies
   to every attempt; a worker that exceeds it is terminated and treated
   like a crash.

Soft failures -- exceptions raised *inside* a job, which the worker
survives -- are returned as failed results immediately, without retry:
they are deterministic properties of the job, not of the run.

The serial fallback (:class:`SerialPool`) executes jobs in-process with
the same interface; it cannot enforce timeouts or survive hard crashes,
which is why fault-injection tests always use the process pool.
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from multiprocessing.connection import wait as _wait_connections
from types import FrameType
from typing import Any, Callable, Union

from repro.engine.execute import execute_job
from repro.engine.jobspec import Job, JobResult
from repro.obs import metrics, trace

#: What signal.signal accepts and returns (mirrors typeshed's _HANDLER).
_SigHandler = Union[Callable[[int, "FrameType | None"], Any], int,
                    signal.Handlers, None]

#: How long (seconds) the master sleeps between health checks when no
#: result arrives and no deadline is pending.
_POLL_INTERVAL = 0.1


@dataclass
class PoolStats:
    """Execution accounting for one pool instance."""

    workers: int = 1
    executed: int = 0
    retries: int = 0
    crashes: int = 0
    timeouts: int = 0
    soft_failures: int = 0


def _preferred_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _worker_main(
    task_queue: multiprocessing.queues.Queue,
    conn: Connection,
    trace_enabled: bool = False,
    metrics_enabled: bool = False,
) -> None:
    """Worker loop: execute jobs from the queue until the ``None`` sentinel."""
    # Ctrl-C in a terminal delivers SIGINT to the whole foreground process
    # group -- master *and* workers.  The master owns interrupt handling
    # (it drains and terminates workers deliberately); a worker that also
    # dies from the same keystroke would be misread as a crash and
    # pointlessly retried during teardown.  SIGTERM keeps its default
    # disposition so ``Process.terminate()`` still works.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    # A forked worker inherits the parent tracer's open spans and roots;
    # start from a clean per-process tracer either way.  Job spans recorded
    # here become tracer roots, shipped back on each JobResult (see
    # repro.engine.execute.execute_job).
    trace.reset(enabled=trace_enabled)
    # Same story for metrics: a forked worker inherits the parent's live
    # registry values; start from zero so the per-job drain below ships
    # only this worker's own deltas.
    metrics.reset(enabled=metrics_enabled)
    while True:
        item = task_queue.get()
        if item is None:
            break
        idx, job, key = item
        try:
            result = execute_job(job, key)
        except BaseException as err:  # noqa: BLE001 - keep the worker alive
            result = JobResult(
                key=key,
                kind=getattr(job, "kind", "?"),
                ok=False,
                error=f"unhandled {type(err).__name__}: {err}",
                label=getattr(job, "label", ""),
            )
        if metrics_enabled:
            # Drain (snapshot + zero) so each result carries exactly the
            # metrics recorded since the previous send; the parent merges
            # them on receipt (repro.engine.runner), and a crashed attempt
            # never sends, so a retried job merges exactly once.
            result.obs_metrics = metrics.drain()
        conn.send((idx, result))


@dataclass
class _Assignment:
    index: int
    job: Job
    key: str
    attempts: int
    deadline: float | None


class _Worker:
    """One slot of the pool: process + private task queue + result pipe."""

    def __init__(self, ctx: multiprocessing.context.BaseContext) -> None:
        self.task_queue = ctx.Queue()
        self.conn, child_conn = ctx.Pipe(duplex=False)
        self.proc = ctx.Process(
            target=_worker_main,
            args=(
                self.task_queue,
                child_conn,
                trace.is_enabled(),
                metrics.is_enabled(),
            ),
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        self.assignment: _Assignment | None = None

    def assign(self, item: _Assignment) -> None:
        self.assignment = item
        self.task_queue.put((item.index, item.job, item.key))

    def shutdown(self, graceful: bool = True) -> None:
        try:
            if graceful and self.proc.is_alive():
                self.task_queue.put(None)
                self.proc.join(timeout=1.0)
            if self.proc.is_alive():
                self.proc.terminate()
                self.proc.join(timeout=1.0)
            if self.proc.is_alive():  # pragma: no cover - stubborn process
                self.proc.kill()
                self.proc.join(timeout=1.0)
        finally:
            self.conn.close()
            if not graceful:
                # Don't block interpreter exit flushing a queue nobody
                # will ever read (the feeder thread would otherwise be
                # joined at shutdown while the pipe is full).
                self.task_queue.cancel_join_thread()
            self.task_queue.close()


class SerialPool:
    """In-process fallback with the same ``run`` interface as WorkerPool."""

    def __init__(self) -> None:
        self.stats = PoolStats(workers=1)

    def run(self, tasks: list[tuple[Job, str]]) -> list[JobResult]:
        results = []
        for job, key in tasks:
            result = execute_job(job, key)
            self.stats.executed += 1
            if not result.ok:
                self.stats.soft_failures += 1
            results.append(result)
        return results

    def close(self) -> None:
        pass


class WorkerPool:
    """A fixed-size pool of worker processes with crash retry.

    ``retries`` is the number of *extra* attempts granted to a job whose
    worker crashed or timed out (``retries=1`` means at most two attempts).
    """

    def __init__(
        self,
        workers: int,
        timeout: float | None = None,
        retries: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.timeout = timeout
        self.retries = max(0, retries)
        self.stats = PoolStats(workers=self.workers)
        self._ctx = _preferred_context()

    # ------------------------------------------------------------------
    def run(self, tasks: list[tuple[Job, str]]) -> list[JobResult]:
        """Execute ``tasks`` (job, canonical key) and return ordered results."""
        if not tasks:
            return []
        total = len(tasks)
        pending: deque[_Assignment] = deque(
            _Assignment(index=i, job=job, key=key, attempts=0, deadline=None)
            for i, (job, key) in enumerate(tasks)
        )
        results: dict[int, JobResult] = {}
        pool = [_Worker(self._ctx) for _ in range(min(self.workers, total))]
        previous_term = self._install_term_handler()
        graceful = True
        try:
            metered = metrics.is_enabled()
            while len(results) < total:
                self._dispatch(pool, pending)
                if metered:
                    # Jobs waiting for a worker slot right now -- the USE
                    # saturation signal for pool sizing.
                    metrics.set_gauge("engine_pool_queue_depth", len(pending))
                self._collect(pool, pending, results)
            if metered:
                metrics.set_gauge("engine_pool_queue_depth", 0)
        except BaseException:
            # Interrupted (KeyboardInterrupt, SIGTERM) or master bug: skip
            # the queue-drain handshake and terminate workers outright so
            # no multiprocessing child outlives the batch.
            graceful = False
            raise
        finally:
            for worker in pool:
                worker.shutdown(graceful=graceful)
            self._restore_term_handler(previous_term)
        return [results[i] for i in range(total)]

    @staticmethod
    def _install_term_handler() -> _SigHandler:
        """Route SIGTERM through the KeyboardInterrupt teardown path.

        A service manager stopping a batch run sends SIGTERM; the default
        disposition kills the master instantly and orphans the daemonized
        workers mid-job.  Converting it to KeyboardInterrupt reuses the
        exact Ctrl-C path: non-graceful pool shutdown, then the CLI's exit
        code 130.  Only possible from the main thread; elsewhere (e.g. the
        serve layer's executor threads) the default disposition stands.
        """
        if threading.current_thread() is not threading.main_thread():
            return None

        def _raise(signum: int, frame: FrameType | None) -> None:
            raise KeyboardInterrupt(f"terminated by signal {signum}")
        try:
            return signal.signal(signal.SIGTERM, _raise)
        except (ValueError, OSError):  # pragma: no cover
            return None

    @staticmethod
    def _restore_term_handler(previous: _SigHandler) -> None:
        if previous is None:
            return
        try:
            signal.signal(signal.SIGTERM, previous)
        except (ValueError, OSError):  # pragma: no cover
            pass

    def close(self) -> None:
        pass  # workers live only inside run()

    # ------------------------------------------------------------------
    def _dispatch(self, pool: list[_Worker], pending: deque[_Assignment]) -> None:
        for worker in pool:
            if not pending:
                return
            if worker.assignment is None:
                item = pending.popleft()
                item.attempts += 1
                item.deadline = (
                    time.monotonic() + self.timeout if self.timeout else None
                )
                worker.assign(item)

    def _collect(
        self,
        pool: list[_Worker],
        pending: deque[_Assignment],
        results: dict[int, JobResult],
    ) -> None:
        busy = [w for w in pool if w.assignment is not None]
        if not busy:  # pragma: no cover - dispatch always precedes collect
            return
        now = time.monotonic()
        deadlines = [w.assignment.deadline for w in busy if w.assignment.deadline]
        wait_for = _POLL_INTERVAL
        if deadlines:
            wait_for = max(0.0, min(min(deadlines) - now, _POLL_INTERVAL))
        waitables = [w.conn for w in busy] + [w.proc.sentinel for w in busy]
        ready = set(_wait_connections(waitables, timeout=wait_for))

        now = time.monotonic()
        for i, worker in enumerate(pool):
            item = worker.assignment
            if item is None:
                continue
            # A finished result beats a sentinel: a worker that sent its
            # result and was then killed still did the work.
            if worker.conn in ready:
                try:
                    index, result = worker.conn.recv()
                except (EOFError, OSError):
                    pool[i] = self._fail_over(worker, pending, results, "crashed")
                    continue
                result.attempts = item.attempts
                self.stats.executed += 1
                if not result.ok:
                    self.stats.soft_failures += 1
                results[index] = result
                worker.assignment = None
            elif worker.proc.sentinel in ready or not worker.proc.is_alive():
                pool[i] = self._fail_over(worker, pending, results, "crashed")
            elif item.deadline is not None and now > item.deadline:
                pool[i] = self._fail_over(worker, pending, results, "timed out")

    def _fail_over(
        self,
        worker: _Worker,
        pending: deque[_Assignment],
        results: dict[int, JobResult],
        reason: str,
    ) -> _Worker:
        """Replace a dead/stuck worker; requeue or fail its assignment."""
        item = worker.assignment
        assert item is not None
        if reason == "timed out":
            self.stats.timeouts += 1
        else:
            self.stats.crashes += 1
        if trace.is_enabled():
            trace.add_event(
                "pool.failover",
                reason=reason,
                attempts=item.attempts,
                label=getattr(item.job, "label", ""),
            )
        worker.shutdown(graceful=False)
        if item.attempts <= self.retries:
            self.stats.retries += 1
            # Retry first so ordering pressure stays on the failed job.
            pending.appendleft(item)
        else:
            results[item.index] = JobResult(
                key=item.key,
                kind=getattr(item.job, "kind", "?"),
                ok=False,
                error=(
                    f"worker {reason} (attempt {item.attempts} of "
                    f"{self.retries + 1})"
                ),
                label=getattr(item.job, "label", ""),
                attempts=item.attempts,
            )
        return _Worker(self._ctx)


def make_pool(
    jobs: int,
    timeout: float | None = None,
    retries: int = 1,
) -> SerialPool | WorkerPool:
    """A pool sized to ``jobs``: serial for 1, processes otherwise."""
    if jobs <= 1:
        return SerialPool()
    return WorkerPool(workers=jobs, timeout=timeout, retries=retries)
