"""repro.engine -- cached, parallel batch analysis with per-stage metrics.

The engine executes declarative timing jobs (minimize / analyze / sweep /
baseline) through a content-hash result cache and an optional process
pool, collecting per-stage wall-clock metrics along the way.  See
``docs/ENGINE.md`` for the full tour.
"""

from repro.engine.cache import CacheStats, ResultCache
from repro.engine.jobspec import (
    BASELINE_ALGORITHMS,
    AnalyzeJob,
    BaselineJob,
    FaultJob,
    Job,
    JobResult,
    MinimizeJob,
    SweepJob,
    job_key,
    jobs_from_grid,
)
from repro.engine.metrics import STAGES, EngineReport, MetricsAggregator, StageTimer
from repro.engine.pool import PoolStats, SerialPool, WorkerPool, make_pool
from repro.engine.runner import Engine, map_sweep, run_jobs

__all__ = [
    "AnalyzeJob",
    "BASELINE_ALGORITHMS",
    "BaselineJob",
    "CacheStats",
    "Engine",
    "EngineReport",
    "FaultJob",
    "Job",
    "JobResult",
    "MetricsAggregator",
    "MinimizeJob",
    "PoolStats",
    "ResultCache",
    "STAGES",
    "SerialPool",
    "StageTimer",
    "SweepJob",
    "WorkerPool",
    "job_key",
    "jobs_from_grid",
    "make_pool",
    "map_sweep",
    "run_jobs",
]
