"""Worker-side job execution: turn a job into a plain-data JobResult.

This module is imported by pool worker processes, so it must stay free of
engine-level state: ``execute_job`` is a pure function from a job to a
:class:`~repro.engine.jobspec.JobResult`.  Exceptions raised by the
underlying solvers are converted into failed results (soft failures); only
process death or a timeout counts as a crash, which the pool handles.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace

from repro.baselines.binary_search import binary_search_minimize
from repro.baselines.borrowing import borrowing_minimize
from repro.baselines.edge_triggered import edge_triggered_minimize
from repro.baselines.nrip import nrip_minimize
from repro.core.analysis import analyze
from repro.core.constraints import build_program
from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.engine.jobspec import (
    AnalyzeJob,
    BaselineJob,
    FaultJob,
    Job,
    JobResult,
    MinimizeJob,
    job_key,
)
from repro.engine.metrics import StageTimer, job_metrics
from repro.errors import ReproError
from repro.lint.graphdiag import diagnose
from repro.obs import emit, metrics, trace


def execute_job(job: Job, key: str | None = None) -> JobResult:
    """Execute one job, catching solver errors into a failed result."""
    key = key or job_key(job)
    start = time.perf_counter()
    try:
        executor = _EXECUTORS[job.kind]
    except KeyError:
        return JobResult(
            key=key,
            kind=getattr(job, "kind", "?"),
            ok=False,
            error=f"no executor for job kind {getattr(job, 'kind', '?')!r}",
            label=getattr(job, "label", ""),
        )
    tracer = trace.get_tracer()
    with tracer.span(
        f"job.{job.kind}", key=key[:12], label=job.label
    ) as job_span:
        try:
            result = executor(job, key)
        except ReproError as err:
            result = JobResult(
                key=key,
                kind=job.kind,
                ok=False,
                error=f"{type(err).__name__}: {err}",
                label=job.label,
            )
        job_span.set("ok", result.ok)
    # In a pool worker the job span is a *root* of the worker's tracer;
    # detach and ship it so the parent engine can graft it under the live
    # batch span.  In-process (serial pool) the span already nested live.
    if job_span and tracer.take_root(job_span):
        result.spans = [job_span.to_dict()]
    result.metrics.setdefault("stages", {})
    result.metrics["wall_seconds"] = time.perf_counter() - start
    if metrics.is_enabled():
        metrics.inc(
            "engine_jobs_total",
            kind=result.kind,
            ok="true" if result.ok else "false",
        )
        metrics.observe(
            "engine_job_seconds", result.metrics["wall_seconds"], kind=result.kind
        )
    return result


def _clock_is_pinned(job: MinimizeJob) -> bool:
    """True when the job's options pin or cap clock values.

    Only then can the constraint system be infeasible -- an unconstrained
    P2 always has a (large enough) feasible period -- so only then is the
    pre-flight graph diagnosis worth its Bellman-Ford pass.
    """
    options = job.options
    return options is not None and (
        options.fixed_period is not None
        or options.max_period is not None
        or bool(options.fixed_starts)
        or bool(options.fixed_widths)
    )


def _execute_minimize(job: MinimizeJob, key: str) -> JobResult:
    graph = job.graph
    if job.arc_override is not None:
        src, dst, delay = job.arc_override
        graph = graph.with_arc_delay(src, dst, delay)
    mlp = job.mlp
    if job.kernel is not None:
        # Pure performance hint: redirect the slide onto the requested
        # fixpoint kernel without disturbing the (cache-relevant) options.
        mlp = replace(mlp or MLPOptions(), kernel=job.kernel)
    smo = None
    lint_payload = None
    if _clock_is_pinned(job):
        # Pre-flight: a negative cycle in the difference-constraint graph
        # proves the LP infeasible before any simplex runs; the certificate
        # ships in the payload either way, and the built program is reused
        # by the solve below when the job survives the check.
        with trace.span("lint.preflight") as lint_span:
            assert job.options is not None
            smo = build_program(graph, job.options)
            diagnostics = diagnose(graph, job.options, smo=smo)
            lint_span.set("feasible", diagnostics.feasible)
        lint_payload = diagnostics.to_dict()
        if diagnostics.certificate is not None:
            certificate = diagnostics.certificate
            emit(
                "lint.infeasible",
                level="warning",
                label=job.label,
                kind=certificate.kind,
                constraints=list(certificate.constraints),
            )
            return JobResult(
                key=key,
                kind=job.kind,
                ok=False,
                error="lint: " + certificate.message,
                payload={"lint": lint_payload},
                metrics=job_metrics(wall_seconds=0.0, lp_solves=0),
                label=job.label,
            )
    result = minimize_cycle_time(
        graph, job.options, mlp, warm_start=job.warm_start, smo=smo
    )
    stages = dict(result.extra.get("stages", {}))
    basis = result.extra.get("basis")
    payload = {
        "period": result.period,
        "schedule": result.schedule.as_dict(),
        "departures": dict(result.departures),
        "slide_sweeps": result.slide_sweeps,
        "slide_method": result.slide_method,
        "slide_residual": result.slide_residual,
        "feasible": result.feasible,
        # Plain-data optimal basis (when the backend exposes one) so sweep
        # chains can warm-start the next grid point through the cache.
        "basis": basis.to_dict() if basis is not None else None,
    }
    if lint_payload is not None:
        payload["lint"] = lint_payload
    sanitize = result.extra.get("sanitize")
    if sanitize is not None:
        payload["sanitize"] = sanitize.to_dict()
    hits = int(result.extra.get("warm_start_hits", 0))
    lp_iterations = int(result.extra.get("lp_iterations", 0))
    pivots_saved = 0
    if hits and job.cold_pivots_hint > 0:
        pivots_saved = max(0, job.cold_pivots_hint - lp_iterations)
    return JobResult(
        key=key,
        kind=job.kind,
        ok=True,
        value=result.period,
        payload=payload,
        metrics=job_metrics(
            wall_seconds=0.0,  # overwritten by execute_job
            stages=stages,
            lp_solves=int(result.extra.get("lp_solves", 1)),
            lp_iterations=lp_iterations,
            slide_sweeps=result.slide_sweeps,
            warm_start_hits=hits,
            warm_start_misses=int(result.extra.get("warm_start_misses", 0)),
            pivots_saved=pivots_saved,
            refactorizations=int(result.extra.get("refactorizations", 0)),
        ),
        label=job.label,
    )


def _execute_analyze(job: AnalyzeJob, key: str) -> JobResult:
    timer = StageTimer()
    with timer.span("analysis"):
        report = analyze(job.graph, job.schedule, job.options)
    worst = report.worst_slack
    payload = {
        "feasible": report.feasible,
        "worst_slack": None if worst in (float("inf"), float("-inf")) else worst,
        "clock_violations": list(report.clock_violations),
        "divergent_cycle": report.divergent_cycle,
        "departures": report.departures(),
        "total_borrowed": report.total_borrowed,
    }
    return JobResult(
        key=key,
        kind=job.kind,
        ok=True,
        value=payload["worst_slack"],
        payload=payload,
        metrics=job_metrics(
            wall_seconds=0.0,
            stages=timer.seconds,
            slide_sweeps=report.iterations,
        ),
        label=job.label,
    )


def _execute_baseline(job: BaselineJob, key: str) -> JobResult:
    mlp = job.mlp or MLPOptions(verify=False)
    options = job.options
    stages: dict[str, float] = {}
    lp_solves = 0
    lp_iterations = 0
    if job.algorithm == "mlp":
        result = minimize_cycle_time(job.graph, options, mlp)
        period = result.period
        stages = dict(result.extra.get("stages", {}))
        lp_solves = int(result.extra.get("lp_solves", 1))
        lp_iterations = int(result.extra.get("lp_iterations", 0))
    elif job.algorithm == "nrip":
        period = nrip_minimize(job.graph, options=options, mlp=mlp).period
    elif job.algorithm == "borrowing-1":
        period = borrowing_minimize(job.graph, 1, options).period
    elif job.algorithm == "borrowing":
        period = borrowing_minimize(job.graph, 40, options).period
    elif job.algorithm == "binary-search":
        period = binary_search_minimize(job.graph, options=options)
    else:  # "edge-triggered" -- membership enforced by BaselineJob
        period = edge_triggered_minimize(job.graph, options, mlp).period
    return JobResult(
        key=key,
        kind=job.kind,
        ok=True,
        value=period,
        payload={"algorithm": job.algorithm, "period": period},
        metrics=job_metrics(
            wall_seconds=0.0,
            stages=stages,
            lp_solves=lp_solves,
            lp_iterations=lp_iterations,
        ),
        label=job.label,
    )


def _execute_fault(job: FaultJob, key: str) -> JobResult:
    armed = True
    if job.crash_once_path is not None:
        if os.path.exists(job.crash_once_path):
            armed = False  # a previous attempt already failed once
        else:
            with open(job.crash_once_path, "w", encoding="utf-8") as handle:
                handle.write("armed\n")
    if job.mode == "crash" and armed:
        os._exit(17)  # kill the worker without cleanup -- a hard crash
    if job.mode == "hang" and armed:
        time.sleep(job.seconds)
    if job.mode == "error":
        raise ReproError("fault injection: soft failure")
    if job.mode == "siginfo":
        # Report this process's signal dispositions -- lets tests verify
        # from *inside* a pool worker that SIGINT is ignored (the master
        # owns interrupt handling) while SIGTERM stays terminable.
        import signal as _signal

        return JobResult(
            key=key,
            kind=job.kind,
            ok=True,
            value=float(os.getpid()),
            payload={
                "pid": os.getpid(),
                "sigint_ignored": (
                    _signal.getsignal(_signal.SIGINT) is _signal.SIG_IGN
                ),
                "sigterm_default": (
                    _signal.getsignal(_signal.SIGTERM) is _signal.SIG_DFL
                ),
            },
            metrics=job_metrics(wall_seconds=0.0),
            label=job.label,
        )
    return JobResult(
        key=key,
        kind=job.kind,
        ok=True,
        value=job.value,
        payload={"mode": job.mode},
        metrics=job_metrics(wall_seconds=0.0),
        label=job.label,
    )


_EXECUTORS = {
    "minimize": _execute_minimize,
    "analyze": _execute_analyze,
    "baseline": _execute_baseline,
    "fault": _execute_fault,
}
