"""Per-stage instrumentation for the batch engine.

Every executed job reports a flat metrics dict (wall time, per-stage
seconds, LP solve/pivot counts, slide sweeps); :class:`MetricsAggregator`
folds those into an :class:`EngineReport` -- the structured summary the
CLI prints after a batch run and that benchmarks consume directly.

Stage names used by the executors:

* ``constraint_gen`` -- building the SMO constraint system (LP rows or the
  max-plus system);
* ``lp_solve``       -- time inside the LP backend (both the Tc pass and
  the compact tie-break pass);
* ``slide``          -- the Algorithm-MLP departure slide / fixpoint
  iteration;
* ``analysis``       -- fixed-schedule verification (analyze jobs, and the
  verify pass of minimize jobs when enabled).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.obs import metrics as obs_metrics
from repro.obs import trace

#: Canonical stage ordering for reports.
STAGES = ("constraint_gen", "lp_solve", "slide", "analysis")


class StageTimer:
    """Accumulate named wall-clock stages; used by the job executors.

    Each timed stage also opens a :mod:`repro.obs.trace` span of the same
    name, so stage timings show up in the hierarchical trace for free;
    when tracing is disabled the span is the shared no-op singleton.
    """

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}

    def add(self, stage: str, seconds: float) -> None:
        self.seconds[stage] = self.seconds.get(stage, 0.0) + max(0.0, seconds)

    class _Span:
        def __init__(self, timer: "StageTimer", stage: str) -> None:
            self.timer = timer
            self.stage = stage

        def __enter__(self) -> "StageTimer._Span":
            self._obs = trace.span(self.stage)
            self._obs.__enter__()
            self.start = time.perf_counter()
            return self

        def __exit__(self, *exc: object) -> None:
            elapsed = time.perf_counter() - self.start
            self.timer.add(self.stage, elapsed)
            self._obs.__exit__(None, None, None)
            obs_metrics.observe("engine_stage_seconds", elapsed, stage=self.stage)

    def span(self, stage: str) -> "StageTimer._Span":
        """Context manager timing one stage: ``with timer.span("lp_solve"):``."""
        return self._Span(self, stage)


def job_metrics(
    wall_seconds: float,
    stages: dict[str, float] | None = None,
    lp_solves: int = 0,
    lp_iterations: int = 0,
    slide_sweeps: int = 0,
    warm_start_hits: int = 0,
    warm_start_misses: int = 0,
    pivots_saved: int = 0,
    refactorizations: int = 0,
) -> dict:
    """The flat metrics dict attached to a :class:`~repro.engine.jobspec.JobResult`.

    ``warm_start_hits``/``warm_start_misses`` count basis reuse outcomes on
    the Tc pass; ``pivots_saved`` estimates skipped pivots against the
    chain's cold anchor (``MinimizeJob.cold_pivots_hint``);
    ``refactorizations`` counts basis-inverse rebuilds inside the revised
    simplex backend.
    """
    return {
        "wall_seconds": wall_seconds,
        "stages": dict(stages or {}),
        "lp_solves": lp_solves,
        "lp_iterations": lp_iterations,
        "slide_sweeps": slide_sweeps,
        "warm_start_hits": warm_start_hits,
        "warm_start_misses": warm_start_misses,
        "pivots_saved": pivots_saved,
        "refactorizations": refactorizations,
    }


@dataclass
class EngineReport:
    """Aggregated metrics for one engine run (or an engine's lifetime)."""

    jobs: int = 0
    succeeded: int = 0
    failed: int = 0
    from_cache: int = 0
    #: cached/fanned-out results that carry a failure (a within-batch
    #: duplicate of a job that failed this run; the cache itself never
    #: stores failed results).
    cached_failed: int = 0
    executed: int = 0
    retries: int = 0
    wall_seconds: float = 0.0
    stage_seconds: dict[str, float] = field(default_factory=dict)
    lp_solves: int = 0
    lp_iterations: int = 0
    slide_sweeps: int = 0
    warm_start_hits: int = 0
    warm_start_misses: int = 0
    pivots_saved: int = 0
    refactorizations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    workers: int = 1
    #: pool failover accounting (worker deaths and per-attempt timeouts);
    #: soft_failures are in-job exceptions the worker survived.
    crashes: int = 0
    timeouts: int = 0
    soft_failures: int = 0
    #: persistent result-store accounting (zero unless the cache is a
    #: :class:`repro.serve.store.StoreBackedCache`).
    store_hits: int = 0
    store_writes: int = 0
    store_corrupt_dropped: int = 0
    store_path: str = ""

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def format(self) -> str:
        """A printable multi-line summary (the CLI's metrics block)."""
        cached_part = f"{self.from_cache} from cache"
        if self.cached_failed:
            cached_part += f" ({self.cached_failed} failed)"
        lines = [
            f"jobs: {self.jobs} total, {self.succeeded} ok, "
            f"{self.failed} failed, {cached_part}, "
            f"{self.executed} executed ({self.retries} retries, "
            f"{self.workers} worker{'s' if self.workers != 1 else ''})",
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses "
            f"({100.0 * self.cache_hit_rate:.1f}%)",
            f"lp: {self.lp_solves} solves, {self.lp_iterations} simplex "
            f"pivots; slide: {self.slide_sweeps} sweeps",
        ]
        if self.crashes or self.timeouts or self.soft_failures:
            lines.append(
                f"pool failover: {self.crashes} crashes, "
                f"{self.timeouts} timeouts, "
                f"{self.soft_failures} soft failures"
            )
        if self.store_path:
            lines.append(
                f"store: {self.store_hits} hits, {self.store_writes} writes"
                + (
                    f", {self.store_corrupt_dropped} corrupt rows dropped"
                    if self.store_corrupt_dropped
                    else ""
                )
                + f" ({self.store_path})"
            )
        if self.warm_start_hits or self.warm_start_misses:
            lines.append(
                f"warm starts: {self.warm_start_hits} hits / "
                f"{self.warm_start_misses} misses, "
                f"~{self.pivots_saved} pivots saved, "
                f"{self.refactorizations} refactorizations"
            )
        known = [s for s in STAGES if s in self.stage_seconds]
        extra = sorted(set(self.stage_seconds) - set(known))
        parts = [
            f"{name} {1000.0 * self.stage_seconds[name]:.2f} ms"
            for name in known + extra
        ]
        if parts:
            lines.append("stage time: " + ", ".join(parts))
        lines.append(f"wall time in jobs: {1000.0 * self.wall_seconds:.2f} ms")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()


class MetricsAggregator:
    """Fold per-job metrics dicts into a running :class:`EngineReport`."""

    def __init__(self) -> None:
        self._report = EngineReport()

    def add_result(self, ok: bool, cached: bool, attempts: int, metrics: dict) -> None:
        r = self._report
        r.jobs += 1
        r.succeeded += 1 if ok else 0
        r.failed += 0 if ok else 1
        if cached:
            r.from_cache += 1
            if not ok:
                r.cached_failed += 1
        else:
            r.executed += 1
            r.retries += max(0, attempts - 1)
            r.wall_seconds += float(metrics.get("wall_seconds", 0.0))
            for stage, seconds in (metrics.get("stages") or {}).items():
                r.stage_seconds[stage] = r.stage_seconds.get(stage, 0.0) + seconds
            r.lp_solves += int(metrics.get("lp_solves", 0))
            r.lp_iterations += int(metrics.get("lp_iterations", 0))
            r.slide_sweeps += int(metrics.get("slide_sweeps", 0))
            r.warm_start_hits += int(metrics.get("warm_start_hits", 0))
            r.warm_start_misses += int(metrics.get("warm_start_misses", 0))
            r.pivots_saved += int(metrics.get("pivots_saved", 0))
            r.refactorizations += int(metrics.get("refactorizations", 0))

    def set_cache_stats(self, hits: int, misses: int) -> None:
        self._report.cache_hits = hits
        self._report.cache_misses = misses

    def set_workers(self, workers: int) -> None:
        self._report.workers = workers

    def set_pool_stats(self, stats: "PoolStats") -> None:
        """Copy failover counters off a :class:`~repro.engine.pool.PoolStats`."""
        self._report.crashes = stats.crashes
        self._report.timeouts = stats.timeouts
        self._report.soft_failures = stats.soft_failures

    def set_store_stats(
        self, path: str, hits: int, writes: int, corrupt_dropped: int
    ) -> None:
        """Record persistent-store counters (StoreBackedCache engines only)."""
        self._report.store_path = path
        self._report.store_hits = hits
        self._report.store_writes = writes
        self._report.store_corrupt_dropped = corrupt_dropped

    @property
    def report(self) -> EngineReport:
        return self._report
