"""The public engine API: :class:`Engine`, :func:`run_jobs`, :func:`map_sweep`.

The engine composes the three mechanical pieces -- canonical job hashing
(:mod:`~repro.engine.jobspec`), the result cache (:mod:`~repro.engine.cache`)
and the worker pool (:mod:`~repro.engine.pool`) -- into one execution layer:

1. every submitted job is keyed by its canonical content hash;
2. keys already in the cache are served without executing anything;
3. the remaining unique keys are executed by the pool (serial for
   ``jobs=1``, a process pool otherwise) in deterministic order;
4. per-stage metrics are aggregated into an :class:`EngineReport`.

``map_sweep`` layers an adaptive evaluation strategy on top: because the
optimal cycle time is a *convex piecewise-linear* function of any single
delay (LP theory; the basis of the paper's Fig. 7), a grid point whose
span passes the chord test can be filled by exact interpolation instead of
an LP solve.  Interval endpoints are re-requested each refinement wave and
served from the cache, so a sweep both solves fewer LPs than it has grid
points and records cache hits for the duplicated breakpoint evaluations.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.mlp import MLPOptions
from repro.core.parametric import BasisChain, SweepPoint, SweepResult, _fit_segments
from repro.engine.cache import ResultCache
from repro.engine.jobspec import Job, JobResult, MinimizeJob, SweepJob, job_key
from repro.engine.metrics import EngineReport, MetricsAggregator
from repro.engine.pool import make_pool
from repro.errors import ReproError
from repro.lp.backends import supports_warm_start
from repro.lp.basis import Basis
from repro.obs import metrics, trace


class Engine:
    """A cached, parallel batch executor for timing jobs.

    ``jobs`` is the worker count (1 = in-process serial execution);
    ``timeout`` is the per-job wall-clock limit in seconds (process pool
    only); ``retries`` is the number of extra attempts after a worker
    crash or timeout.  ``cache_path`` enables the on-disk JSON store --
    call :meth:`save_cache` (or use the engine as a context manager) to
    persist it.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        cache_path: str | None = None,
        max_cache_entries: int = 4096,
        timeout: float | None = None,
        retries: int = 1,
    ) -> None:
        self.jobs = max(1, int(jobs))
        # `cache or ...` would discard an *empty* cache (it has __len__).
        if cache is None:
            cache = ResultCache(max_entries=max_cache_entries, path=cache_path)
        self.cache = cache
        self.pool = make_pool(self.jobs, timeout=timeout, retries=retries)
        self._aggregator = MetricsAggregator()

    # ------------------------------------------------------------------
    def run_jobs(self, jobs: Sequence[Job]) -> list[JobResult]:
        """Execute a batch of jobs; results come back in submission order.

        Duplicate jobs inside one batch are executed once and fanned out;
        jobs whose canonical key is already cached are served from the
        cache.  :class:`SweepJob` entries are expanded via
        :meth:`map_sweep` rather than executed monolithically.
        """
        results: list[JobResult | None] = [None] * len(jobs)
        keys: list[str | None] = [None] * len(jobs)
        to_run: list[tuple[Job, str]] = []
        first_index: dict[str, int] = {}
        duplicates: dict[str, list[int]] = {}

        with trace.span(
            "engine.run_jobs", jobs=len(jobs), workers=self.jobs
        ) as batch_span:
            for i, job in enumerate(jobs):
                if isinstance(job, SweepJob):
                    results[i] = self._run_sweep_job(job)
                    continue
                key = job_key(job)
                keys[i] = key
                if key in first_index or key in duplicates:
                    duplicates.setdefault(key, []).append(i)
                    continue
                hit = self.cache.get(key)
                if hit is not None:
                    hit.label = job.label or hit.label
                    results[i] = hit
                else:
                    first_index[key] = i
                    to_run.append((job, key))

            executed = self.pool.run(to_run)
            for (job, key), result in zip(to_run, executed):
                # Graft span trees recorded by pool workers under the live
                # batch span (serial execution nested them directly), and
                # fold worker metric snapshots into the live registry.
                if result.spans:
                    trace.attach(result.spans)
                    result.spans = []
                if result.obs_metrics:
                    metrics.merge(result.obs_metrics)
                    result.obs_metrics = []
                self.cache.put(key, result)
                results[first_index[key]] = result
            batch_span.set("executed", len(to_run))
            batch_span.set("cached", len(jobs) - len(to_run))

        # Fan executed/cached results out to within-batch duplicates.
        for key, indices in duplicates.items():
            source = (
                results[first_index[key]]
                if key in first_index
                else self.cache.get(key)
            )
            if source is None:  # pragma: no cover - first occurrence always set
                raise ReproError(f"internal error: unresolved batch key {key}")
            for idx in indices:
                copy = JobResult.from_dict(source.to_dict())
                copy.cached = True
                copy.label = jobs[idx].label or copy.label
                results[idx] = copy

        final = [r for r in results if r is not None]
        if len(final) != len(jobs):  # pragma: no cover - defensive
            raise ReproError("internal error: lost results in run_jobs")
        for result in final:
            self._aggregator.add_result(
                ok=result.ok,
                cached=result.cached,
                attempts=result.attempts,
                metrics=result.metrics,
            )
        return final

    # ------------------------------------------------------------------
    def map_sweep(self, job: SweepJob, value_tol: float = 1e-7) -> SweepResult:
        """Evaluate a parametric sweep adaptively through the cache/pool.

        Exploits convexity of Tc(delay): an interval whose midpoint lies on
        the endpoint chord (within ``value_tol``, scaled by the local
        magnitude) is exactly linear, so its interior grid points are
        filled by interpolation without solving.  Refinement proceeds in
        waves; each wave's jobs run concurrently through the pool, and
        endpoint re-requests across waves hit the cache.  The evaluation
        order -- and therefore the result -- is independent of the worker
        count.
        """
        sweep_span = trace.span(
            "engine.map_sweep",
            src=job.src,
            dst=job.dst,
            grid_points=len(job.grid),
        )
        with sweep_span:
            return self._map_sweep(job, value_tol, sweep_span)

    def _map_sweep(
        self, job: SweepJob, value_tol: float, sweep_span: object
    ) -> SweepResult:
        grid = [float(x) for x in job.grid]
        if len(grid) < 2:
            raise ReproError("sweep needs at least two grid points")
        for a, b in zip(grid, grid[1:]):
            if b <= a:
                raise ReproError("sweep grid must be strictly increasing")
        mlp = job.mlp
        if mlp is None:
            # The sweep consumes only the optimal period, so skip both the
            # verify pass and the compact tie-break LP: one solve per point,
            # on the warm-startable revised backend.
            mlp = MLPOptions(verify=False, compact=False, backend="revised")

        n = len(grid)
        values: dict[int, float] = {}
        solved: set[int] = set()
        intervals = [(0, n - 1)] if n > 2 else []
        spans: list[tuple[int, int]] = []
        # Warm-start chain state: adjacent grid points share almost all of
        # their optimal basis, so each job is seeded with the basis of the
        # geometrically nearest solved point.  The hints ride outside the
        # cache key (see MinimizeJob), so chaining never fragments the
        # cache or changes any value.
        chaining = bool(mlp.warm_start) and supports_warm_start(mlp.backend)
        chain = BasisChain()

        def _make_job(i: int) -> MinimizeJob:
            return MinimizeJob(
                graph=job.graph,
                options=job.options,
                mlp=mlp,
                arc_override=(job.src, job.dst, grid[i]),
                label=f"{job.src}->{job.dst}={grid[i]:g}",
                warm_start=chain.get(grid[i]) if chaining else None,
                cold_pivots_hint=chain.cold_hint if chaining else 0,
            )

        def _absorb(i: int, result: JobResult) -> None:
            if not result.ok:
                raise ReproError(
                    f"sweep evaluation failed at {grid[i]:g}: {result.error}"
                )
            values[i] = float(result.value)
            if not result.cached:
                solved.add(i)
            if chaining:
                raw = result.payload.get("basis")
                if raw:
                    chain.put(grid[i], Basis.from_dict(raw))
                if not chain.cold_hint and not result.cached:
                    chain.cold_hint = int(result.metrics.get("lp_iterations", 0))

        def evaluate_wave(indices: list[int]) -> None:
            if chaining and self.jobs == 1:
                # Serial execution: evaluate points one at a time so every
                # solve can be seeded from its nearest finished neighbor.
                for i in indices:
                    _absorb(i, self.run_jobs([_make_job(i)])[0])
                return
            # Parallel execution: the wave runs concurrently, so every job
            # is seeded from the points solved in *previous* waves (still
            # near-optimal -- wave points neighbor known breakpoints).
            batch = [_make_job(i) for i in indices]
            for i, result in zip(indices, self.run_jobs(batch)):
                _absorb(i, result)

        evaluate_wave([0, n - 1])
        while intervals:
            requests: list[int] = []
            seen: set[int] = set()
            for a, b in intervals:
                for i in (a, (a + b) // 2, b):
                    if i not in seen:
                        seen.add(i)
                        requests.append(i)
            evaluate_wave(requests)
            next_intervals: list[tuple[int, int]] = []
            for a, b in intervals:
                mid = (a + b) // 2
                fa, fm, fb = values[a], values[mid], values[b]
                chord = fa + (fb - fa) * (grid[mid] - grid[a]) / (
                    grid[b] - grid[a]
                )
                tol = value_tol * max(1.0, abs(fa), abs(fb))
                if abs(fm - chord) <= tol:
                    spans.append((a, b))  # exactly linear by convexity
                else:
                    for lo, hi in ((a, mid), (mid, b)):
                        if hi - lo >= 2:
                            next_intervals.append((lo, hi))
            intervals = next_intervals

        # Fill interior points of proven-linear spans by interpolation.
        for a, b in spans:
            fa, fb = values[a], values[b]
            for i in range(a + 1, b):
                if i not in values:
                    values[i] = fa + (fb - fa) * (grid[i] - grid[a]) / (
                        grid[b] - grid[a]
                    )

        missing = [i for i in range(n) if i not in values]
        if missing:  # pragma: no cover - refinement covers every index
            evaluate_wave(missing)

        points = [SweepPoint(grid[i], values[i]) for i in range(n)]
        sweep_span.set("solved", len(solved))
        sweep_span.set("interpolated", n - len(solved))
        return SweepResult(
            points=points, segments=_fit_segments(points, job.slope_tol)
        )

    def _run_sweep_job(self, job: SweepJob) -> JobResult:
        key = job_key(job)
        hit = self.cache.get(key)
        if hit is not None:
            return hit
        try:
            sweep = self.map_sweep(job)
        except ReproError as err:
            return JobResult(
                key=key,
                kind=job.kind,
                ok=False,
                error=str(err),
                label=job.label,
            )
        payload = {
            "points": [[p.parameter, p.period] for p in sweep.points],
            "segments": [
                {
                    "start": s.start,
                    "end": s.end,
                    "slope": s.slope,
                    "intercept": s.intercept,
                }
                for s in sweep.segments
            ],
            "breakpoints": sweep.breakpoints,
        }
        result = JobResult(
            key=key,
            kind=job.kind,
            ok=True,
            value=float(len(sweep.segments)),
            payload=payload,
            label=job.label,
        )
        self.cache.put(key, result)
        return result

    # ------------------------------------------------------------------
    @property
    def report(self) -> EngineReport:
        """Aggregated metrics: jobs, cache accounting, per-stage times."""
        stats = self.cache.stats
        self._aggregator.set_cache_stats(stats.hits, stats.misses)
        self._aggregator.set_workers(getattr(self.pool, "workers", 1))
        pool_stats = getattr(self.pool, "stats", None)
        if pool_stats is not None:
            self._aggregator.set_pool_stats(pool_stats)
        store = getattr(self.cache, "store", None)
        if store is not None:
            store_stats = store.stats
            self._aggregator.set_store_stats(
                path=str(store.path),
                hits=store_stats.hits,
                writes=store_stats.writes,
                corrupt_dropped=store_stats.corrupt_dropped,
            )
        return self._aggregator.report

    def save_cache(self) -> str | None:
        """Persist the cache when a disk path is configured."""
        if self.cache.path:
            return self.cache.save()
        return None

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.save_cache()
        self.pool.close()


# ----------------------------------------------------------------------
# Module-level conveniences
# ----------------------------------------------------------------------
def run_jobs(
    jobs: Sequence[Job],
    parallel: int = 1,
    cache: ResultCache | None = None,
    timeout: float | None = None,
    retries: int = 1,
) -> list[JobResult]:
    """One-shot batch execution with a throwaway engine."""
    engine = Engine(
        jobs=parallel, cache=cache, timeout=timeout, retries=retries
    )
    return engine.run_jobs(jobs)


def map_sweep(
    job: SweepJob,
    parallel: int = 1,
    cache: ResultCache | None = None,
    value_tol: float = 1e-7,
) -> SweepResult:
    """One-shot adaptive sweep with a throwaway engine."""
    engine = Engine(jobs=parallel, cache=cache)
    return engine.map_sweep(job, value_tol=value_tol)
