"""Result caching for the batch engine: in-memory LRU plus disk store.

The cache is keyed by the canonical content hash of a job (see
:func:`repro.engine.jobspec.job_key`), so any two jobs describing the same
(circuit, clock, options) instance share one entry regardless of how their
inputs were constructed.  Sweeps and benchmark ladders re-solve the same
instance many times -- at segment breakpoints, at repeated grid values, and
across refinement passes -- and the cache turns every repeat into a hit.

``path`` enables a JSON disk store: results load lazily at construction and
:meth:`save` persists the current in-memory contents atomically (write to a
temp file, then rename).  Only the JSON-safe :class:`JobResult` payload is
stored, never live model objects.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass

from repro.engine.jobspec import JobResult
from repro.obs import metrics, trace

#: Disk-format version; mismatching stores are ignored rather than misread.
STORE_VERSION = 1


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    entries: int = 0
    evictions: int = 0
    loaded_from_disk: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def __str__(self) -> str:
        return (
            f"{self.hits} hits / {self.misses} misses "
            f"({100.0 * self.hit_rate:.1f}% of {self.lookups} lookups), "
            f"{self.entries} entries, {self.evictions} evicted"
        )


class ResultCache:
    """An LRU mapping from canonical job keys to :class:`JobResult`.

    ``max_entries`` bounds the in-memory map (least-recently-used entries
    are evicted first); ``path`` optionally names a JSON file used as a
    persistent store.  Cached results are returned as *copies* flagged
    ``cached=True`` so callers can mutate bookkeeping fields freely.
    """

    def __init__(self, max_entries: int = 4096, path: str | None = None):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.path = path
        self._entries: OrderedDict[str, JobResult] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._loaded = 0
        if path and os.path.exists(path):
            self._load(path)

    # ------------------------------------------------------------------
    # Core mapping operations
    # ------------------------------------------------------------------
    def get(self, key: str) -> JobResult | None:
        """Look up a key, counting the hit or miss."""
        entry = self._entries.get(key)
        if trace.is_enabled():
            trace.add_event("cache.lookup", key=key[:12], hit=entry is not None)
        metrics.inc(
            "engine_cache_lookups_total",
            result="hit" if entry is not None else "miss",
        )
        if entry is None:
            self._misses += 1
            return None
        self._hits += 1
        self._entries.move_to_end(key)
        hit = JobResult.from_dict(entry.to_dict())
        hit.cached = True
        return hit

    def put(self, key: str, result: JobResult) -> None:
        """Insert (or refresh) an entry, evicting LRU entries beyond the cap.

        Failed results are not cached: a crash or timeout is a property of
        the run, not of the problem instance.
        """
        if not result.ok:
            return
        if trace.is_enabled():
            trace.add_event("cache.store", key=key[:12])
        self._entries[key] = JobResult.from_dict(result.to_dict())
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._evictions += 1

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    @property
    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            entries=len(self._entries),
            evictions=self._evictions,
            loaded_from_disk=self._loaded,
        )

    def reset_stats(self) -> None:
        self._hits = self._misses = self._evictions = 0

    # ------------------------------------------------------------------
    # Disk store
    # ------------------------------------------------------------------
    def _load(self, path: str) -> None:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return  # a corrupt store is treated as empty, never fatal
        if not isinstance(data, dict) or data.get("version") != STORE_VERSION:
            return
        for key, entry in data.get("entries", {}).items():
            try:
                self._entries[key] = JobResult.from_dict(entry)
            except (KeyError, TypeError):
                continue
        self._loaded = len(self._entries)

    def save(self, path: str | None = None) -> str:
        """Persist the current entries as JSON (atomic replace); returns the path."""
        target = path or self.path
        if not target:
            raise ValueError("no disk path configured for this cache")
        payload = {
            "version": STORE_VERSION,
            "entries": {k: r.to_dict() for k, r in self._entries.items()},
        }
        directory = os.path.dirname(os.path.abspath(target))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp, target)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return target
