"""Labeled metrics for the whole stack: counters, gauges, histograms.

The metrics registry is the quantitative sibling of the span tracer
(:mod:`repro.obs.trace`): where a trace answers "what happened during
*this* run", the registry answers "how is the process doing over time" --
request rates, error ratios, latency distributions, cache hit ratios,
queue depth.  It follows the same engineering contract:

* **off by default, near-free when off** -- every module-level hook
  (:func:`inc`, :func:`observe`, :func:`set_gauge`) is one ``enabled``
  check away from returning, and :meth:`MetricsRegistry.counter` and
  friends return a shared :class:`NullMetric` singleton while disabled,
  so instrumentation lives permanently in the hot paths.  The budget,
  asserted by ``benchmarks/bench_obs_overhead.py``, is <2% disabled and
  <5% fully enabled on the Fig. 7 sweep workload;
* **process-aware** -- pool workers record into their own registry
  (reset at worker start, see :mod:`repro.engine.pool`), drain it onto
  each :class:`~repro.engine.jobspec.JobResult` as a plain-data snapshot,
  and the parent engine merges the snapshot into its live registry --
  the exact shape of PR 3's span reassembly.  A crashed attempt never
  sends a result, so its partial snapshot dies with the worker and a
  retried job merges exactly once;
* **thread-aware** -- a thread may override the process-global registry
  via :func:`set_thread_registry` / :func:`use_registry`, mirroring
  ``trace.use_tracer``.

Metric names are bare (``lp_solve_seconds``); the Prometheus exposition
(:meth:`MetricsRegistry.to_prometheus`) prefixes ``repro_`` and renders
histograms as cumulative ``_bucket``/``_sum``/``_count`` series.
Histograms are **log-bucketed**: :data:`LATENCY_BUCKETS` spans 10us to
10s at four buckets per decade, :data:`COUNT_BUCKETS` covers iteration
counts in powers of two.  Quantiles are derived from the buckets by
linear interpolation (:meth:`Histogram.quantile`), the same estimate
Prometheus's ``histogram_quantile`` computes server-side.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterator, Sequence

#: Snapshot schema version (bumped when the plain-data shape changes).
SNAPSHOT_VERSION = 1

#: Upper bounds (seconds) for latency histograms: 1e-5 .. 10 s, four
#: buckets per decade (ratio ~1.78x), plus the implicit +Inf bucket.
LATENCY_BUCKETS: tuple[float, ...] = tuple(
    round(10.0 ** (-5 + i / 4.0), 10) for i in range(0, 25)
)

#: Upper bounds for iteration-count histograms (pivots, sweeps, jumps):
#: powers of two up to 65536, plus the implicit +Inf bucket.
COUNT_BUCKETS: tuple[float, ...] = tuple(float(2**i) for i in range(0, 17))


class NullMetric:
    """Shared no-op metric returned by every registry call while disabled."""

    __slots__ = ()

    def inc(self, value: float = 1.0) -> None:
        pass

    def dec(self, value: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def __bool__(self) -> bool:
        return False


_NULL_METRIC = NullMetric()


class Counter:
    """A monotonically increasing value (requests, cache hits, errors)."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, value: float = 1.0) -> None:
        self.value += value

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge:
    """A point-in-time value that can go up and down (queue depth)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, value: float = 1.0) -> None:
        self.value += value

    def dec(self, value: float = 1.0) -> None:
        self.value -= value

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Histogram:
    """A log-bucketed distribution of observations (latencies, pivots).

    ``bounds`` are the *upper* edges of the finite buckets in increasing
    order; one extra overflow bucket catches everything beyond the last
    bound (rendered as ``le="+Inf"``).  Observation is one bisect plus
    three scalar updates, cheap enough for per-solve instrumentation.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...],
        bounds: Sequence[float] = LATENCY_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds: tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile by linear interpolation within buckets.

        The same estimate ``histogram_quantile`` computes from the
        exposition: find the bucket holding rank ``q * count`` and assume
        observations are uniform inside it.  The overflow bucket has no
        upper edge, so its quantiles clamp to the last finite bound --
        one reason to size :data:`LATENCY_BUCKETS` past the workload.
        """
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.bounds[i - 1] if i > 0 else 0.0
                if i >= len(self.bounds):  # overflow bucket: clamp
                    return self.bounds[-1] if self.bounds else lower
                upper = self.bounds[i]
                fraction = (rank - cumulative) / bucket_count
                return lower + (upper - lower) * min(1.0, max(0.0, fraction))
            cumulative += bucket_count
        return self.bounds[-1] if self.bounds else 0.0

    def bucket_width_at(self, q: float) -> float:
        """Width of the bucket the q-quantile falls in (error bound)."""
        if self.count == 0 or not self.bounds:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if cumulative + bucket_count >= rank and bucket_count:
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[min(i, len(self.bounds) - 1)]
                return max(upper - lower, 0.0)
            cumulative += bucket_count
        return self.bounds[-1] - (self.bounds[-2] if len(self.bounds) > 1 else 0.0)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


Metric = Counter | Gauge | Histogram


def _label_key(labels: dict[str, object]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """A per-process family of named, labeled metrics.

    Metric *creation* is serialized by a lock (the serve layer records
    from executor threads); *updates* are plain attribute arithmetic --
    under CPython's GIL a lost increment needs a mid-statement preemption
    race, an acceptable trade for telemetry that keeps the enabled hot
    path lock-free.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], Metric] = {}
        self._lock = threading.Lock()

    # -- instrument lookup ----------------------------------------------
    def _get_or_create(self, cls, name: str, labels: dict, **kwargs) -> Metric:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = cls(name, key[1], **kwargs)
                    self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: object) -> Counter | NullMetric:
        if not self.enabled:
            return _NULL_METRIC
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge | NullMetric:
        if not self.enabled:
            return _NULL_METRIC
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        **labels: object,
    ) -> Histogram | NullMetric:
        if not self.enabled:
            return _NULL_METRIC
        return self._get_or_create(Histogram, name, labels, bounds=buckets)

    def collect(self) -> Iterator[Metric]:
        """Every live metric, ordered by (name, labels) for stable output."""
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def find(self, name: str, **labels: object) -> Metric | None:
        """Look up one metric without creating it (tests, introspection)."""
        return self._metrics.get((name, _label_key(labels)))

    # -- cross-process transport ----------------------------------------
    def snapshot(self) -> list[dict]:
        """The registry as plain data (JSON/pickle-safe), for transport."""
        return [m.to_dict() for m in self.collect()]

    def drain(self) -> list[dict]:
        """Snapshot, then zero every value (per-job deltas in workers).

        Instruments survive -- only their recorded values reset -- so a
        long-lived worker keeps stable metric identities across jobs.
        """
        snap = self.snapshot()
        with self._lock:
            for metric in self._metrics.values():
                if isinstance(metric, Histogram):
                    metric.counts = [0] * len(metric.counts)
                    metric.sum = 0.0
                    metric.count = 0
                else:
                    metric.value = 0.0
        return snap

    def merge(self, snapshot: Sequence[dict]) -> None:
        """Fold a plain-data snapshot (from a worker) into this registry.

        Counters and histograms add; gauges take the incoming value
        (last-writer-wins -- gauges describe *a* process, not a sum).
        A histogram whose bucket bounds differ from the local instrument
        (version skew) degrades gracefully: its buckets are re-observed
        at their upper bounds, preserving counts and approximate shape.
        """
        for entry in snapshot:
            name = entry.get("name")
            kind = entry.get("type")
            labels = dict(entry.get("labels") or {})
            if not name or not kind:
                continue
            if kind == "counter":
                self._get_or_create(Counter, name, labels).inc(
                    float(entry.get("value", 0.0))
                )
            elif kind == "gauge":
                self._get_or_create(Gauge, name, labels).set(
                    float(entry.get("value", 0.0))
                )
            elif kind == "histogram":
                bounds = [float(b) for b in entry.get("bounds") or []]
                counts = [int(c) for c in entry.get("counts") or []]
                local = self._get_or_create(
                    Histogram, name, labels, bounds=bounds or LATENCY_BUCKETS
                )
                assert isinstance(local, Histogram)
                if list(local.bounds) == bounds and len(local.counts) == len(
                    counts
                ):
                    for i, c in enumerate(counts):
                        local.counts[i] += c
                    local.sum += float(entry.get("sum", 0.0))
                    local.count += int(entry.get("count", 0))
                else:  # bound skew: re-observe at upper edges
                    edges = bounds + [bounds[-1] if bounds else 0.0]
                    for edge, c in zip(edges, counts):
                        for _ in range(c):
                            local.observe(edge)

    def reset(self, enabled: bool | None = None) -> None:
        """Drop every metric; optionally flip the enabled bit."""
        if enabled is not None:
            self.enabled = enabled
        with self._lock:
            self._metrics = {}

    # -- exposition ------------------------------------------------------
    def to_prometheus(self, prefix: str = "repro_") -> str:
        """Prometheus exposition text for every metric in the registry.

        Histograms render as cumulative ``_bucket{le=...}`` series plus
        ``_sum``/``_count``, exactly the exposition ``histogram_quantile``
        expects; counters get the conventional ``_total``-as-written name
        (instrument names already carry their unit/``_total`` suffixes).
        """
        lines: list[str] = []
        typed: set[str] = set()
        for metric in self.collect():
            full = prefix + metric.name
            if full not in typed:
                typed.add(full)
                lines.append(f"# TYPE {full} {metric.kind}")
            if isinstance(metric, Histogram):
                cumulative = 0
                for bound, count in zip(metric.bounds, metric.counts):
                    cumulative += count
                    lines.append(
                        f"{full}_bucket"
                        f"{_render_labels(metric.labels, ('le', _format_bound(bound)))}"
                        f" {cumulative}"
                    )
                cumulative += metric.counts[-1]
                lines.append(
                    f"{full}_bucket"
                    f"{_render_labels(metric.labels, ('le', '+Inf'))}"
                    f" {cumulative}"
                )
                lines.append(
                    f"{full}_sum{_render_labels(metric.labels)}"
                    f" {metric.sum:.9g}"
                )
                lines.append(
                    f"{full}_count{_render_labels(metric.labels)}"
                    f" {metric.count}"
                )
            else:
                lines.append(
                    f"{full}{_render_labels(metric.labels)} {metric.value:g}"
                )
        return "\n".join(lines) + ("\n" if lines else "")


def _format_bound(bound: float) -> str:
    text = f"{bound:.10g}"
    return text


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(
    labels: tuple[tuple[str, str], ...], *extra: tuple[str, str]
) -> str:
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + inner + "}"


# ----------------------------------------------------------------------
# Exposition parsing (repro top, tests)
# ----------------------------------------------------------------------
def parse_prometheus_text(text: str) -> list[tuple[str, dict[str, str], float]]:
    """Parse exposition text into ``(name, labels, value)`` samples.

    Tolerant of foreign series: comment lines and unparsable values are
    skipped.  Label values containing escaped quotes round-trip.
    """
    samples: list[tuple[str, dict[str, str], float]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        body, _, raw_value = line.rpartition(" ")
        if not body:
            continue
        try:
            value = float(raw_value)
        except ValueError:
            continue
        name, labels = _split_series(body)
        samples.append((name, labels, value))
    return samples


def _split_series(body: str) -> tuple[str, dict[str, str]]:
    brace = body.find("{")
    if brace < 0:
        return body, {}
    name = body[:brace]
    labels: dict[str, str] = {}
    inner = body[brace + 1 : body.rfind("}")]
    i = 0
    while i < len(inner):
        eq = inner.find("=", i)
        if eq < 0:
            break
        key = inner[i:eq].strip().lstrip(",").strip()
        j = eq + 2  # skip ="
        out: list[str] = []
        while j < len(inner):
            ch = inner[j]
            if ch == "\\" and j + 1 < len(inner):
                nxt = inner[j + 1]
                out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt))
                j += 2
                continue
            if ch == '"':
                break
            out.append(ch)
            j += 1
        labels[key] = "".join(out)
        i = j + 1
    return name, labels


def quantile_from_buckets(
    buckets: list[tuple[float, float]], q: float
) -> float:
    """``histogram_quantile`` over parsed ``(le, cumulative_count)`` pairs.

    ``buckets`` must include the ``+Inf`` entry (pass ``float("inf")``).
    Used by ``repro top`` to estimate p50/p95/p99 from a scraped
    ``_bucket`` series without the raw observations.
    """
    buckets = sorted(buckets)
    if not buckets:
        return 0.0
    total = buckets[-1][1]
    if total <= 0:
        return 0.0
    rank = q * total
    previous_edge = 0.0
    previous_cum = 0.0
    for edge, cumulative in buckets:
        if cumulative >= rank:
            in_bucket = cumulative - previous_cum
            if edge == float("inf"):
                return previous_edge
            if in_bucket <= 0:
                return edge
            fraction = (rank - previous_cum) / in_bucket
            return previous_edge + (edge - previous_edge) * min(
                1.0, max(0.0, fraction)
            )
        previous_edge, previous_cum = edge, cumulative
    return previous_edge


# ----------------------------------------------------------------------
# Module-level registry (mirrors repro.obs.trace's tracer plumbing)
# ----------------------------------------------------------------------
#: The process-global registry every instrumentation site records into
#: (unless a thread has installed a private override).
_REGISTRY = MetricsRegistry()

_LOCAL = threading.local()


def get_registry() -> MetricsRegistry:
    """The active registry: this thread's override if set, else the global."""
    override = getattr(_LOCAL, "registry", None)
    return override if override is not None else _REGISTRY


def set_thread_registry(registry: MetricsRegistry | None) -> None:
    """Install (or with ``None`` remove) a registry override for this thread."""
    if registry is None:
        if hasattr(_LOCAL, "registry"):
            del _LOCAL.registry
    else:
        _LOCAL.registry = registry


class use_registry:
    """Context manager: record this thread's metrics into ``registry``."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._previous: MetricsRegistry | None = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = getattr(_LOCAL, "registry", None)
        _LOCAL.registry = self.registry
        return self.registry

    def __exit__(self, *exc) -> bool:
        set_thread_registry(self._previous)
        return False


def is_enabled() -> bool:
    return get_registry().enabled


def enable() -> MetricsRegistry:
    """Turn metrics on (keeping recorded values) and return the registry.

    Unlike ``trace.enable`` this does *not* clear state: metrics are
    cumulative process counters, and a service re-enabling them must not
    zero another instance's series.  Use :func:`reset` for a clean slate.
    """
    _REGISTRY.enabled = True
    return _REGISTRY


def disable() -> None:
    _REGISTRY.enabled = False


def reset(enabled: bool = False) -> None:
    """Reset the global registry (worker startup, test isolation)."""
    _REGISTRY.reset(enabled=enabled)


def counter(name: str, **labels: object) -> Counter | NullMetric:
    return get_registry().counter(name, **labels)


def gauge(name: str, **labels: object) -> Gauge | NullMetric:
    return get_registry().gauge(name, **labels)


def histogram(
    name: str, buckets: Sequence[float] = LATENCY_BUCKETS, **labels: object
) -> Histogram | NullMetric:
    return get_registry().histogram(name, buckets=buckets, **labels)


def inc(name: str, value: float = 1.0, **labels: object) -> None:
    """Bump a counter on the active registry (no-op when disabled)."""
    registry = get_registry()
    if registry.enabled:
        registry.counter(name, **labels).inc(value)


def observe(
    name: str,
    value: float,
    buckets: Sequence[float] = LATENCY_BUCKETS,
    **labels: object,
) -> None:
    """Record a histogram observation (no-op when disabled)."""
    registry = get_registry()
    if registry.enabled:
        registry.histogram(name, buckets=buckets, **labels).observe(value)


def set_gauge(name: str, value: float, **labels: object) -> None:
    """Set a gauge on the active registry (no-op when disabled)."""
    registry = get_registry()
    if registry.enabled:
        registry.gauge(name, **labels).set(value)


def snapshot() -> list[dict]:
    return get_registry().snapshot()


def drain() -> list[dict]:
    return get_registry().drain()


def merge(entries: Sequence[dict]) -> None:
    """Merge a worker snapshot into the active registry (no-op when disabled)."""
    registry = get_registry()
    if registry.enabled and entries:
        registry.merge(entries)
