"""repro.obs -- hierarchical tracing, structured run logs, and exporters.

Three cooperating layers (see ``docs/OBSERVABILITY.md`` for the tour):

* :mod:`repro.obs.trace`  -- nested spans with attributes, counters and
  events; process-aware (pool workers serialize their span trees back to
  the parent engine, which reassembles them under the batch root);
* :mod:`repro.obs.events` -- a per-run JSONL event log with levels and a
  stdlib-``logging`` bridge;
* :mod:`repro.obs.metrics` -- labeled counters, gauges and log-bucketed
  histograms with cross-process snapshot/merge and native Prometheus
  histogram exposition (``_bucket``/``_sum``/``_count``);
* :mod:`repro.obs.export` -- Chrome-trace/Perfetto JSON and a
  Prometheus-style flat text dump, plus the ``repro trace summarize``
  renderer.

Tracing and metrics are off by default and cost <2% when disabled
(asserted by ``benchmarks/bench_obs_overhead.py``), so the
instrumentation lives permanently in the hot paths.
"""

from repro.obs.events import (
    LEVELS,
    EventLog,
    EventLogHandler,
    emit,
    get_log,
    install_logging_bridge,
    remove_logging_bridge,
    set_log,
)
from repro.obs.export import (
    TRACE_VERSION,
    chrome_trace,
    load_trace,
    prometheus_text,
    summarize,
    walk,
    walk_with_ancestors,
    write_chrome_trace,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetric,
    parse_prometheus_text,
    quantile_from_buckets,
    use_registry,
)
from repro.obs.trace import (
    NullSpan,
    Span,
    Tracer,
    add_event,
    attach,
    current_span,
    disable,
    enable,
    get_tracer,
    inc,
    is_enabled,
    new_run_id,
    reset,
    set_thread_tracer,
    span,
    use_tracer,
)

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "EventLog",
    "EventLogHandler",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "LEVELS",
    "MetricsRegistry",
    "NullMetric",
    "NullSpan",
    "Span",
    "TRACE_VERSION",
    "Tracer",
    "add_event",
    "attach",
    "chrome_trace",
    "current_span",
    "disable",
    "emit",
    "enable",
    "get_log",
    "get_tracer",
    "inc",
    "install_logging_bridge",
    "is_enabled",
    "load_trace",
    "new_run_id",
    "parse_prometheus_text",
    "prometheus_text",
    "quantile_from_buckets",
    "remove_logging_bridge",
    "reset",
    "set_log",
    "set_thread_tracer",
    "span",
    "use_registry",
    "use_tracer",
    "summarize",
    "walk",
    "walk_with_ancestors",
    "write_chrome_trace",
]
