"""Structured JSONL run logs (repro.obs).

Every line of an :class:`EventLog` is one JSON object::

    {"ts": 1722860000.123, "run": "1a2b3c4d5e6f", "level": "info",
     "event": "run.start", ...fields}

``ts`` is epoch seconds, ``run`` ties all lines of one process run
together (it defaults to the tracer's run id when tracing is active), and
``level`` is one of ``debug`` / ``info`` / ``warning`` / ``error``.  Lines
below the log's threshold level are dropped at the emit site.

A stdlib-``logging`` bridge (:func:`install_logging_bridge`) forwards any
``logging`` records under a chosen logger name into the same file, so
third-party or legacy ``logging`` calls land in the structured stream
instead of interleaving with CLI output on stdout.

The module-global log (:func:`set_log` / :func:`get_log`) lets deep code
emit events without threading a handle everywhere; :func:`emit` is a
no-op until a log is installed.
"""

from __future__ import annotations

import json
import logging
import time

from repro.obs import trace as _trace

#: Level names in increasing severity; unknown names are treated as info.
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def _level_no(name: str) -> int:
    return LEVELS.get(name, LEVELS["info"])


class EventLog:
    """An append-only JSONL event stream with level filtering."""

    def __init__(
        self,
        path: str,
        run_id: str | None = None,
        level: str = "debug",
    ) -> None:
        self.path = path
        self.run_id = run_id or _trace.get_tracer().run_id or _trace.new_run_id()
        self.level = level
        self._threshold = _level_no(level)
        self._handle = open(path, "a", encoding="utf-8")
        self.emitted = 0
        self.dropped = 0

    def emit(self, event: str, level: str = "info", **fields: object) -> bool:
        """Write one event line; returns False when filtered out."""
        if _level_no(level) < self._threshold:
            self.dropped += 1
            return False
        record = {"ts": time.time(), "run": self.run_id, "level": level,
                  "event": event}
        record.update(fields)
        self._handle.write(json.dumps(record, default=str) + "\n")
        self._handle.flush()
        self.emitted += 1
        return True

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class EventLogHandler(logging.Handler):
    """Bridge stdlib ``logging`` records into an :class:`EventLog`."""

    def __init__(self, log: EventLog) -> None:
        super().__init__()
        self.log = log

    def emit(self, record: logging.LogRecord) -> None:  # noqa: A003
        if record.levelno >= logging.ERROR:
            level = "error"
        elif record.levelno >= logging.WARNING:
            level = "warning"
        elif record.levelno >= logging.INFO:
            level = "info"
        else:
            level = "debug"
        try:
            self.log.emit(
                "log",
                level=level,
                logger=record.name,
                message=record.getMessage(),
            )
        except Exception:  # pragma: no cover - never raise out of logging
            self.handleError(record)


def install_logging_bridge(
    log: EventLog, logger_name: str = "repro", level: int = logging.DEBUG
) -> EventLogHandler:
    """Attach an :class:`EventLogHandler` to ``logger_name``; returns it."""
    handler = EventLogHandler(log)
    logger = logging.getLogger(logger_name)
    logger.addHandler(handler)
    if logger.level == logging.NOTSET or logger.level > level:
        logger.setLevel(level)
    return handler


def remove_logging_bridge(
    handler: EventLogHandler, logger_name: str = "repro"
) -> None:
    logging.getLogger(logger_name).removeHandler(handler)


#: Process-global log used by the module-level :func:`emit` convenience.
_LOG: EventLog | None = None


def set_log(log: EventLog | None) -> None:
    global _LOG
    _LOG = log


def get_log() -> EventLog | None:
    return _LOG


def emit(event: str, level: str = "info", **fields: object) -> bool:
    """Emit to the installed global log; silently no-op when none is set."""
    if _LOG is None:
        return False
    return _LOG.emit(event, level=level, **fields)
