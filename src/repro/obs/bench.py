"""``repro bench`` -- a versioned perf trajectory with regression gating.

``repro bench record`` runs a small suite of quick, deterministic
workloads (single minimize solves on the paper designs, the cycle
backend on a generated multiloop circuit, an adaptive sweep, and an
in-process serve round trip), takes the best-of-N wall time per
workload, and *appends* an entry to a ``BENCH_*.json`` file -- so the
file accumulates a trajectory across commits.  ``repro bench compare``
diffs two entries of that trajectory (by default the last two) and
flags any workload whose time grew beyond a noise threshold (default
20%), which CI runs warn-only as the perf-regression gate.

Each workload also returns a scalar ``check`` value (the optimal period
it computed); compare verifies checks agree before trusting the timing
diff, so an "improvement" that changed the answer is reported as an
error, not a win.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ReproError

#: Schema version of the BENCH_*.json trajectory files.
BENCH_VERSION = 1

#: Default regression threshold: a workload must slow down by more than
#: this fraction before compare flags it (noise floor for quick benches).
DEFAULT_THRESHOLD = 0.20

#: Default trajectory file name (committed CI artifacts use BENCH_ci.json).
DEFAULT_FILE = "BENCH_local.json"


class BenchError(ReproError):
    """Recording or comparing benchmark entries failed."""


# ----------------------------------------------------------------------
# The quick workload suite
# ----------------------------------------------------------------------
def _minimize_example1() -> float:
    from repro.core.mlp import MLPOptions, minimize_cycle_time
    from repro.designs import example1

    return minimize_cycle_time(
        example1(), mlp=MLPOptions(verify=False)
    ).period


def _minimize_example2_revised() -> float:
    from repro.core.mlp import MLPOptions, minimize_cycle_time
    from repro.designs import example2

    return minimize_cycle_time(
        example2(), mlp=MLPOptions(verify=False, backend="revised")
    ).period


def _cycle_multiloop() -> float:
    from repro.circuit.generate import random_multiloop_circuit
    from repro.core.mlp import MLPOptions, minimize_cycle_time

    graph = random_multiloop_circuit(64, n_extra_arcs=32, seed=7)
    return minimize_cycle_time(
        graph, mlp=MLPOptions(verify=False, backend="cycle")
    ).period


def _sweep_example1() -> float:
    from repro.core.mlp import MLPOptions
    from repro.core.parametric import sweep_delay
    from repro.designs import example1

    grid = [float(x) for x in range(0, 145, 30)]
    result = sweep_delay(
        example1(), "L4", "L1", grid=grid, mlp=MLPOptions(verify=False)
    )
    return result.points[0].period


def _sparse_pipeline() -> float:
    from repro.core.mlp import MLPOptions, minimize_cycle_time
    from repro.designs.generators import pipeline

    # 256 latches / ~1.4k LP rows: big enough that the CSR build, the
    # basis factorization, and the eta updates dominate the runtime,
    # small enough to keep the perf-regression job quick.
    graph = pipeline(32, 8)
    return minimize_cycle_time(
        graph, mlp=MLPOptions(verify=False, compact=False, backend="sparse")
    ).period


def _serve_roundtrip() -> float:
    import asyncio

    from repro.serve.service import AnalysisService

    async def _drive() -> float:
        service = AnalysisService(workers=1, trace_jobs=False)
        try:
            value = 0.0
            for design in ("example1", "example2", "example1"):
                record = await service.submit_and_wait(
                    {"kind": "minimize", "design": design}
                )
                if record.result is None or not record.result.ok:
                    raise BenchError(f"serve workload failed: {record.error}")
                value = float(record.result.value or 0.0)
            return value
        finally:
            await service.close()

    return asyncio.run(_drive())


#: name -> zero-arg workload returning its scalar check value.
SUITE: dict[str, Callable[[], float]] = {
    "minimize_example1": _minimize_example1,
    "minimize_example2_revised": _minimize_example2_revised,
    "cycle_multiloop_64": _cycle_multiloop,
    "sweep_example1": _sweep_example1,
    "sparse_pipeline_256": _sparse_pipeline,
    "serve_roundtrip": _serve_roundtrip,
}


def run_suite(
    only: list[str] | None = None, repeats: int = 3
) -> dict[str, dict]:
    """Time each workload (best of ``repeats``) after one warmup run."""
    names = list(SUITE) if not only else only
    unknown = [n for n in names if n not in SUITE]
    if unknown:
        raise BenchError(
            f"unknown benchmark(s) {unknown}; available: {sorted(SUITE)}"
        )
    results: dict[str, dict] = {}
    for name in names:
        workload = SUITE[name]
        check = workload()  # warmup; also the check value
        runs: list[float] = []
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            workload()
            runs.append(time.perf_counter() - start)
        results[name] = {
            "seconds": min(runs),
            "runs": [round(r, 6) for r in runs],
            "check": check,
        }
    return results


# ----------------------------------------------------------------------
# Trajectory file I/O
# ----------------------------------------------------------------------
def load_trajectory(path: str) -> dict:
    """Read (or initialize) a BENCH_*.json trajectory document."""
    if not os.path.exists(path):
        return {"version": BENCH_VERSION, "entries": []}
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        raise BenchError(f"cannot read trajectory {path!r}: {err}") from err
    if not isinstance(data, dict) or data.get("version") != BENCH_VERSION:
        raise BenchError(
            f"{path!r} is not a version-{BENCH_VERSION} bench trajectory"
        )
    if not isinstance(data.get("entries"), list):
        raise BenchError(f"{path!r} has no entries list")
    return data


def _write_trajectory(path: str, data: dict) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def record(
    path: str,
    label: str = "",
    only: list[str] | None = None,
    repeats: int = 3,
) -> dict:
    """Run the suite and append one entry to the trajectory; returns it."""
    data = load_trajectory(path)
    entry = {
        "label": label,
        "timestamp": time.time(),
        "python": platform.python_version(),
        "platform": sys.platform,
        "results": run_suite(only=only, repeats=repeats),
    }
    data["entries"].append(entry)
    _write_trajectory(path, data)
    return entry


# ----------------------------------------------------------------------
# Comparison / regression gating
# ----------------------------------------------------------------------
@dataclass
class BenchDelta:
    """One workload's change between two trajectory entries."""

    name: str
    baseline_seconds: float
    candidate_seconds: float
    check_mismatch: bool = False

    @property
    def ratio(self) -> float:
        if self.baseline_seconds <= 0:
            return 1.0
        return self.candidate_seconds / self.baseline_seconds


@dataclass
class CompareReport:
    """The verdict of ``repro bench compare``."""

    baseline_label: str
    candidate_label: str
    threshold: float
    deltas: list[BenchDelta] = field(default_factory=list)

    @property
    def regressions(self) -> list[BenchDelta]:
        return [
            d
            for d in self.deltas
            if d.check_mismatch or d.ratio > 1.0 + self.threshold
        ]

    @property
    def improvements(self) -> list[BenchDelta]:
        return [
            d
            for d in self.deltas
            if not d.check_mismatch and d.ratio < 1.0 - self.threshold
        ]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def format(self) -> str:
        lines = [
            f"bench compare: {self.baseline_label or 'baseline'} -> "
            f"{self.candidate_label or 'candidate'} "
            f"(threshold {100.0 * self.threshold:.0f}%)"
        ]
        for d in sorted(self.deltas, key=lambda d: -d.ratio):
            change = 100.0 * (d.ratio - 1.0)
            if d.check_mismatch:
                flag = "CHECK MISMATCH"
            elif d.ratio > 1.0 + self.threshold:
                flag = "REGRESSION"
            elif d.ratio < 1.0 - self.threshold:
                flag = "improved"
            else:
                flag = "ok"
            lines.append(
                f"  {d.name:<28} {1000.0 * d.baseline_seconds:9.2f} ms -> "
                f"{1000.0 * d.candidate_seconds:9.2f} ms  "
                f"({change:+6.1f}%)  {flag}"
            )
        verdict = (
            "no regressions"
            if self.ok
            else f"{len(self.regressions)} regression(s)"
        )
        lines.append(f"  verdict: {verdict}")
        return "\n".join(lines)


def compare_entries(
    baseline: dict, candidate: dict, threshold: float = DEFAULT_THRESHOLD
) -> CompareReport:
    """Diff two trajectory entries workload-by-workload."""
    report = CompareReport(
        baseline_label=str(baseline.get("label", "")),
        candidate_label=str(candidate.get("label", "")),
        threshold=threshold,
    )
    base_results = baseline.get("results") or {}
    cand_results = candidate.get("results") or {}
    for name in sorted(set(base_results) & set(cand_results)):
        base = base_results[name]
        cand = cand_results[name]
        base_check = base.get("check")
        cand_check = cand.get("check")
        mismatch = (
            base_check is not None
            and cand_check is not None
            and abs(float(base_check) - float(cand_check))
            > 1e-6 * max(1.0, abs(float(base_check)))
        )
        report.deltas.append(
            BenchDelta(
                name=name,
                baseline_seconds=float(base.get("seconds", 0.0)),
                candidate_seconds=float(cand.get("seconds", 0.0)),
                check_mismatch=mismatch,
            )
        )
    return report


def compare(
    path: str,
    threshold: float = DEFAULT_THRESHOLD,
    baseline_index: int = -2,
    candidate_index: int = -1,
) -> CompareReport:
    """Compare two entries of a trajectory file (default: last two)."""
    data = load_trajectory(path)
    entries = data["entries"]
    if len(entries) < 2:
        raise BenchError(
            f"{path!r} has {len(entries)} entr{'y' if len(entries) == 1 else 'ies'};"
            " need at least two to compare (run `repro bench record` twice)"
        )
    try:
        baseline = entries[baseline_index]
        candidate = entries[candidate_index]
    except IndexError as err:
        raise BenchError(
            f"entry index out of range for {len(entries)} entries"
        ) from err
    return compare_entries(baseline, candidate, threshold=threshold)
