"""The central catalog of metric instrument names.

Every counter, gauge and histogram recorded through
:mod:`repro.obs.metrics` must be registered here under its bare
instrument name (the exposition adds the ``repro_`` prefix).  The
catalog exists so that the set of series a deployment scrapes is a
reviewed, documented surface rather than an accident of string literals
scattered across the codebase: dashboards and alerts key on these names,
and a typo'd name silently ships a dead series while the dashboard reads
zeros.

``repro devlint`` (rule ``DEV302``) statically checks every literal
metric name at an instrumentation call site against this catalog, so an
unregistered name fails CI before it ships.  When adding an instrument:
add the name to the right family tuple below *and* document its labels
in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

#: LP backends (repro.lp.backends, repro.lp.sparse).
LP_METRICS: tuple[str, ...] = (
    "lp_solves_total",  # counter{backend,status}
    "lp_solve_seconds",  # histogram{backend}
    "lp_pivots",  # histogram{backend}
    "lp_dense_materializations_total",  # counter{site}
)

#: Graph-native cycle solver (repro.cycle.solver).
CYCLE_METRICS: tuple[str, ...] = (
    "cycle_solves_total",  # counter{outcome}
    "cycle_jumps",  # histogram
    "cycle_bisections",  # histogram
    "cycle_bf_rounds",  # histogram
)

#: Max-plus fixpoint kernels (repro.maxplus).
MAXPLUS_METRICS: tuple[str, ...] = (
    "maxplus_fixpoint_sweeps",  # histogram{kernel}
    "maxplus_structure_cache_total",  # counter{outcome}
)

#: Batch engine (repro.engine).
ENGINE_METRICS: tuple[str, ...] = (
    "engine_jobs_total",  # counter{kind,status}
    "engine_job_seconds",  # histogram{kind}
    "engine_stage_seconds",  # histogram{stage}
    "engine_cache_lookups_total",  # counter{outcome}
    "engine_pool_queue_depth",  # gauge
)

#: Serve layer (repro.serve.service) -- RED series plus the flat
#: ServiceStats counters (which live on a per-instance registry).
SERVE_METRICS: tuple[str, ...] = (
    "serve_jobs_total",  # counter{kind,status}
    "serve_results_total",  # counter{kind,source}
    "serve_job_seconds",  # histogram{kind}
    "serve_requests_total",
    "serve_rejected_total",
    "serve_executed_total",
    "serve_coalesced_total",
    "serve_memory_hits_total",
    "serve_store_hits_total",
    "serve_completed_total",
    "serve_failed_total",
    "serve_lp_solves_total",
    "serve_lp_pivots_total",
)

#: Every registered instrument name.  ``repro devlint`` rule DEV302
#: rejects instrumentation call sites whose literal name is not here.
METRIC_NAMES: frozenset[str] = frozenset(
    LP_METRICS
    + CYCLE_METRICS
    + MAXPLUS_METRICS
    + ENGINE_METRICS
    + SERVE_METRICS
)


def is_known_metric(name: str) -> bool:
    """True when ``name`` is a cataloged instrument name."""
    return name in METRIC_NAMES
