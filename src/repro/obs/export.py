"""Trace exporters: Chrome-trace/Perfetto JSON and Prometheus text (repro.obs).

The on-disk trace written by ``--trace FILE`` is a standard Chrome Trace
Event file -- loadable directly in Perfetto (ui.perfetto.dev) or
``chrome://tracing`` -- with one extra top-level key, ``"repro"``, that
preserves the full hierarchical span dicts (both formats tolerate unknown
top-level keys).  ``repro trace summarize`` reads the ``"repro"`` key back
for lossless round-trips and falls back to ``traceEvents`` for foreign
files.

:func:`prometheus_text` flattens a span forest into Prometheus exposition
format (per-span-name totals, counter totals, event counts) for scraping
or diffing between runs.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator

#: Version of the ``"repro"`` sidecar block inside trace files.
TRACE_VERSION = 1


# ----------------------------------------------------------------------
# Span-dict walking helpers (exporters work on plain dicts so they can
# consume both live Span.to_dict() output and reloaded files).
# ----------------------------------------------------------------------
def walk(spans: Iterable[dict]) -> Iterator[dict]:
    """Every span dict in the forest, depth-first."""
    for span in spans:
        yield span
        yield from walk(span.get("children") or [])


def walk_with_ancestors(
    spans: Iterable[dict], ancestors: tuple = ()
) -> Iterator[tuple[dict, tuple]]:
    for span in spans:
        yield span, ancestors
        yield from walk_with_ancestors(
            span.get("children") or [], ancestors + (span,)
        )


# ----------------------------------------------------------------------
# Chrome trace / Perfetto
# ----------------------------------------------------------------------
def chrome_trace(spans: list[dict], run_id: str | None = None) -> dict:
    """A Chrome Trace Event document for a span forest.

    Spans become complete ("X") events on a per-process track; span events
    become instant ("i") events at their recorded timestamps.
    """
    trace_events: list[dict] = []
    for span in walk(spans):
        pid = int(span.get("pid", 0))
        args = dict(span.get("attrs") or {})
        for counter, value in (span.get("counters") or {}).items():
            args[f"counter.{counter}"] = value
        trace_events.append(
            {
                "name": span.get("name", "?"),
                "ph": "X",
                "ts": float(span.get("t0", 0.0)) * 1e6,
                "dur": float(span.get("dur", 0.0)) * 1e6,
                "pid": pid,
                "tid": pid,
                "cat": "repro",
                "args": args,
            }
        )
        for event in span.get("events") or []:
            # Placement uses the wall-clock "ts" stamp (cross-process
            # alignment); the monotonic "mono" stamp is for interval
            # arithmetic only and stays out of the rendered args.
            eargs = {
                k: v
                for k, v in event.items()
                if k not in ("name", "ts", "mono")
            }
            trace_events.append(
                {
                    "name": event.get("name", "event"),
                    "ph": "i",
                    "ts": float(event.get("ts", span.get("t0", 0.0))) * 1e6,
                    "pid": pid,
                    "tid": pid,
                    "cat": "repro",
                    "s": "t",
                    "args": eargs,
                }
            )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "repro": {"version": TRACE_VERSION, "run_id": run_id, "spans": spans},
    }


def write_chrome_trace(
    path: str, spans: list[dict], run_id: str | None = None
) -> str:
    """Write the Chrome-trace file for a span forest; returns the path."""
    document = chrome_trace(spans, run_id=run_id)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, default=str)
    return path


def load_trace(path: str) -> tuple[str | None, list[dict]]:
    """Read a trace file back as ``(run_id, span forest)``.

    Files written by :func:`write_chrome_trace` round-trip exactly through
    the ``"repro"`` sidecar; foreign Chrome traces degrade to a flat list
    of root spans rebuilt from their "X" events.
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: not a trace file")
    sidecar = data.get("repro")
    if isinstance(sidecar, dict) and "spans" in sidecar:
        return sidecar.get("run_id"), list(sidecar["spans"])
    spans = [
        {
            "name": ev.get("name", "?"),
            "t0": float(ev.get("ts", 0.0)) / 1e6,
            "dur": float(ev.get("dur", 0.0)) / 1e6,
            "pid": int(ev.get("pid", 0)),
            "attrs": dict(ev.get("args") or {}),
            "counters": {},
            "events": [],
            "children": [],
        }
        for ev in data.get("traceEvents", [])
        if ev.get("ph") == "X"
    ]
    return None, spans


# ----------------------------------------------------------------------
# Prometheus-style text dump
# ----------------------------------------------------------------------
def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def prometheus_text(spans: list[dict], extra: dict | None = None) -> str:
    """Flatten a span forest into Prometheus exposition-format text.

    Emits, per span name: total seconds and occurrence count; per
    (span, counter): counter totals; per (span, event name): event counts.
    ``extra`` appends scalar gauges verbatim (e.g. EngineReport fields).
    """
    seconds: dict[str, float] = {}
    counts: dict[str, int] = {}
    counters: dict[tuple[str, str], float] = {}
    event_counts: dict[tuple[str, str], int] = {}
    for span in walk(spans):
        name = span.get("name", "?")
        seconds[name] = seconds.get(name, 0.0) + float(span.get("dur", 0.0))
        counts[name] = counts.get(name, 0) + 1
        for counter, value in (span.get("counters") or {}).items():
            key = (name, counter)
            counters[key] = counters.get(key, 0.0) + float(value)
        for event in span.get("events") or []:
            key = (name, event.get("name", "event"))
            event_counts[key] = event_counts.get(key, 0) + 1

    lines = [
        "# HELP repro_span_seconds_total Total wall seconds per span name.",
        "# TYPE repro_span_seconds_total counter",
    ]
    for name in sorted(seconds):
        lines.append(
            f'repro_span_seconds_total{{name="{_escape(name)}"}} '
            f"{seconds[name]:.9f}"
        )
    lines += [
        "# HELP repro_span_total Number of spans per span name.",
        "# TYPE repro_span_total counter",
    ]
    for name in sorted(counts):
        lines.append(f'repro_span_total{{name="{_escape(name)}"}} {counts[name]}')
    if counters:
        lines += [
            "# HELP repro_span_counter_total Span counter totals.",
            "# TYPE repro_span_counter_total counter",
        ]
        for name, counter in sorted(counters):
            lines.append(
                f'repro_span_counter_total{{name="{_escape(name)}",'
                f'counter="{_escape(counter)}"}} {counters[(name, counter)]:g}'
            )
    if event_counts:
        lines += [
            "# HELP repro_span_events_total Event counts per span name.",
            "# TYPE repro_span_events_total counter",
        ]
        for name, event in sorted(event_counts):
            lines.append(
                f'repro_span_events_total{{name="{_escape(name)}",'
                f'event="{_escape(event)}"}} {event_counts[(name, event)]}'
            )
    for key in sorted(extra or {}):
        lines.append(f"repro_{key} {(extra or {})[key]:g}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Top-down summary (the `repro trace summarize` renderer)
# ----------------------------------------------------------------------
def _merge_children(spans: list[dict]) -> dict[str, dict]:
    """Aggregate sibling spans by name: {name: {dur, count, children}}."""
    merged: dict[str, dict] = {}
    for span in spans:
        name = span.get("name", "?")
        slot = merged.setdefault(name, {"dur": 0.0, "count": 0, "spans": []})
        slot["dur"] += float(span.get("dur", 0.0))
        slot["count"] += 1
        slot["spans"].extend(span.get("children") or [])
    return merged


def _breakdown_lines(
    spans: list[dict], total: float, depth: int, lines: list[str]
) -> None:
    merged = _merge_children(spans)
    for name in sorted(merged, key=lambda n: -merged[n]["dur"]):
        slot = merged[name]
        share = 100.0 * slot["dur"] / total if total > 0 else 0.0
        label = "  " * depth + name
        lines.append(
            f"  {label:<42} {1000.0 * slot['dur']:>10.2f} ms "
            f"{share:>6.1f}%  x{slot['count']}"
        )
        if depth < 6:
            _breakdown_lines(slot["spans"], total, depth + 1, lines)


def _nearest_label(span: dict, ancestors: tuple) -> str:
    for candidate in (span,) + tuple(reversed(ancestors)):
        label = (candidate.get("attrs") or {}).get("label")
        if label:
            return str(label)
    return ""


def summarize(spans: list[dict], run_id: str | None = None) -> str:
    """A top-down time breakdown plus a convergence table for a span forest."""
    all_spans = list(walk(spans))
    total = sum(float(s.get("dur", 0.0)) for s in spans)
    pids = sorted({int(s.get("pid", 0)) for s in all_spans})
    header = (
        f"trace: {len(all_spans)} spans, "
        f"{sum(len(s.get('events') or []) for s in all_spans)} events, "
        f"{len(pids)} process{'es' if len(pids) != 1 else ''}, "
        f"total {1000.0 * total:.2f} ms"
    )
    if run_id:
        header = f"run {run_id}\n" + header
    lines = [header, "", "time breakdown (top-down):"]
    _breakdown_lines(spans, total, 0, lines)

    # Convergence table: one row per LP solve and per slide.
    lp_rows: list[tuple[str, str, str, str, str]] = []
    slide_rows: list[tuple[str, str, str, str]] = []
    for span, ancestors in walk_with_ancestors(spans):
        attrs = span.get("attrs") or {}
        label = _nearest_label(span, ancestors)
        if span.get("name") == "lp_solve":
            pivots = sum(
                1 for e in span.get("events") or [] if e.get("name") == "pivot"
            ) or attrs.get("pivots", "")
            lp_rows.append(
                (
                    label,
                    str(attrs.get("backend", "")),
                    str(pivots),
                    str(attrs.get("warm_start", "")),
                    f"{1000.0 * float(span.get('dur', 0.0)):.2f}",
                )
            )
        elif span.get("name") == "slide":
            slide_rows.append(
                (
                    label,
                    str(attrs.get("method", "")),
                    str(attrs.get("sweeps", "")),
                    f"{attrs.get('residual', '')}",
                )
            )
    if lp_rows:
        lines += ["", "lp solves:"]
        lines += _table(
            ["label", "backend", "pivots", "warm", "ms"], lp_rows
        )
    if slide_rows:
        lines += ["", "slide convergence:"]
        lines += _table(["label", "method", "sweeps", "residual"], slide_rows)
    return "\n".join(lines)


def _table(columns: list[str], rows: list[tuple]) -> list[str]:
    widths = [
        max(len(col), *(len(str(row[i])) for row in rows))
        for i, col in enumerate(columns)
    ]
    out = [
        "  " + "  ".join(col.ljust(w) for col, w in zip(columns, widths)),
        "  " + "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        out.append(
            "  " + "  ".join(str(v).ljust(w) for v, w in zip(row, widths))
        )
    return out
