"""Hierarchical span tracing for the whole stack (repro.obs).

A *span* is a named wall-clock interval with attributes (set once),
counters (incremented), point-in-time events, and child spans.  The
process-global :class:`Tracer` keeps a stack of open spans; ``with
trace.span("lp_solve"):`` nests automatically.  Tracing is **off by
default** and the disabled path is engineered to be near-free: ``span()``
returns a shared no-op singleton and every event hook is guarded by one
``enabled`` check, so instrumentation can live permanently in hot paths
(per-pivot, per-sweep) without taxing untraced runs -- the budget, asserted
by ``benchmarks/bench_obs_overhead.py``, is <2% on ``bench_fig7_sweep``.

Process awareness: pool workers run with their own tracer (reset at worker
start, see :mod:`repro.engine.pool`).  A job executed in a worker produces
a *root* span there; :func:`repro.engine.execute.execute_job` serializes
it onto the :class:`~repro.engine.jobspec.JobResult` and the parent engine
re-attaches it under its live batch span with :func:`attach`, so one trace
file covers the full tree across processes (spans carry their ``pid``).

Thread awareness: the global tracer is deliberately not thread-safe (the
engine parallelizes across processes), but a thread may *override* it
with a private tracer via :func:`set_thread_tracer` / :func:`use_tracer`.
The serve layer runs each job on an executor thread under its own
enabled tracer, so concurrent requests record disjoint span trees while
the rest of the process stays untraced.  The disabled fast path gains
one thread-local attribute read, which stays far inside the <2% budget
asserted by ``benchmarks/bench_obs_overhead.py``.

Clocks: two timebases coexist, deliberately.  Span start stamps (``t0``)
and event ``ts`` stamps are wall-clock epoch seconds (``time.time``) so
spans recorded in *different processes* align on one timeline -- the
Chrome-trace exporter (:func:`repro.obs.export.chrome_trace`) places
spans and instant events by these wall stamps.  Durations (``duration``)
are measured on the monotonic ``time.perf_counter`` clock, immune to NTP
steps -- the Prometheus exporter, ``repro trace summarize`` and the
metrics histograms consume only these.  Events additionally carry a
``mono`` stamp (``perf_counter``) so intervals *between events within
one process* can be measured without wall-clock jitter; exporters that
don't know the key ignore it.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from typing import Iterator


def new_run_id() -> str:
    """A short unique id tying spans, events and logs of one run together."""
    return uuid.uuid4().hex[:12]


class NullSpan:
    """Shared no-op span returned by every tracing call while disabled."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, key: str, value: object) -> None:
        pass

    def inc(self, counter: str, n: int = 1) -> None:
        pass

    def event(self, name: str, **attrs: object) -> None:
        pass

    def __bool__(self) -> bool:
        return False


_NULL = NullSpan()


class Span:
    """One named interval of work; also its own context manager."""

    __slots__ = (
        "name",
        "t0",
        "duration",
        "attributes",
        "counters",
        "events",
        "children",
        "pid",
        "_tracer",
        "_p0",
    )

    def __init__(self, tracer: "Tracer | None", name: str, attributes: dict):
        self.name = name
        self.t0 = time.time()
        self.duration = 0.0
        self.attributes = attributes
        self.counters: dict[str, int] = {}
        self.events: list[dict] = []
        self.children: list["Span"] = []
        self.pid = os.getpid()
        self._tracer = tracer
        self._p0 = time.perf_counter()

    # -- recording ------------------------------------------------------
    def set(self, key: str, value: object) -> None:
        """Attach (or overwrite) one attribute."""
        self.attributes[key] = value

    def inc(self, counter: str, n: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + n

    def event(self, name: str, **attrs: object) -> None:
        """Record a point-in-time event inside this span.

        Stamped with both clocks: ``ts`` (wall, cross-process alignment)
        and ``mono`` (perf_counter, intra-process interval arithmetic).
        """
        self.events.append(
            {
                "name": name,
                "ts": time.time(),
                "mono": time.perf_counter(),
                **attrs,
            }
        )

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self._p0
        if exc_type is not None:
            self.attributes.setdefault("exception", exc_type.__name__)
        if self._tracer is not None:
            self._tracer._pop(self)
        return False

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "t0": self.t0,
            "dur": self.duration,
            "pid": self.pid,
            "attrs": dict(self.attributes),
            "counters": dict(self.counters),
            "events": list(self.events),
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span = cls(None, data.get("name", "?"), dict(data.get("attrs") or {}))
        span.t0 = float(data.get("t0", 0.0))
        span.duration = float(data.get("dur", 0.0))
        span.pid = int(data.get("pid", 0))
        span.counters = dict(data.get("counters") or {})
        span.events = list(data.get("events") or [])
        span.children = [cls.from_dict(c) for c in data.get("children") or []]
        return span

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, dur={self.duration:.6f}, "
            f"children={len(self.children)})"
        )


class Tracer:
    """A per-process span collector: an open-span stack plus finished roots.

    Not thread-safe by design -- the engine parallelizes across *processes*
    and each worker resets its own tracer at startup.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.run_id: str | None = None
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    # -- span creation --------------------------------------------------
    def span(self, name: str, **attributes: object) -> Span | NullSpan:
        if not self.enabled:
            return _NULL
        return Span(self, name, attributes)

    @property
    def current(self) -> Span | NullSpan:
        """The innermost open span (NullSpan when none / disabled)."""
        if self.enabled and self._stack:
            return self._stack[-1]
        return _NULL

    # -- stack plumbing (called by Span) --------------------------------
    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Pop back to (and including) `span`; tolerates skipped exits from
        # exceptional unwinds so the tracer never corrupts its stack.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)

    # -- cross-process reassembly ---------------------------------------
    def attach(self, serialized: list[dict]) -> None:
        """Graft serialized span trees (from a worker) into the live tree."""
        if not self.enabled:
            return
        parent = self._stack[-1] if self._stack else None
        for data in serialized:
            span = Span.from_dict(data)
            if parent is not None:
                parent.children.append(span)
            else:
                self.roots.append(span)

    def take_root(self, span: Span) -> bool:
        """Detach ``span`` from the finished roots (worker-side handoff).

        Returns True when the span was a root of this tracer -- the caller
        then owns its serialized form and ships it to the parent process.
        """
        for i, root in enumerate(self.roots):
            if root is span:
                del self.roots[i]
                return True
        return False

    def reset(self, enabled: bool | None = None, run_id: str | None = None) -> None:
        """Drop all recorded state; optionally flip the enabled bit."""
        if enabled is not None:
            self.enabled = enabled
        self.run_id = run_id or (new_run_id() if self.enabled else None)
        self.roots = []
        self._stack = []


#: The process-global tracer every instrumentation site talks to (unless a
#: thread has installed a private override, see set_thread_tracer).
_TRACER = Tracer()

#: Per-thread tracer overrides; reading a missing attribute is the common
#: case, so the fast path is one getattr with a default.
_LOCAL = threading.local()


def get_tracer() -> Tracer:
    """The active tracer: this thread's override if set, else the global one."""
    override = getattr(_LOCAL, "tracer", None)
    return override if override is not None else _TRACER


def set_thread_tracer(tracer: Tracer | None) -> None:
    """Install (or with ``None`` remove) a tracer override for this thread.

    Instrumentation sites on this thread then record into the override,
    leaving the process-global tracer untouched.  The serve layer pairs
    install/remove around each job execution; :func:`use_tracer` wraps the
    same dance as a context manager.
    """
    if tracer is None:
        if hasattr(_LOCAL, "tracer"):
            del _LOCAL.tracer
    else:
        _LOCAL.tracer = tracer


class use_tracer:
    """Context manager: run this thread's instrumentation under ``tracer``."""

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer:
        self._previous = getattr(_LOCAL, "tracer", None)
        _LOCAL.tracer = self.tracer
        return self.tracer

    def __exit__(self, *exc) -> bool:
        set_thread_tracer(self._previous)
        return False


def is_enabled() -> bool:
    return get_tracer().enabled


def enable(run_id: str | None = None) -> Tracer:
    """Turn tracing on (fresh state) and return the global tracer."""
    _TRACER.reset(enabled=True, run_id=run_id or new_run_id())
    return _TRACER


def disable() -> None:
    _TRACER.reset(enabled=False)


def reset(enabled: bool = False, run_id: str | None = None) -> None:
    """Reset the global tracer (worker startup, test isolation)."""
    _TRACER.reset(enabled=enabled, run_id=run_id)


def span(name: str, **attributes: object) -> Span | NullSpan:
    """Open a span on the active tracer (NullSpan when tracing is off)."""
    return get_tracer().span(name, **attributes)


def current_span() -> Span | NullSpan:
    return get_tracer().current


def add_event(name: str, **attrs: object) -> None:
    """Record an event on the innermost open span (no-op when disabled)."""
    tracer = get_tracer()
    if tracer.enabled and tracer._stack:
        tracer._stack[-1].event(name, **attrs)


def inc(counter: str, n: int = 1) -> None:
    """Bump a counter on the innermost open span (no-op when disabled)."""
    tracer = get_tracer()
    if tracer.enabled and tracer._stack:
        tracer._stack[-1].inc(counter, n)


def attach(serialized: list[dict]) -> None:
    """Module-level alias for :meth:`Tracer.attach` on the active tracer."""
    get_tracer().attach(serialized)
