"""``repro top`` -- a live terminal dashboard over a service's /metrics.

Polls the Prometheus exposition endpoint of a running ``repro serve``
instance and renders the RED view a dashboard would: request rate, error
percentage, latency quantiles (derived client-side from the
``serve_job_seconds`` ``_bucket`` series -- no raw samples needed), cache
hit ratio, queue depth, and a per-job-kind breakdown.  Rates and the
latency window are computed from the *delta* between consecutive scrapes,
so the numbers describe the last interval, not the process lifetime
(lifetime quantiles are shown alongside).

Everything is plain functions over parsed samples so tests can feed
canned exposition text through :class:`MetricsView` and
:func:`render_dashboard` without a server or a terminal.
"""

from __future__ import annotations

import http.client
import time
from urllib.parse import urlsplit

from repro.errors import ReproError
from repro.obs.metrics import parse_prometheus_text, quantile_from_buckets

#: Label keys that parameterize histogram series but not their identity.
_BUCKET_LABEL = "le"


class TopError(ReproError):
    """The dashboard could not reach or parse the metrics endpoint."""


class MetricsView:
    """One scrape, indexed for aggregation queries.

    ``name`` lookups accept both the bare instrument name
    (``serve_requests_total``) and the exposed one
    (``repro_serve_requests_total``).
    """

    def __init__(self, text: str, wall: float | None = None) -> None:
        self.wall = time.time() if wall is None else wall
        self.samples = parse_prometheus_text(text)
        self._index: dict[str, list[tuple[dict[str, str], float]]] = {}
        for name, labels, value in self.samples:
            self._index.setdefault(name, []).append((labels, value))

    def _series(self, name: str) -> list[tuple[dict[str, str], float]]:
        return self._index.get(name) or self._index.get(f"repro_{name}") or []

    def total(self, name: str, **match: str) -> float:
        """Sum of every series of ``name`` whose labels include ``match``."""
        out = 0.0
        for labels, value in self._series(name):
            if all(labels.get(k) == v for k, v in match.items()):
                out += value
        return out

    def gauge(self, name: str, default: float = 0.0) -> float:
        series = self._series(name)
        return series[0][1] if series else default

    def label_values(self, name: str, key: str) -> list[str]:
        seen: dict[str, None] = {}
        for labels, _ in self._series(name):
            if key in labels:
                seen.setdefault(labels[key])
        return list(seen)

    def buckets(self, name: str, **match: str) -> list[tuple[float, float]]:
        """Cumulative ``(le, count)`` pairs summed across matching series."""
        merged: dict[float, float] = {}
        for labels, value in self._series(f"{name}_bucket"):
            if not all(labels.get(k) == v for k, v in match.items()):
                continue
            edge_text = labels.get(_BUCKET_LABEL)
            if edge_text is None:
                continue
            edge = float("inf") if edge_text == "+Inf" else float(edge_text)
            merged[edge] = merged.get(edge, 0.0) + value
        return sorted(merged.items())


def bucket_delta(
    current: list[tuple[float, float]], previous: list[tuple[float, float]]
) -> list[tuple[float, float]]:
    """Per-bucket difference of two cumulative scrapes (the rate window)."""
    before = dict(previous)
    return [(edge, count - before.get(edge, 0.0)) for edge, count in current]


def _fmt_seconds(value: float) -> str:
    if value <= 0:
        return "-"
    if value < 1e-3:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def _fmt_rate(value: float) -> str:
    return f"{value:.1f}/s" if value < 100 else f"{value:.0f}/s"


def _quantiles(buckets: list[tuple[float, float]]) -> dict[str, float]:
    return {
        "p50": quantile_from_buckets(buckets, 0.50),
        "p95": quantile_from_buckets(buckets, 0.95),
        "p99": quantile_from_buckets(buckets, 0.99),
    }


def render_dashboard(
    current: MetricsView, previous: MetricsView | None
) -> str:
    """The dashboard text for one scrape pair (previous may be None)."""
    elapsed = (
        max(current.wall - previous.wall, 1e-9) if previous is not None else 0.0
    )

    def delta(name: str, **match: str) -> float:
        if previous is None:
            return 0.0
        return current.total(name, **match) - previous.total(name, **match)

    requests = delta("serve_requests_total")
    rate = requests / elapsed if elapsed else 0.0
    finished = delta("serve_completed_total") + delta("serve_failed_total")
    errors = delta("serve_failed_total") + delta("serve_rejected_total")
    error_pct = 100.0 * errors / max(finished + delta("serve_rejected_total"), 1.0)
    hits = delta("serve_memory_hits_total") + delta("serve_store_hits_total")
    lookups = hits + delta("serve_executed_total")
    hit_pct = 100.0 * hits / lookups if lookups else 0.0

    lifetime = _quantiles(current.buckets("serve_job_seconds"))
    if previous is not None:
        window_buckets = bucket_delta(
            current.buckets("serve_job_seconds"),
            previous.buckets("serve_job_seconds"),
        )
        window = (
            _quantiles(window_buckets)
            if window_buckets and window_buckets[-1][1] > 0
            else lifetime
        )
    else:
        window = lifetime

    lines = [
        "repro top -- serve RED metrics"
        + (f" (window {elapsed:.1f}s)" if elapsed else " (first scrape)"),
        "",
        f"  rate      {_fmt_rate(rate):>10}    errors  {error_pct:5.1f}%    "
        f"cache hit {hit_pct:5.1f}%",
        f"  latency   p50 {_fmt_seconds(window['p50']):>8}  "
        f"p95 {_fmt_seconds(window['p95']):>8}  "
        f"p99 {_fmt_seconds(window['p99']):>8}   (window)",
        f"            p50 {_fmt_seconds(lifetime['p50']):>8}  "
        f"p95 {_fmt_seconds(lifetime['p95']):>8}  "
        f"p99 {_fmt_seconds(lifetime['p99']):>8}   (lifetime)",
        f"  inflight  {current.gauge('serve_inflight'):>10.0f}    "
        f"pool queue {current.gauge('engine_pool_queue_depth'):>6.0f}    "
        f"uptime {current.gauge('serve_uptime_seconds'):8.0f}s",
    ]

    kinds = sorted(current.label_values("serve_jobs_total", "kind"))
    if kinds:
        lines += [
            "",
            f"  {'kind':<10} {'done':>8} {'err':>6} {'rate':>9} "
            f"{'p50':>9} {'p95':>9} {'p99':>9}",
        ]
        for kind in kinds:
            done = current.total("serve_jobs_total", kind=kind, status="ok")
            kind_errors = current.total(
                "serve_jobs_total", kind=kind, status="error"
            ) + current.total("serve_jobs_total", kind=kind, status="rejected")
            kind_rate = (
                delta("serve_jobs_total", kind=kind) / elapsed if elapsed else 0.0
            )
            q = _quantiles(current.buckets("serve_job_seconds", kind=kind))
            lines.append(
                f"  {kind:<10} {done:>8.0f} {kind_errors:>6.0f} "
                f"{_fmt_rate(kind_rate):>9} "
                f"{_fmt_seconds(q['p50']):>9} {_fmt_seconds(q['p95']):>9} "
                f"{_fmt_seconds(q['p99']):>9}"
            )

    solves = current.total("lp_solves_total")
    if solves:
        lp_q = _quantiles(current.buckets("lp_solve_seconds"))
        lines += [
            "",
            f"  lp solves {solves:>10.0f}    "
            f"p50 {_fmt_seconds(lp_q['p50']):>8}  "
            f"p95 {_fmt_seconds(lp_q['p95']):>8}",
        ]
    return "\n".join(lines)


def fetch_metrics(url: str, timeout: float = 5.0) -> str:
    """GET the /metrics exposition text from a server URL."""
    parts = urlsplit(url if "//" in url else f"http://{url}")
    if not parts.hostname or not parts.port:
        raise TopError(f"server URL {url!r} needs an explicit host:port")
    conn = http.client.HTTPConnection(
        parts.hostname, parts.port, timeout=timeout
    )
    try:
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        body = response.read().decode("utf-8", "replace")
    except (OSError, http.client.HTTPException) as err:
        raise TopError(f"cannot scrape {url}/metrics: {err}") from err
    finally:
        conn.close()
    if response.status != 200:
        raise TopError(f"{url}/metrics returned HTTP {response.status}")
    return body


def run_top(
    url: str,
    interval: float = 2.0,
    iterations: int | None = None,
    write=None,
    fetch=None,
    clear: bool = True,
) -> int:
    """Poll /metrics and render the dashboard until interrupted.

    ``iterations`` bounds the number of scrapes (None = run until
    Ctrl-C); ``fetch``/``write`` are injectable for tests.  Returns the
    number of frames rendered.
    """
    import sys

    fetch = fetch or (lambda: fetch_metrics(url))
    write = write or sys.stdout.write
    previous: MetricsView | None = None
    frames = 0
    while iterations is None or frames < iterations:
        current = MetricsView(fetch())
        frame = render_dashboard(current, previous)
        if clear:
            write("\x1b[2J\x1b[H")
        write(frame + "\n")
        previous = current
        frames += 1
        if iterations is not None and frames >= iterations:
            break
        try:
            time.sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            break
    return frames
