"""The baseline comparison ladder, run as engine jobs.

The ladder pits Algorithm MLP against every reconstructed baseline on one
circuit (the comparison behind the paper's Table and Fig. 9 discussion).
Running it through :class:`repro.engine.runner.Engine` gives the rungs
result caching, optional parallel execution and per-stage metrics for
free; the CLI ``baselines`` subcommand and the ladder benchmark both call
:func:`run_ladder`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.graph import TimingGraph
from repro.core.constraints import ConstraintOptions
from repro.core.mlp import MLPOptions
from repro.engine.jobspec import BaselineJob
from repro.engine.runner import Engine
from repro.errors import ReproError

#: (algorithm registry name, human label) -- MLP first so every other rung
#: can be expressed as a ratio to the optimum.
LADDER = (
    ("mlp", "MLP (optimal)"),
    ("nrip", "NRIP"),
    ("borrowing-1", "borrowing (1 pass)"),
    ("borrowing", "borrowing (converged)"),
    ("binary-search", "binary search"),
    ("edge-triggered", "edge-triggered"),
)


@dataclass(frozen=True)
class LadderRow:
    """One rung of the comparison: a baseline's period vs. the optimum."""

    algorithm: str
    label: str
    period: float
    ratio: float


def run_ladder(
    graph: TimingGraph,
    options: ConstraintOptions | None = None,
    mlp: MLPOptions | None = None,
    engine: Engine | None = None,
    jobs: int = 1,
) -> list[LadderRow]:
    """Run every ladder algorithm on ``graph`` and return ordered rows.

    ``engine`` shares a cache/metrics across calls (e.g. several designs in
    one batch); otherwise a throwaway engine with ``jobs`` workers is used.
    """
    if engine is None:
        engine = Engine(jobs=jobs)
    batch = [
        BaselineJob(
            graph=graph,
            algorithm=algorithm,
            options=options,
            mlp=mlp,
            label=label,
        )
        for algorithm, label in LADDER
    ]
    results = engine.run_jobs(batch)
    for (algorithm, _), result in zip(LADDER, results):
        if not result.ok:
            raise ReproError(f"baseline {algorithm!r} failed: {result.error}")
    optimum = float(results[0].value)
    return [
        LadderRow(
            algorithm=algorithm,
            label=label,
            period=float(result.value),
            ratio=float(result.value) / optimum,
        )
        for (algorithm, label), result in zip(LADDER, results)
    ]
