"""The NRIP baseline: null retardation in the initial phase.

Dagenais & Rumin's NRIP algorithm [3] computes clocking parameters under
the simplifying device that signals at the latches of one designated
"initial" phase depart exactly at the phase opening -- zero retardation:
no slack is borrowed *across* that phase.  The paper uses NRIP as its
comparison baseline (Figs. 7 and 9) and reports that it is optimal for
example 1 exactly at ``Delta_41 = 60 ns`` and up to 35% above optimal for
example 2.

We reconstruct NRIP on top of the SMO constraint system: it is the same
LP with the added equalities ``D_i = 0`` for every latch controlled by the
initial phase (the ``NR`` constraint family).  The initial phase defaults
to the circuit's last phase, which matches the phase labeling of [3] for
the paper's example 1 and reproduces the published curve
``Tc_NRIP(Delta_41) = max(100, 40 + Delta_41)`` exactly (see DESIGN.md,
section 5).
"""

from __future__ import annotations

from dataclasses import replace

from repro.circuit.graph import TimingGraph
from repro.core.constraints import ConstraintOptions
from repro.core.mlp import MLPOptions, OptimalClockResult, minimize_cycle_time
from repro.errors import CircuitError


def nrip_minimize(
    graph: TimingGraph,
    initial_phase: str | None = None,
    options: ConstraintOptions | None = None,
    mlp: MLPOptions | None = None,
) -> OptimalClockResult:
    """Minimum cycle time under the NRIP restriction.

    ``initial_phase`` names the phase whose latches are denied retardation
    (default: the last phase of the circuit).  The result is always an
    upper bound on the true optimum found by :func:`minimize_cycle_time`,
    with equality only when the optimal schedule happens to need no
    borrowing across the initial phase.
    """
    options = options or ConstraintOptions()
    phase = initial_phase or graph.phase_names[-1]
    if phase not in graph.phase_names:
        raise CircuitError(
            f"unknown initial phase {phase!r}; circuit phases: "
            f"{list(graph.phase_names)}"
        )
    restricted = replace(
        options,
        zero_departure_phases=tuple(
            dict.fromkeys((*options.zero_departure_phases, phase))
        ),
    )
    result = minimize_cycle_time(graph, restricted, mlp)
    result.extra["baseline"] = "nrip"
    result.extra["initial_phase"] = phase
    return result
