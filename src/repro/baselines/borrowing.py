"""A Jouppi-style borrowing baseline (Section II).

Jouppi's TV verifier first finds the minimum cycle time pretending latches
are edge triggered, then performs "borrowing" iterations: each iteration
tries to lower the cycle time by trading the slack available in
subcritical paths through latch transparency.  In practice TV performed a
single borrowing iteration.

This reconstruction works over the conventional symmetric k-phase clock
shape (scaled proportionally with the period):

1. the edge-triggered minimum period is the starting upper bound
   (doubled as needed until the symmetric-shape schedule actually passes
   the level-sensitive analyzer);
2. each borrowing iteration bisects between the best known feasible and
   infeasible periods, using the exact analyzer as the oracle.

With one iteration it reproduces the roughly-halved gap of a single
borrowing pass; with many it converges to the best period achievable for
the fixed clock shape -- still generally above the MLP optimum, which is
free to reshape the clock phases as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.edge_triggered import edge_triggered_minimize
from repro.circuit.graph import TimingGraph
from repro.clocking.library import symmetric_clock
from repro.clocking.schedule import ClockSchedule
from repro.core.analysis import analyze
from repro.core.constraints import ConstraintOptions
from repro.core.minperiod import proportional_template
from repro.errors import AnalysisError


@dataclass
class BorrowingResult:
    """Outcome of the borrowing baseline."""

    period: float
    schedule: ClockSchedule
    edge_triggered_period: float
    iterations_used: int
    history: list[tuple[float, bool]] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Fraction of the starting (edge-triggered) period recovered."""
        if self.edge_triggered_period == 0:
            return 0.0
        return 1.0 - self.period / self.edge_triggered_period


def _symmetric_reference(graph: TimingGraph) -> ClockSchedule:
    base = symmetric_clock(graph.k, period=1.0)
    phases = [p.renamed(name) for p, name in zip(base.phases, graph.phase_names)]
    return ClockSchedule(1.0, phases)


def borrowing_minimize(
    graph: TimingGraph,
    iterations: int = 1,
    options: ConstraintOptions | None = None,
    reference: ClockSchedule | None = None,
    tol: float = 1e-6,
) -> BorrowingResult:
    """Minimum cycle time via edge-triggered start plus borrowing passes.

    ``iterations = 1`` models TV's single borrowing pass; larger values
    tighten the result toward the fixed-shape optimum.  ``reference``
    overrides the symmetric k-phase clock shape.
    """
    if iterations < 0:
        raise AnalysisError(f"iterations must be >= 0, got {iterations}")
    edge = edge_triggered_minimize(graph, options)
    template = proportional_template(reference or _symmetric_reference(graph))

    # Establish a feasible upper bound for the chosen clock shape, starting
    # from the edge-triggered period.
    hi = max(edge.period, tol)
    lo = 0.0
    for _ in range(60):
        if analyze(graph, template(hi), options).feasible:
            break
        lo = hi
        hi *= 2.0
    else:
        raise AnalysisError(
            "no feasible period found for the reference clock shape"
        )

    history: list[tuple[float, bool]] = []
    used = 0
    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        if mid <= tol or hi - lo <= tol:
            break
        feasible = analyze(graph, template(mid), options).feasible
        history.append((mid, feasible))
        if feasible:
            hi = mid
        else:
            lo = mid
        used += 1
    return BorrowingResult(
        period=hi,
        schedule=template(hi),
        edge_triggered_period=edge.period,
        iterations_used=used,
        history=history,
    )
