"""Baseline algorithms the paper compares against (Sections II and V).

* :mod:`repro.baselines.nrip` -- Dagenais & Rumin's NRIP algorithm
  (reconstruction; the paper's comparison baseline in Figs. 7 and 9);
* :mod:`repro.baselines.edge_triggered` -- the classical approximation:
  pretend every latch is an edge-triggered flip-flop and find the minimum
  cycle time without any borrowing (what "most current methods" of
  Section I do);
* :mod:`repro.baselines.borrowing` -- a Jouppi-style iterative borrowing
  scheme starting from the edge-triggered solution;
* :mod:`repro.baselines.binary_search` -- an Agrawal-style bounded binary
  search over proportionally scaled schedules.
"""

from repro.baselines.binary_search import binary_search_minimize
from repro.baselines.borrowing import BorrowingResult, borrowing_minimize
from repro.baselines.edge_triggered import as_edge_triggered, edge_triggered_minimize
from repro.baselines.nrip import nrip_minimize

__all__ = [
    "nrip_minimize",
    "as_edge_triggered",
    "edge_triggered_minimize",
    "borrowing_minimize",
    "BorrowingResult",
    "binary_search_minimize",
    "LADDER",
    "LadderRow",
    "run_ladder",
]


def __getattr__(name):
    # The ladder pulls in repro.engine (and with it the whole solver
    # stack), so it is imported lazily to keep `import repro.baselines`
    # light for callers that only want one baseline algorithm.
    if name in ("LADDER", "LadderRow", "run_ladder"):
        from repro.baselines import ladder

        return getattr(ladder, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
