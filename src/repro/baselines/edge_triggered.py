"""Edge-triggered approximation: pretend every latch is a flip-flop.

Section I: "Most current methods ... assume edge triggering to simplify
the analysis".  Under that assumption no slack can be borrowed through a
latch's transparent window, so the computed minimum cycle time is an upper
bound on the true optimum; the gap is exactly what level-sensitive design
buys.  The paper also suggests (Section IV) using the edge-triggered
solution as "a very good initial guess" for the LP -- this module provides
that starting point.
"""

from __future__ import annotations

from repro.circuit.elements import EdgeKind, FlipFlop
from repro.circuit.graph import DelayArc, TimingGraph
from repro.core.constraints import ConstraintOptions
from repro.core.mlp import MLPOptions, OptimalClockResult, minimize_cycle_time


def as_edge_triggered(graph: TimingGraph) -> TimingGraph:
    """A copy of the circuit with every latch replaced by a rising-edge FF.

    Timing parameters (setup, delay, hold) and the controlling phases are
    preserved; only the transparency semantics change.
    """
    syncs = []
    for sync in graph.synchronizers:
        if sync.is_latch:
            syncs.append(
                FlipFlop(
                    name=sync.name,
                    phase=sync.phase,
                    setup=sync.setup,
                    delay=sync.delay,
                    hold=sync.hold,
                    edge=EdgeKind.RISE,
                )
            )
        else:
            syncs.append(sync)
    arcs = [
        DelayArc(a.src, a.dst, a.delay, a.min_delay, a.label) for a in graph.arcs
    ]
    return TimingGraph(graph.phase_names, syncs, arcs)


def edge_triggered_minimize(
    graph: TimingGraph,
    options: ConstraintOptions | None = None,
    mlp: MLPOptions | None = None,
) -> OptimalClockResult:
    """Minimum cycle time of the edge-triggered approximation.

    The returned period is an upper bound on the latch-aware optimum of
    :func:`repro.core.mlp.minimize_cycle_time`; equality holds only when
    the circuit gains nothing from latch transparency.
    """
    result = minimize_cycle_time(as_edge_triggered(graph), options, mlp)
    result.extra["baseline"] = "edge-triggered"
    return result
