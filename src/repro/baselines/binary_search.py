"""An Agrawal-style bounded binary search for the maximum clock frequency.

Agrawal (Section II) found the maximum operating frequency of a circuit by
a bounded binary search over candidate periods, checking each candidate
with a timing analysis.  This baseline does the same over a caller-chosen
clock *shape* (default: the symmetric nonoverlapping k-phase clock of
Fig. 3, scaled proportionally), using :func:`repro.core.analysis.analyze`
as the oracle.  Because the shape is fixed, the result upper-bounds the
MLP optimum, which is free to reshape the phases.
"""

from __future__ import annotations

from repro.circuit.graph import TimingGraph
from repro.clocking.library import symmetric_clock
from repro.clocking.schedule import ClockSchedule
from repro.core.constraints import ConstraintOptions
from repro.core.minperiod import min_period_search, proportional_template
from repro.errors import AnalysisError


def _default_reference(graph: TimingGraph) -> ClockSchedule:
    base = symmetric_clock(graph.k, period=1.0)
    phases = [p.renamed(name) for p, name in zip(base.phases, graph.phase_names)]
    return ClockSchedule(1.0, phases)


def binary_search_minimize(
    graph: TimingGraph,
    reference: ClockSchedule | None = None,
    hi: float | None = None,
    tol: float = 1e-6,
    options: ConstraintOptions | None = None,
) -> float:
    """Smallest feasible period for a proportionally scaled clock shape.

    ``reference`` fixes the clock shape (default: symmetric k-phase);
    ``hi`` bounds the search from above (default: a safe bound derived
    from the total circuit delay).
    """
    reference = reference or _default_reference(graph)
    if tuple(reference.names) != tuple(graph.phase_names):
        raise AnalysisError(
            f"reference phases {reference.names} do not match the circuit's "
            f"{graph.phase_names}"
        )
    if hi is None:
        total = sum(a.delay for a in graph.arcs) + sum(
            s.delay + s.setup for s in graph.synchronizers
        )
        hi = max(1.0, 4.0 * total)
    template = proportional_template(reference)
    return min_period_search(graph, template, lo=0.0, hi=hi, tol=tol, options=options)
