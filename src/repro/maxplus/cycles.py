"""Positive-cycle detection in max-plus dependency graphs.

A fixpoint of ``D = max(floor, max(D_src + w))`` exists if and only if
every cycle of the (non-frozen) dependency graph has total weight <= 0.
A positive cycle means signals around some latch loop get strictly later
every time around -- under the given clock schedule the circuit cannot
settle into a periodic steady state.
"""

from __future__ import annotations

import networkx as nx

from repro.maxplus.system import MaxPlusSystem


def _cycle_graph(system: MaxPlusSystem) -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_nodes_from(n for n in system.nodes if n not in system.frozen)
    for arc in system.arcs:
        if arc.src in system.frozen or arc.dst in system.frozen:
            continue  # frozen nodes never propagate increases
        if g.has_edge(arc.src, arc.dst):
            # Parallel dependencies: the heavier one dominates in max-plus.
            g[arc.src][arc.dst]["weight"] = max(
                g[arc.src][arc.dst]["weight"], arc.weight
            )
        else:
            g.add_edge(arc.src, arc.dst, weight=arc.weight)
    return g


def max_cycle_weight(system: MaxPlusSystem) -> float:
    """The maximum total weight over all simple cycles (-inf if acyclic)."""
    g = _cycle_graph(system)
    best = float("-inf")
    for cycle in nx.simple_cycles(g):
        closed = cycle + [cycle[0]]
        weight = sum(
            g[a][b]["weight"] for a, b in zip(closed, closed[1:])
        )
        best = max(best, weight)
    return best


def find_positive_cycle(
    system: MaxPlusSystem, tol: float = 1e-9
) -> list[str] | None:
    """Return the node sequence of some positive-weight cycle, or None.

    Uses longest-path Bellman-Ford relaxation with predecessor tracing; a
    node still relaxing after |V| rounds lies on (or is reachable from) a
    positive cycle, which is then recovered by walking predecessors.
    """
    g = _cycle_graph(system)
    nodes = list(g.nodes)
    if not nodes:
        return None
    dist = {n: 0.0 for n in nodes}
    pred: dict[str, str | None] = {n: None for n in nodes}
    flagged: str | None = None
    for round_idx in range(len(nodes) + 1):
        changed = False
        for a, b, data in g.edges(data=True):
            cand = dist[a] + data["weight"]
            if cand > dist[b] + tol:
                dist[b] = cand
                pred[b] = a
                changed = True
                if round_idx == len(nodes):
                    flagged = b
        if not changed:
            return None
    if flagged is None:  # pragma: no cover - changed implies flagged on last round
        return None
    # Walk back |V| steps to guarantee we are inside the cycle, then trace it.
    node = flagged
    for _ in range(len(nodes)):
        node = pred[node]  # type: ignore[assignment]
    start = node
    cycle = [start]
    node = pred[start]
    while node != start:
        cycle.append(node)  # type: ignore[arg-type]
        node = pred[node]  # type: ignore[index]
    cycle.reverse()
    return cycle
