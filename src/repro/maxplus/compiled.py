"""Compiled numpy kernels for the max-plus fixpoint iteration.

The dict kernels in :mod:`repro.maxplus.fixpoint` walk Python objects --
per-node fanin lists of :class:`WeightedArc` -- which dominates the
non-LP runtime of Algorithm MLP on generated circuits.  This module
lowers a :class:`MaxPlusSystem` into flat arrays once and then runs the
same iterations as whole-array operations:

* int node ids (``system.node_index``) instead of name strings;
* a CSR-style fanin index (``in_ptr``/``in_src``/``in_weight``, arcs
  sorted by destination) so one ``np.maximum.reduceat`` computes every
  node's propagation candidate per sweep;
* a floor vector and a frozen mask instead of dict/set membership tests.

Three kernels mirror the three iteration methods:

* **jacobi** -- one vectorized sweep per iteration, bit-identical to the
  dict listing (same update schedule, same float operations, same sweep
  counts);
* **gauss-seidel** -- *blocked*: nodes are partitioned, in order, into
  maximal runs with no intra-run fanin, and each run updates as one
  vectorized step.  Because a run never reads a value written inside
  itself, the result is bit-identical to the sequential dict sweep.
  (On pure latch rings every run has length 1 and the dict kernel is
  already optimal; blocking pays off on graphs with parallel stages.)
* **event** -- an array worklist: a frontier mask replaces the deque,
  and each round relaxes every arc leaving the frontier at once.  Final
  values agree with the dict worklist to within the update tolerance;
  ``iterations`` still counts individual node updates.

The lowered structure is cached per :attr:`MaxPlusSystem.structure_key`
(mirroring ``StandardForm.structure_key`` on the LP side): successive
points of a delay sweep share every index array and re-cost only the
weight vector.  :func:`repro.core.constraints.build_maxplus_system`
pre-computes that weight vector with numpy and primes the cache, so a
sweep never re-walks arc objects at all.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.maxplus.fixpoint import FixpointResult, _raise_divergent, _record_slide
from repro.maxplus.system import MaxPlusSystem
from repro.obs import metrics, trace

_NEG_INF = float("-inf")

#: node count at or above which ``kernel="auto"`` switches to arrays.
AUTO_ARRAY_MIN_NODES = 64


@dataclass
class CompiledStructure:
    """The weight-independent part of a lowered system (shared by key)."""

    names: tuple[str, ...]
    n: int
    m: int
    frozen_mask: np.ndarray  # bool[n]
    active_mask: np.ndarray  # bool[n] == ~frozen_mask
    in_ptr: np.ndarray  # int64[n+1], fanin CSR offsets (by node id)
    in_src: np.ndarray  # int64[m], source id per CSR slot
    in_dst: np.ndarray  # int64[m], destination id per CSR slot
    in_order: np.ndarray  # int64[m], arc order -> CSR slot permutation
    red_nodes: np.ndarray  # int64, ids with nonempty fanin
    red_starts: np.ndarray  # int64, reduceat starts (one per red node)
    block_bounds: np.ndarray  # int64[B+1], Gauss-Seidel run boundaries
    block_red: np.ndarray  # int64[B+1], red-index range per run


@dataclass
class CompiledMaxPlus:
    """A :class:`MaxPlusSystem` lowered to flat numpy arrays."""

    structure: CompiledStructure
    in_weight: np.ndarray  # float64[m], CSR order
    floors: np.ndarray  # float64[n]


# Bounded structure cache keyed by MaxPlusSystem.structure_key.
_STRUCTURES: OrderedDict[str, CompiledStructure] = OrderedDict()
_STRUCTURE_CACHE_SIZE = 128
_STATS = {"structure_hits": 0, "structure_misses": 0, "compiles": 0}


def cache_stats() -> dict[str, int]:
    """Counters for the structure cache (hit/miss telemetry for tests)."""
    return dict(_STATS)


def clear_cache() -> None:
    """Drop every cached structure (benchmarks measure cold compiles)."""
    _STRUCTURES.clear()
    for key in _STATS:
        _STATS[key] = 0


def _build_structure(system: MaxPlusSystem) -> CompiledStructure:
    index = system.node_index
    n = len(system.nodes)
    m = len(system.arcs)
    frozen_mask = np.zeros(n, dtype=bool)
    for name in system.frozen:
        frozen_mask[index[name]] = True

    src = np.fromiter(
        (index[a.src] for a in system.arcs), dtype=np.int64, count=m
    )
    dst = np.fromiter(
        (index[a.dst] for a in system.arcs), dtype=np.int64, count=m
    )
    order = np.argsort(dst, kind="stable")
    in_src = src[order]
    in_dst = dst[order]
    counts = np.bincount(dst, minlength=n)
    in_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=in_ptr[1:])

    nonempty = in_ptr[:-1] < in_ptr[1:]
    red_nodes = np.nonzero(nonempty)[0]
    red_starts = in_ptr[:-1][nonempty]

    # Gauss-Seidel runs: maximal consecutive id ranges with no fanin from
    # an *earlier unfrozen* node of the same range.  Frozen sources never
    # change within a sweep, so they cannot break a run.
    bounds = [0]
    run_start = 0
    for i in range(n):
        lo, hi = in_ptr[i], in_ptr[i + 1]
        if lo < hi:
            srcs = in_src[lo:hi]
            inside = (srcs >= run_start) & (srcs < i)
            if inside.any() and not frozen_mask[srcs[inside]].all():
                bounds.append(i)
                run_start = i
    bounds.append(n)
    block_bounds = np.asarray(bounds, dtype=np.int64)
    block_red = np.searchsorted(red_nodes, block_bounds)

    return CompiledStructure(
        names=tuple(system.nodes),
        n=n,
        m=m,
        frozen_mask=frozen_mask,
        active_mask=~frozen_mask,
        in_ptr=in_ptr,
        in_src=in_src,
        in_dst=in_dst,
        in_order=order,
        red_nodes=red_nodes,
        red_starts=red_starts,
        block_bounds=block_bounds,
        block_red=block_red,
    )


def prime_weights(system: MaxPlusSystem, weights: np.ndarray) -> None:
    """Attach a precomputed arc-order weight vector to ``system``.

    :func:`repro.core.constraints.build_maxplus_system` calls this with
    the vector it already computed, so :func:`compile_system` never has
    to re-walk the :class:`WeightedArc` objects.
    """
    system.__dict__["_arc_weights"] = np.ascontiguousarray(
        weights, dtype=np.float64
    )


def compile_system(system: MaxPlusSystem) -> CompiledMaxPlus:
    """Lower ``system`` to arrays, reusing cached structure where possible.

    The result is memoized on the system instance (systems are treated
    as immutable after construction, which every builder in this code
    base honors).  The weight-independent index arrays are additionally
    shared across systems with equal :attr:`MaxPlusSystem.structure_key`,
    so a delay sweep pays one structural lowering for the whole sweep and
    an O(arcs) weight re-cost per point.
    """
    cached = system.__dict__.get("_compiled")
    if cached is not None:
        return cached

    traced = trace.is_enabled()
    with trace.span(
        "maxplus.compile", nodes=len(system.nodes), arcs=len(system.arcs)
    ) as span:
        key = system.structure_key
        structure = _STRUCTURES.get(key)
        if structure is None:
            _STATS["structure_misses"] += 1
            metrics.inc("maxplus_structure_cache_total", result="miss")
            structure = _build_structure(system)
            _STRUCTURES[key] = structure
            while len(_STRUCTURES) > _STRUCTURE_CACHE_SIZE:
                _STRUCTURES.popitem(last=False)
            if traced:
                span.set("structure_cache", "miss")
        else:
            _STATS["structure_hits"] += 1
            metrics.inc("maxplus_structure_cache_total", result="hit")
            _STRUCTURES.move_to_end(key)
            if traced:
                span.set("structure_cache", "hit")
                trace.add_event("maxplus.recost", arcs=structure.m)

        _STATS["compiles"] += 1
        weights = system.__dict__.get("_arc_weights")
        if weights is None:
            weights = np.fromiter(
                (a.weight for a in system.arcs),
                dtype=np.float64,
                count=structure.m,
            )
        in_weight = weights[structure.in_order]

        floors = np.zeros(structure.n, dtype=np.float64)
        if system.floors:
            index = system.node_index
            for name, value in system.floors.items():
                floors[index[name]] = value

        compiled = CompiledMaxPlus(
            structure=structure, in_weight=in_weight, floors=floors
        )
    system.__dict__["_compiled"] = compiled
    return compiled


# ----------------------------------------------------------------------
# Shared sweep primitives
# ----------------------------------------------------------------------
def _sweep_best(comp: CompiledMaxPlus, values: np.ndarray) -> np.ndarray:
    """``max(floor_i, max over fanin (values[src] + w))`` for every node."""
    st = comp.structure
    best = comp.floors.copy()
    if st.m:
        cand = values[st.in_src] + comp.in_weight
        seg = np.maximum.reduceat(cand, st.red_starts)
        best[st.red_nodes] = np.maximum(best[st.red_nodes], seg)
    return best


def _block_best(
    comp: CompiledMaxPlus, values: np.ndarray, b: int
) -> tuple[int, int, np.ndarray]:
    """The sweep candidate restricted to Gauss-Seidel run ``b``."""
    st = comp.structure
    lo = int(st.block_bounds[b])
    hi = int(st.block_bounds[b + 1])
    best = comp.floors[lo:hi].copy()
    a0, a1 = int(st.in_ptr[lo]), int(st.in_ptr[hi])
    if a1 > a0:
        cand = values[st.in_src[a0:a1]] + comp.in_weight[a0:a1]
        r0, r1 = int(st.block_red[b]), int(st.block_red[b + 1])
        seg = np.maximum.reduceat(cand, st.red_starts[r0:r1] - a0)
        idx = st.red_nodes[r0:r1] - lo
        best[idx] = np.maximum(best[idx], seg)
    return lo, hi, best


def _as_dict(st: CompiledStructure, values: np.ndarray) -> dict[str, float]:
    return dict(zip(st.names, values.tolist()))


def _start_vector(
    comp: CompiledMaxPlus, start: Mapping[str, float]
) -> np.ndarray:
    st = comp.structure
    values = np.fromiter(
        (float(start[name]) for name in st.names),
        dtype=np.float64,
        count=st.n,
    )
    if st.frozen_mask.any():
        values[st.frozen_mask] = comp.floors[st.frozen_mask]
    return values


# ----------------------------------------------------------------------
# least_fixpoint kernels
# ----------------------------------------------------------------------
def least_fixpoint_arrays(
    system: MaxPlusSystem, method: str = "event", tol: float = 1e-9
) -> FixpointResult:
    """Array implementation of :func:`repro.maxplus.fixpoint.least_fixpoint`.

    Jacobi and Gauss-Seidel reproduce the dict kernels bit for bit
    (values *and* sweep counts); the event kernel agrees on values to
    within ``tol`` and counts node updates under its round-based order.
    """
    comp = compile_system(system)
    st = comp.structure
    n = st.n

    if method == "event":
        return _least_event(system, comp, tol)

    values = comp.floors.copy()
    for sweep in range(n + 1):
        if method == "jacobi":
            best = _sweep_best(comp, values)
            upd = st.active_mask & (best > values + tol)
            if not upd.any():
                return FixpointResult(
                    values=_as_dict(st, values),
                    iterations=sweep + 1,
                    method=method,
                )
            np.copyto(values, best, where=upd)
        else:  # gauss-seidel: runs update in place, in node order
            changed = False
            for b in range(len(st.block_bounds) - 1):
                lo, hi, best = _block_best(comp, values, b)
                cur = values[lo:hi]
                upd = st.active_mask[lo:hi] & (best > cur + tol)
                if upd.any():
                    changed = True
                    np.copyto(cur, best, where=upd)
            if not changed:
                return FixpointResult(
                    values=_as_dict(st, values),
                    iterations=sweep + 1,
                    method=method,
                )
    _raise_divergent(system)
    raise AssertionError("unreachable")  # pragma: no cover


def _least_event(
    system: MaxPlusSystem, comp: CompiledMaxPlus, tol: float
) -> FixpointResult:
    st = comp.structure
    n = st.n
    values = comp.floors.copy()
    relax = np.zeros(n, dtype=np.int64)
    frontier = np.ones(n, dtype=bool)
    updates = 0
    while frontier.any():
        upd = np.zeros(n, dtype=bool)
        if st.m:
            on = frontier[st.in_src]
            cand = np.where(
                on, values[st.in_src] + comp.in_weight, _NEG_INF
            )
            seg = np.maximum.reduceat(cand, st.red_starts)
            better = st.active_mask[st.red_nodes] & (
                seg > values[st.red_nodes] + tol
            )
            targets = st.red_nodes[better]
            upd[targets] = True
            values[targets] = seg[better]
        count = int(upd.sum())
        if not count:
            break
        updates += count
        relax[upd] += 1
        if (relax[upd] > n).any():
            _raise_divergent(system)
        frontier = upd
    return FixpointResult(
        values=_as_dict(st, values), iterations=updates, method="event"
    )


# ----------------------------------------------------------------------
# slide kernels
# ----------------------------------------------------------------------
def slide_arrays(
    system: MaxPlusSystem,
    start: Mapping[str, float],
    method: str = "jacobi",
    tol: float = 1e-9,
    max_sweeps: int | None = None,
) -> FixpointResult:
    """Array implementation of :func:`repro.maxplus.fixpoint.slide`.

    Same contract as the dict kernel, including the exact least-fixpoint
    fallback when the sweep cap is hit.  Jacobi and Gauss-Seidel are
    bit-identical to their dict counterparts; the event kernel agrees on
    values to within ``tol``.
    """
    comp = compile_system(system)
    st = comp.structure
    n = st.n
    if max_sweeps is None:
        max_sweeps = max(10 * n, 100)
    values = _start_vector(comp, start)
    traced = trace.is_enabled()

    if method == "event":
        return _slide_event(system, comp, values, tol, max_sweeps, traced)

    residual = 0.0
    residuals: list[float] = [] if traced else None  # type: ignore[assignment]
    for sweep in range(max_sweeps):
        if method == "jacobi":
            best = _sweep_best(comp, values)
            delta = np.abs(best - values)
            upd = st.active_mask & (delta > tol)
            changed = bool(upd.any())
            sweep_max = float(delta[upd].max()) if changed else 0.0
            if changed:
                np.copyto(values, best, where=upd)
        else:  # gauss-seidel over runs, in place
            changed = False
            sweep_max = 0.0
            for b in range(len(st.block_bounds) - 1):
                lo, hi, best = _block_best(comp, values, b)
                cur = values[lo:hi]
                delta = np.abs(best - cur)
                upd = st.active_mask[lo:hi] & (delta > tol)
                if upd.any():
                    changed = True
                    sweep_max = max(sweep_max, float(delta[upd].max()))
                    np.copyto(cur, best, where=upd)
        if changed:
            residual = sweep_max
        if traced:
            residuals.append(sweep_max)
            trace.add_event("slide.sweep", sweep=sweep, residual=sweep_max)
        if not changed:
            _record_slide(traced, sweep + 1, residual, residuals)
            return FixpointResult(
                values=_as_dict(st, values),
                iterations=sweep + 1,
                method=method,
                residual=residual,
            )
    return _fallback_to_least_arrays(system, method)


def _slide_event(
    system: MaxPlusSystem,
    comp: CompiledMaxPlus,
    values: np.ndarray,
    tol: float,
    max_sweeps: int,
    traced: bool,
) -> FixpointResult:
    st = comp.structure
    n = st.n
    budget = max_sweeps * max(n, 1)
    frontier = np.ones(n, dtype=bool)
    updates = 0
    residual = 0.0
    while frontier.any():
        if updates > budget:
            return _fallback_to_least_arrays(system, "event")
        # Recompute the full candidate for every frontier node (the dict
        # worklist scans a popped node's whole fanin the same way).
        best = _sweep_best(comp, values)
        delta = values - best
        upd = frontier & st.active_mask & (delta > tol)
        count = int(upd.sum())
        if not count:
            break
        residual = float(delta[upd].max())
        values[upd] = best[upd]
        updates += count
        if traced:
            trace.add_event(
                "slide.round", nodes=count, delta=residual, updates=updates
            )
        frontier = np.zeros(n, dtype=bool)
        if st.m:
            hot = upd[st.in_src]
            frontier[st.in_dst[hot]] = True
    _record_slide(traced, updates, residual, None)
    return FixpointResult(
        values=_as_dict(st, values),
        iterations=updates,
        method="event",
        residual=residual,
    )


def _fallback_to_least_arrays(
    system: MaxPlusSystem, method: str
) -> FixpointResult:
    exact = least_fixpoint_arrays(system, method="event")
    _record_slide(trace.is_enabled(), exact.iterations, 0.0, None)
    return FixpointResult(
        values=exact.values,
        iterations=exact.iterations,
        method=f"{method}+least-fixpoint",
        converged=True,
        residual=0.0,
    )
