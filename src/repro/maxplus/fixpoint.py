"""Fixpoint computation for max-plus systems.

Two entry points:

* :func:`least_fixpoint` -- compute the least fixpoint from below
  (Bellman-Ford style; exact, terminates in at most ``|V|`` rounds, detects
  divergence).  This is the physically meaningful solution: the earliest
  periodic departure times under a fixed clock schedule.
* :func:`slide` -- the paper's Algorithm MLP steps 3-5: start from a point
  that satisfies the *relaxed* constraints (e.g. an LP optimum, which is a
  pre-fixed point) and repeatedly apply the update map, "sliding" departure
  times toward the time origin until the max constraints hold with equality.

Both support Jacobi (the paper's listing), Gauss-Seidel, and event-driven
worklist iteration (the paper's suggested enhancement).

Each entry point takes a ``kernel`` argument selecting the execution
engine: ``"dict"`` (this module's reference implementation over Python
dicts), ``"array"`` (the compiled numpy kernels in
:mod:`repro.maxplus.compiled`), or ``"auto"``, which switches to arrays
on systems large enough for the lowering to pay off -- and only for the
methods whose array kernel is bit-identical to the dict kernel, so the
choice can never change a reported value.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Mapping

from repro.errors import AnalysisError, DivergentTimingError
from repro.maxplus.cycles import find_positive_cycle
from repro.maxplus.system import MaxPlusSystem
from repro.obs import metrics, trace

_METHODS = ("jacobi", "gauss-seidel", "event")
_KERNELS = ("dict", "array", "auto")


@dataclass
class FixpointResult:
    """Fixpoint values plus convergence bookkeeping.

    ``iterations`` counts full sweeps for the Jacobi/Gauss-Seidel methods
    and individual node updates for the event-driven method.  ``residual``
    is the magnitude of the largest value update applied in the final
    changing sweep (the convergence telemetry the slide reports; 0.0 when
    the start point was already a fixpoint or the values are exact).
    """

    values: dict[str, float]
    iterations: int
    method: str
    converged: bool = True
    residual: float = 0.0


def _check_method(method: str) -> None:
    if method not in _METHODS:
        raise AnalysisError(
            f"unknown iteration method {method!r}; choose from {_METHODS}"
        )


def _check_kernel(kernel: str) -> None:
    if kernel not in _KERNELS:
        raise AnalysisError(
            f"unknown fixpoint kernel {kernel!r}; choose from {_KERNELS}"
        )


def _use_array(system: MaxPlusSystem, method: str, kernel: str) -> bool:
    """Decide whether to run the compiled numpy kernel.

    ``"auto"`` only ever picks an array kernel that is bit-identical to
    the dict kernel (Jacobi always; blocked Gauss-Seidel when the run
    structure is wide enough to amortize the per-run dispatch).  The
    event worklist agrees only to within ``tol``, so auto keeps it on
    dicts; request ``kernel="array"`` explicitly to vectorize it.
    """
    if kernel == "array":
        return True
    if kernel != "auto":
        return False
    from repro.maxplus import compiled

    n = len(system.nodes)
    if n < compiled.AUTO_ARRAY_MIN_NODES or method == "event":
        return False
    if method == "jacobi":
        return True
    structure = compiled.compile_system(system).structure
    blocks = len(structure.block_bounds) - 1
    return blocks > 0 and n / blocks >= 4.0


def least_fixpoint(
    system: MaxPlusSystem,
    method: str = "event",
    tol: float = 1e-9,
    kernel: str = "dict",
) -> FixpointResult:
    """Least fixpoint of ``D = max(floor, max(D_src + w))`` from below.

    Raises :class:`DivergentTimingError` when no fixpoint exists (positive
    dependency cycle), attaching the offending latch cycle to the message.
    """
    _check_method(method)
    _check_kernel(kernel)
    if _use_array(system, method, kernel):
        from repro.maxplus import compiled

        return compiled.least_fixpoint_arrays(system, method=method, tol=tol)
    n = len(system.nodes)
    values = {node: system.floor(node) for node in system.nodes}
    fanin = system.fanin()

    if method == "event":
        fanout = system.fanout()
        updates = 0
        # SPFA-style longest-path propagation with per-node relax counting.
        queue = deque(system.nodes)
        queued = set(system.nodes)
        relaxations = {node: 0 for node in system.nodes}
        while queue:
            src = queue.popleft()
            queued.discard(src)
            for arc in fanout[src]:
                dst = arc.dst
                if dst in system.frozen:
                    continue
                cand = values[src] + arc.weight
                if cand > values[dst] + tol:
                    values[dst] = cand
                    updates += 1
                    relaxations[dst] += 1
                    if relaxations[dst] > n:
                        _raise_divergent(system)
                    if dst not in queued:
                        queue.append(dst)
                        queued.add(dst)
        return FixpointResult(values=values, iterations=updates, method=method)

    # Sweep-based methods: at most |V| sweeps suffice for the least fixpoint
    # when one exists (longest-path argument); one more changing sweep means
    # a positive cycle.
    for sweep in range(n + 1):
        changed = False
        current = dict(values) if method == "jacobi" else values
        for node in system.nodes:
            if node in system.frozen:
                continue
            best = system.floor(node)
            for arc in fanin[node]:
                best = max(best, current[arc.src] + arc.weight)
            if best > values[node] + tol:
                values[node] = best
                changed = True
        if not changed:
            return FixpointResult(values=values, iterations=sweep + 1, method=method)
    _raise_divergent(system)
    raise AssertionError("unreachable")  # pragma: no cover


def slide(
    system: MaxPlusSystem,
    start: Mapping[str, float],
    method: str = "jacobi",
    tol: float = 1e-9,
    max_sweeps: int | None = None,
    kernel: str = "dict",
) -> FixpointResult:
    """Algorithm MLP steps 3-5: iterate the update map from ``start``.

    ``start`` must dominate a fixpoint (any point satisfying the relaxed
    constraints L2R does); the iteration is then monotonically decreasing
    and converges to the greatest fixpoint below ``start``.  When the sweep
    cap is hit without convergence (possible when a zero/negative-weight
    cycle makes the slide geometric rather than finite) the exact least
    fixpoint is returned instead -- it satisfies the same constraints and is
    never larger, so optimality is preserved.
    """
    _check_method(method)
    _check_kernel(kernel)
    if _use_array(system, method, kernel):
        from repro.maxplus import compiled

        return compiled.slide_arrays(
            system, start, method=method, tol=tol, max_sweeps=max_sweeps
        )
    n = len(system.nodes)
    if max_sweeps is None:
        max_sweeps = max(10 * n, 100)
    values = {node: float(start[node]) for node in system.nodes}
    for node in system.frozen:
        values[node] = system.floor(node)
    fanin = system.fanin()

    traced = trace.is_enabled()

    if method == "event":
        fanout = system.fanout()
        # Seed with every node; propagate decreases.
        queue = deque(system.nodes)
        queued = set(system.nodes)
        updates = 0
        residual = 0.0
        budget = max_sweeps * max(n, 1)
        while queue:
            if updates > budget:
                return _fallback_to_least(system, method)
            node = queue.popleft()
            queued.discard(node)
            if node in system.frozen:
                continue
            best = system.floor(node)
            for arc in fanin[node]:
                best = max(best, values[arc.src] + arc.weight)
            if best < values[node] - tol:
                delta = values[node] - best
                residual = delta
                values[node] = best
                updates += 1
                if traced:
                    trace.add_event(
                        "slide.update", node=node, delta=delta, update=updates
                    )
                for arc in fanout[node]:
                    if arc.dst not in queued:
                        queue.append(arc.dst)
                        queued.add(arc.dst)
        _record_slide(traced, updates, residual, None)
        return FixpointResult(
            values=values, iterations=updates, method=method, residual=residual
        )

    residual = 0.0
    residuals: list[float] = [] if traced else None  # type: ignore[assignment]
    for sweep in range(max_sweeps):
        changed = False
        sweep_max = 0.0
        current = dict(values) if method == "jacobi" else values
        for node in system.nodes:
            if node in system.frozen:
                continue
            best = system.floor(node)
            for arc in fanin[node]:
                best = max(best, current[arc.src] + arc.weight)
            delta = abs(best - values[node])
            if delta > tol:
                values[node] = best
                changed = True
                if delta > sweep_max:
                    sweep_max = delta
        if changed:
            residual = sweep_max
        if traced:
            residuals.append(sweep_max)
            trace.add_event("slide.sweep", sweep=sweep, residual=sweep_max)
        if not changed:
            _record_slide(traced, sweep + 1, residual, residuals)
            return FixpointResult(
                values=values,
                iterations=sweep + 1,
                method=method,
                residual=residual,
            )
    return _fallback_to_least(system, method)


def _record_slide(
    traced: bool,
    iterations: int,
    residual: float,
    residuals: list[float] | None,
) -> None:
    """Attach convergence telemetry to the enclosing span when tracing."""
    if metrics.is_enabled():
        metrics.observe(
            "maxplus_fixpoint_sweeps",
            float(iterations),
            buckets=metrics.COUNT_BUCKETS,
        )
    if not traced:
        return
    span = trace.current_span()
    span.set("sweeps", iterations)
    span.set("residual", residual)
    if residuals is not None:
        span.set("sweep_residuals", residuals)


def _fallback_to_least(system: MaxPlusSystem, method: str) -> FixpointResult:
    exact = least_fixpoint(system, method="event")
    _record_slide(trace.is_enabled(), exact.iterations, 0.0, None)
    return FixpointResult(
        values=exact.values,
        iterations=exact.iterations,
        method=f"{method}+least-fixpoint",
        converged=True,
        residual=0.0,
    )


def _raise_divergent(system: MaxPlusSystem) -> None:
    cycle = find_positive_cycle(system)
    if cycle:
        path = " -> ".join(cycle + [cycle[0]])
        raise DivergentTimingError(
            f"departure times diverge: positive-weight dependency cycle {path}; "
            f"the circuit cannot settle at this clock schedule"
        )
    raise DivergentTimingError(
        "departure times diverge under the given clock schedule"
    )
