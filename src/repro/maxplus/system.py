"""Data model for max-plus update systems."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import AnalysisError


@dataclass(frozen=True)
class WeightedArc:
    """A dependency ``dst >= src + weight`` in a max-plus system."""

    src: str
    dst: str
    weight: float


@dataclass
class MaxPlusSystem:
    """The system ``D_i = max(floor_i, max over arcs into i (D_src + w))``.

    ``frozen`` nodes keep their floor value and are never updated; they model
    edge-triggered flip-flops, whose departure times are pinned to a clock
    edge rather than floating over an active interval.
    """

    nodes: list[str]
    arcs: list[WeightedArc]
    floors: dict[str, float] = field(default_factory=dict)
    frozen: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        # One index map validates everything in O(V + E) and doubles as the
        # node -> dense-id table the compiled kernels are built on.
        index = {name: i for i, name in enumerate(self.nodes)}
        if len(index) != len(self.nodes):
            raise AnalysisError("duplicate node names in max-plus system")
        for arc in self.arcs:
            if arc.src not in index or arc.dst not in index:
                raise AnalysisError(
                    f"arc {arc.src}->{arc.dst} references unknown node"
                )
        for name in self.floors:
            if name not in index:
                raise AnalysisError(f"floor given for unknown node {name!r}")
        for name in self.frozen:
            if name not in index:
                raise AnalysisError(f"frozen flag on unknown node {name!r}")
        self._index = index

    @property
    def node_index(self) -> dict[str, int]:
        """Node name -> dense integer id (position in :attr:`nodes`).

        Built once during validation and shared with the array kernels in
        :mod:`repro.maxplus.compiled`; treat it as read-only.
        """
        return self._index

    @property
    def structure_key(self) -> str:
        """Fingerprint of the *structure* (nodes, arc pairs, frozen set).

        Arc weights and floors are deliberately excluded: two systems from
        successive points of a delay sweep share a key, so the compiled
        index arrays can be reused and only the weight vector re-costed
        (mirroring ``StandardForm.structure_key`` on the LP side).
        """
        key = self.__dict__.get("_structure_key")
        if key is None:
            blob = "\x1f".join(
                [
                    "v1",
                    "\x1e".join(self.nodes),
                    "\x1e".join(f"{a.src}\x1d{a.dst}" for a in self.arcs),
                    "\x1e".join(sorted(self.frozen)),
                ]
            )
            key = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
            self._structure_key = key
        return key

    def floor(self, name: str) -> float:
        return self.floors.get(name, 0.0)

    def fanin(self) -> dict[str, list[WeightedArc]]:
        table: dict[str, list[WeightedArc]] = {n: [] for n in self.nodes}
        for arc in self.arcs:
            table[arc.dst].append(arc)
        return table

    def fanout(self) -> dict[str, list[WeightedArc]]:
        table: dict[str, list[WeightedArc]] = {n: [] for n in self.nodes}
        for arc in self.arcs:
            table[arc.src].append(arc)
        return table

    def apply(self, values: Mapping[str, float]) -> dict[str, float]:
        """One synchronous (Jacobi) application of the update map F."""
        fanin = self.fanin()
        out: dict[str, float] = {}
        for node in self.nodes:
            if node in self.frozen:
                out[node] = self.floor(node)
                continue
            best = self.floor(node)
            for arc in fanin[node]:
                best = max(best, values[arc.src] + arc.weight)
            out[node] = best
        return out

    def residual(self, values: Mapping[str, float]) -> float:
        """max |F(values) - values|: zero exactly at a fixpoint."""
        nxt = self.apply(values)
        return max(
            (abs(nxt[n] - values[n]) for n in self.nodes), default=0.0
        )

    def is_prefixed_point(self, values: Mapping[str, float], tol: float = 1e-9) -> bool:
        """True if ``values >= F(values)`` componentwise (LP solutions are)."""
        nxt = self.apply(values)
        return all(values[n] >= nxt[n] - tol for n in self.nodes)
