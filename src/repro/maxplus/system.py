"""Data model for max-plus update systems."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import AnalysisError


@dataclass(frozen=True)
class WeightedArc:
    """A dependency ``dst >= src + weight`` in a max-plus system."""

    src: str
    dst: str
    weight: float


@dataclass
class MaxPlusSystem:
    """The system ``D_i = max(floor_i, max over arcs into i (D_src + w))``.

    ``frozen`` nodes keep their floor value and are never updated; they model
    edge-triggered flip-flops, whose departure times are pinned to a clock
    edge rather than floating over an active interval.
    """

    nodes: list[str]
    arcs: list[WeightedArc]
    floors: dict[str, float] = field(default_factory=dict)
    frozen: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        known = set(self.nodes)
        if len(known) != len(self.nodes):
            raise AnalysisError("duplicate node names in max-plus system")
        for arc in self.arcs:
            if arc.src not in known or arc.dst not in known:
                raise AnalysisError(
                    f"arc {arc.src}->{arc.dst} references unknown node"
                )
        for name in self.floors:
            if name not in known:
                raise AnalysisError(f"floor given for unknown node {name!r}")
        for name in self.frozen:
            if name not in known:
                raise AnalysisError(f"frozen flag on unknown node {name!r}")

    def floor(self, name: str) -> float:
        return self.floors.get(name, 0.0)

    def fanin(self) -> dict[str, list[WeightedArc]]:
        table: dict[str, list[WeightedArc]] = {n: [] for n in self.nodes}
        for arc in self.arcs:
            table[arc.dst].append(arc)
        return table

    def fanout(self) -> dict[str, list[WeightedArc]]:
        table: dict[str, list[WeightedArc]] = {n: [] for n in self.nodes}
        for arc in self.arcs:
            table[arc.src].append(arc)
        return table

    def apply(self, values: Mapping[str, float]) -> dict[str, float]:
        """One synchronous (Jacobi) application of the update map F."""
        fanin = self.fanin()
        out: dict[str, float] = {}
        for node in self.nodes:
            if node in self.frozen:
                out[node] = self.floor(node)
                continue
            best = self.floor(node)
            for arc in fanin[node]:
                best = max(best, values[arc.src] + arc.weight)
            out[node] = best
        return out

    def residual(self, values: Mapping[str, float]) -> float:
        """max |F(values) - values|: zero exactly at a fixpoint."""
        nxt = self.apply(values)
        return max(
            (abs(nxt[n] - values[n]) for n in self.nodes), default=0.0
        )

    def is_prefixed_point(self, values: Mapping[str, float], tol: float = 1e-9) -> bool:
        """True if ``values >= F(values)`` componentwise (LP solutions are)."""
        nxt = self.apply(values)
        return all(values[n] >= nxt[n] - tol for n in self.nodes)
