"""Max-plus fixpoint machinery for the latch propagation constraints.

With the clock variables held fixed, the paper's propagation constraints L2
(eq. 17) form a max-plus system

    D_i = max(floor_i, max_j (D_j + w_ji))

whose arc weights ``w_ji = Delta_DQj + Delta_ji + S_{pj pi}`` are constants.
This package computes fixpoints of such systems three ways (Jacobi -- the
paper's Algorithm MLP steps 3-5; Gauss-Seidel; event-driven worklist -- the
paper's suggested enhancement) and detects the positive-weight cycles that
signal an unclockable schedule.
"""

from repro.maxplus.compiled import (
    CompiledMaxPlus,
    compile_system,
    least_fixpoint_arrays,
    slide_arrays,
)
from repro.maxplus.cycles import find_positive_cycle, max_cycle_weight
from repro.maxplus.fixpoint import FixpointResult, least_fixpoint, slide
from repro.maxplus.system import MaxPlusSystem, WeightedArc

__all__ = [
    "MaxPlusSystem",
    "WeightedArc",
    "FixpointResult",
    "CompiledMaxPlus",
    "compile_system",
    "least_fixpoint",
    "least_fixpoint_arrays",
    "slide",
    "slide_arrays",
    "find_positive_cycle",
    "max_cycle_weight",
]
