"""Thin setup.py shim.

The project is fully described by pyproject.toml; this file exists so the
package can be installed editable (``pip install -e . --no-use-pep517``) on
machines that lack the ``wheel`` package required by PEP 660 editables.
"""

from setuptools import setup

setup()
