"""Unit tests for SMO constraint generation (Section III)."""

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.clocking.library import two_phase_clock
from repro.core.constraints import (
    TC,
    ConstraintOptions,
    build_maxplus_system,
    build_program,
    d_var,
    s_var,
    schedule_from_values,
    t_var,
)
from repro.designs import example1
from repro.errors import CircuitError, LPError
from repro.lp.model import Sense


@pytest.fixture
def smo_ex1():
    return build_program(example1(80.0))


class TestFamilies:
    def test_family_sizes_example1(self, smo_ex1):
        # k = 2, l = 4, arcs = 4, |K| = 2.
        assert len(smo_ex1.family("C1")) == 4  # 2 per phase
        assert len(smo_ex1.family("C2")) == 1
        assert len(smo_ex1.family("C3")) == 2
        assert len(smo_ex1.family("L1")) == 4
        assert len(smo_ex1.family("L2R")) == 4

    def test_explicit_count(self, smo_ex1):
        assert smo_ex1.explicit_constraint_count == 4 + 1 + 2 + 4 + 4

    def test_paper_count_adds_nonnegativity(self, smo_ex1):
        # + C4 (2k+1 = 5) + L3 (l = 4).
        assert smo_ex1.paper_constraint_count == 15 + 5 + 4

    def test_objective_is_tc(self, smo_ex1):
        assert smo_ex1.program.objective.terms == {TC: 1.0}

    def test_arc_mapping(self, smo_ex1):
        assert smo_ex1.arc_of_constraint["L2R[L4->L1]"] == ("L4", "L1")


class TestPaperConstraintListing:
    """Check the generated rows against the paper's Section V listing."""

    def test_setup_rows(self, smo_ex1):
        con = smo_ex1.program.constraint("L1[L1]")
        # D1 + 10 <= T1  ->  D1 - T1 <= -10.
        assert con.sense is Sense.LE
        assert con.lhs.terms == {d_var("L1"): 1.0, t_var("phi1"): -1.0}
        assert con.rhs == -10.0

    def test_propagation_row_without_cycle_crossing(self, smo_ex1):
        # D2 >= D1 + 10 + 20 + s1 - s2.
        con = smo_ex1.program.constraint("L2R[L1->L2]")
        assert con.sense is Sense.GE
        assert con.lhs.terms == {
            d_var("L2"): 1.0,
            d_var("L1"): -1.0,
            s_var("phi1"): -1.0,
            s_var("phi2"): 1.0,
        }
        assert con.rhs == 30.0

    def test_propagation_row_with_cycle_crossing(self, smo_ex1):
        # D1 >= D4 + 10 + 80 + s2 - s1 - Tc.
        con = smo_ex1.program.constraint("L2R[L4->L1]")
        assert con.lhs.terms == {
            d_var("L1"): 1.0,
            d_var("L4"): -1.0,
            s_var("phi2"): -1.0,
            s_var("phi1"): 1.0,
            TC: 1.0,
        }
        assert con.rhs == 90.0

    def test_nonoverlap_rows(self, smo_ex1):
        # s1 >= s2 + T2 - Tc and s2 >= s1 + T1.
        c12 = smo_ex1.program.constraint("C3[phi1/phi2]")
        assert c12.lhs.terms == {
            s_var("phi1"): 1.0,
            s_var("phi2"): -1.0,
            t_var("phi2"): -1.0,
            TC: 1.0,
        }
        c21 = smo_ex1.program.constraint("C3[phi2/phi1]")
        assert c21.lhs.terms == {
            s_var("phi2"): 1.0,
            s_var("phi1"): -1.0,
            t_var("phi1"): -1.0,
        }

    def test_topological_coefficients(self, smo_ex1):
        smo_ex1.assert_topological()
        assert smo_ex1.program.check_topological()


class TestFlipFlopRows:
    def build(self, edge):
        b = CircuitBuilder(["phi1", "phi2"])
        b.latch("L", phase="phi1", setup=1, delay=2)
        b.flipflop("F", phase="phi2", setup=0.5, delay=1, edge=edge)
        b.path("L", "F", 10)
        b.path("F", "L", 4)
        return build_program(b.build())

    def test_rise_pins_departure_to_zero(self):
        smo = self.build("rise")
        con = smo.program.constraint("FF[F]")
        assert con.sense is Sense.EQ
        assert con.lhs.terms == {d_var("F"): 1.0}
        assert con.rhs == 0.0

    def test_fall_pins_departure_to_width(self):
        smo = self.build("fall")
        con = smo.program.constraint("FF[F]")
        assert con.lhs.terms == {d_var("F"): 1.0, t_var("phi2"): -1.0}

    def test_rise_setup_row(self):
        smo = self.build("rise")
        con = smo.program.constraint("FS[L->F]")
        # D_L + 2 + 10 + s1 - s2 + 0.5 <= 0.
        assert con.sense is Sense.LE
        assert con.rhs == pytest.approx(-12.5)

    def test_fall_setup_row_references_width(self):
        smo = self.build("fall")
        con = smo.program.constraint("FS[L->F]")
        assert t_var("phi2") in con.lhs.terms


class TestOptions:
    def test_min_width_rows(self):
        smo = build_program(example1(), ConstraintOptions(min_width=5.0))
        assert len(smo.family("XW")) == 2

    def test_max_period_row(self):
        smo = build_program(example1(), ConstraintOptions(max_period=100.0))
        assert smo.family("XP") == ["XP[Tc]"]

    def test_fixed_values(self):
        opts = ConstraintOptions(
            fixed_period=100.0,
            fixed_starts={"phi1": 0.0},
            fixed_widths={"phi2": 20.0},
        )
        smo = build_program(example1(), opts)
        assert len(smo.family("FIX")) == 3

    def test_fixed_unknown_phase_rejected(self):
        with pytest.raises(CircuitError):
            build_program(
                example1(), ConstraintOptions(fixed_starts={"bogus": 0.0})
            )

    def test_zero_departure_rows(self):
        smo = build_program(
            example1(), ConstraintOptions(zero_departure_phases=("phi2",))
        )
        assert sorted(smo.family("NR")) == ["NR[L2]", "NR[L4]"]

    def test_zero_departure_unknown_phase(self):
        with pytest.raises(CircuitError):
            build_program(
                example1(), ConstraintOptions(zero_departure_phases=("zz",))
            )

    def test_setup_margin_tightens_rhs(self):
        plain = build_program(example1())
        tight = build_program(example1(), ConstraintOptions(setup_margin=2.0))
        assert (
            tight.program.constraint("L1[L1]").rhs
            == plain.program.constraint("L1[L1]").rhs - 2.0
        )

    def test_min_separation_tightens_c3(self):
        plain = build_program(example1())
        spaced = build_program(example1(), ConstraintOptions(min_separation=3.0))
        assert (
            spaced.program.constraint("C3[phi2/phi1]").rhs
            == plain.program.constraint("C3[phi2/phi1]").rhs + 3.0
        )

    def test_negative_options_rejected(self):
        with pytest.raises(LPError):
            ConstraintOptions(min_width=-1.0)
        with pytest.raises(LPError):
            ConstraintOptions(min_separation=-1.0)


class TestMaxPlusBridge:
    def test_weights_match_shift_operator(self):
        g = example1(80.0)
        schedule = two_phase_clock(200.0)
        system = build_maxplus_system(g, schedule)
        weights = {(a.src, a.dst): a.weight for a in system.arcs}
        # w(L1->L2) = 10 + 20 + S_12.
        assert weights[("L1", "L2")] == pytest.approx(
            30 + schedule.phase_shift("phi1", "phi2")
        )
        assert weights[("L4", "L1")] == pytest.approx(
            90 + schedule.phase_shift("phi2", "phi1")
        )

    def test_phase_mismatch_rejected(self):
        g = example1()
        bad = two_phase_clock(100.0).scaled(1.0)
        renamed = bad.with_period(100.0)
        from repro.clocking.phase import ClockPhase
        from repro.clocking.schedule import ClockSchedule

        other = ClockSchedule(
            100.0, [ClockPhase("a", 0, 10), ClockPhase("b", 50, 10)]
        )
        with pytest.raises(CircuitError):
            build_maxplus_system(g, other)

    def test_schedule_from_values_snaps_dust(self):
        g = example1()
        values = {
            TC: 100.0,
            s_var("phi1"): -1e-10,
            t_var("phi1"): 10.0,
            s_var("phi2"): 50.0,
            t_var("phi2"): 10.0,
        }
        schedule = schedule_from_values(g, values)
        assert schedule["phi1"].start == 0.0
