"""Unit tests for LP sensitivity reporting."""

import pytest

from repro.errors import LPError
from repro.lp.expr import var
from repro.lp.model import LinearProgram
from repro.lp.sensitivity import perturbed, rhs_ranging, sensitivity
from repro.lp.simplex import solve_simplex


def knapsack_lp(cap=18.0):
    lp = LinearProgram()
    x, y = var("x"), var("y")
    lp.minimize(-3 * x - 5 * y)
    lp.add_le(x, 4, name="c1")
    lp.add_le(2 * y, 12, name="c2")
    lp.add_le(3 * x + 2 * y, cap, name="c3")
    return lp


class TestSensitivityReport:
    def test_binding_partition(self):
        lp = knapsack_lp()
        r = solve_simplex(lp)
        rep = sensitivity(lp, r)
        assert set(rep.binding) | set(rep.nonbinding) == {"c1", "c2", "c3"}
        assert "c2" in rep.binding
        assert "c3" in rep.binding
        assert "c1" in rep.nonbinding

    def test_critical_requires_nonzero_dual(self):
        lp = LinearProgram()
        lp.minimize(var("x"))
        lp.add_ge(var("x"), 2, name="lb")
        lp.add_le(var("x"), 2, name="ub")  # binding but zero shadow price
        r = solve_simplex(lp)
        rep = sensitivity(lp, r)
        assert "lb" in rep.critical()

    def test_str_render(self):
        lp = knapsack_lp()
        rep = sensitivity(lp, solve_simplex(lp))
        text = str(rep)
        assert "c3" in text and "binding" in text

    def test_rejects_failed_result(self):
        lp = LinearProgram()
        lp.add_le(var("x"), -1, name="bad")
        r = solve_simplex(lp)
        with pytest.raises(LPError):
            sensitivity(lp, r)


class TestRanging:
    def test_measured_slope_matches_dual(self):
        lp = knapsack_lp()
        r = solve_simplex(lp)
        slope = rhs_ranging(knapsack_lp, solve_simplex, at=18.0, step=1e-5)
        assert slope == pytest.approx(r.duals["c3"], abs=1e-4)

    def test_perturbed(self):
        lp = knapsack_lp()
        c = lp.constraint("c3")
        assert perturbed(c, 2.0).rhs == pytest.approx(20.0)
