"""Unit tests for fixed-schedule timing analysis (the analysis problem)."""

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.clocking.library import two_phase_clock
from repro.clocking.phase import ClockPhase
from repro.clocking.schedule import ClockSchedule
from repro.core.analysis import analyze
from repro.core.constraints import ConstraintOptions
from repro.core.mlp import minimize_cycle_time
from repro.designs import example1


class TestFeasibleSchedules:
    def test_generous_schedule_passes(self, ex1):
        schedule = ClockSchedule(
            400.0,
            [ClockPhase("phi1", 0.0, 150.0), ClockPhase("phi2", 200.0, 150.0)],
        )
        report = analyze(ex1, schedule)
        assert report.feasible
        assert report.worst_slack > 0

    def test_departures_nonnegative(self, ex1):
        schedule = two_phase_clock(400.0)
        report = analyze(ex1, schedule)
        assert all(t.departure >= 0 for t in report.timings.values())

    def test_waiting_gap_reported(self):
        # The Fig. 6(c) phenomenon: at D41 = 120 and Tc = 140 the input to
        # latch 3 becomes valid 20 ns before phi1 rises.
        g = example1(120.0)
        result = minimize_cycle_time(g)
        report = analyze(g, result.schedule)
        l3 = report.timings["L3"]
        assert l3.arrival == pytest.approx(-20.0)
        assert l3.departure == pytest.approx(0.0)
        assert l3.waiting == pytest.approx(20.0)

    def test_no_fanin_latch(self):
        b = CircuitBuilder(["phi1", "phi2"])
        b.latch("src", phase="phi1", setup=1, delay=1)
        b.latch("dst", phase="phi2", setup=1, delay=1)
        b.path("src", "dst", 5)
        report = analyze(b.build(), two_phase_clock(100.0))
        assert report.timings["src"].arrival == float("-inf")
        assert report.timings["src"].waiting == 0.0
        assert report.feasible


class TestInfeasibleSchedules:
    def test_setup_violation_detected(self, ex1):
        # 112 ns exceeds the 110 ns optimum, but the symmetric clock shape
        # leaves phi1 too narrow for the borrowed departure of L1.
        schedule = two_phase_clock(112.0)
        report = analyze(ex1, schedule)
        assert not report.feasible
        assert report.setup_violations
        assert report.worst_slack < 0

    def test_divergent_cycle_reported(self, ex1):
        # Tiny cycle: signals can't make it around the loop -> positive
        # max-plus cycle -> divergence, reported rather than raised.
        schedule = two_phase_clock(10.0)
        report = analyze(ex1, schedule)
        assert not report.feasible
        assert report.divergent_cycle is not None
        assert report.worst_slack == float("-inf")

    def test_clock_violations_reported(self, ex1):
        overlapping = ClockSchedule(
            400.0,
            [ClockPhase("phi1", 0.0, 300.0), ClockPhase("phi2", 100.0, 150.0)],
        )
        report = analyze(ex1, overlapping)
        assert report.clock_violations
        assert not report.feasible

    def test_min_width_option_checked(self, ex1):
        schedule = two_phase_clock(400.0)
        report = analyze(ex1, schedule, ConstraintOptions(min_width=999.0))
        assert any("XW" in v for v in report.clock_violations)


class TestFlipFlopAnalysis:
    def build(self, edge, delay=10.0):
        b = CircuitBuilder(["phi1", "phi2"])
        b.latch("L", phase="phi1", setup=1, delay=2)
        b.flipflop("F", phase="phi2", setup=1, delay=2, edge=edge)
        b.path("L", "F", delay)
        return b.build()

    def test_rise_ff_departure_pinned(self):
        g = self.build("rise")
        report = analyze(g, two_phase_clock(100.0))
        assert report.timings["F"].departure == 0.0

    def test_fall_ff_departure_is_width(self):
        g = self.build("fall")
        schedule = two_phase_clock(100.0)
        report = analyze(g, schedule)
        assert report.timings["F"].departure == schedule["phi2"].width

    def test_rise_ff_setup_against_edge(self):
        # Arrival at F (rel. q) = 0 + 2 + delay + S_pq = 2 + delay - 50.
        g = self.build("rise", delay=30.0)
        report = analyze(g, two_phase_clock(100.0))
        f = report.timings["F"]
        assert f.arrival == pytest.approx(-18.0)
        assert f.slack == pytest.approx(0.0 - (-18.0) - 1.0)

    def test_rise_ff_violation(self):
        g = self.build("rise", delay=60.0)
        report = analyze(g, two_phase_clock(100.0))
        assert not report.timings["F"].ok

    def test_ff_no_fanin(self):
        b = CircuitBuilder(["phi1", "phi2"])
        b.flipflop("F", phase="phi1")
        b.latch("L", phase="phi2")
        b.path("F", "L", 1)
        report = analyze(b.build(), two_phase_clock(100.0))
        assert report.timings["F"].slack == float("inf")


class TestReportRendering:
    def test_str_contains_table(self, ex1):
        report = analyze(ex1, two_phase_clock(400.0))
        text = str(report)
        assert "feasible: True" in text
        assert "L3" in text

    def test_departures_helper(self, ex1):
        report = analyze(ex1, two_phase_clock(400.0))
        assert set(report.departures()) == {"L1", "L2", "L3", "L4"}


class TestBorrowing:
    def test_optimal_schedule_borrows(self, ex1):
        # At the 110 ns optimum (slope-1/2 region of Fig. 7) the circuit
        # works only because latches pass data while transparent.
        report = analyze(ex1, minimize_cycle_time(ex1).schedule)
        assert report.total_borrowed > 0
        assert all(v > 0 for v in report.borrowing().values())

    def test_relaxed_schedule_borrows_less(self, ex1):
        tight = analyze(ex1, minimize_cycle_time(ex1).schedule)
        loose = analyze(ex1, minimize_cycle_time(ex1).schedule.scaled(2.0))
        assert loose.total_borrowed <= tight.total_borrowed

    def test_waiting_circuit_borrows_nothing(self):
        # A generous symmetric clock: all signals wait for their phases.
        g = example1(0.0)
        report = analyze(g, two_phase_clock(400.0))
        assert report.total_borrowed == 0.0
        assert report.borrowing() == {}
