"""Unit tests for the standard clock factories (Fig. 3)."""

import pytest

from repro.clocking.library import (
    fig3_clocks,
    four_phase_clock,
    single_phase_clock,
    symmetric_clock,
    three_phase_clock,
    two_phase_clock,
)
from repro.clocking.waveform import phases_overlap
from repro.errors import ClockError


class TestSymmetric:
    def test_starts_evenly_spaced(self):
        s = symmetric_clock(4, 100.0)
        assert s.starts == (0.0, 25.0, 50.0, 75.0)

    def test_duty(self):
        s = symmetric_clock(2, 100.0, duty=0.3)
        assert s.widths == (15.0, 15.0)

    def test_satisfies_clock_constraints(self):
        for k in (1, 2, 3, 5):
            assert symmetric_clock(k, 60.0).is_valid()

    def test_invalid_k(self):
        with pytest.raises(ClockError):
            symmetric_clock(0, 100.0)

    def test_invalid_duty(self):
        with pytest.raises(ClockError):
            symmetric_clock(2, 100.0, duty=1.5)


class TestTwoPhase:
    def test_default_quarters(self):
        s = two_phase_clock(100.0)
        assert s["phi1"].width == 25.0
        assert s["phi2"].start == 50.0

    def test_phases_nonoverlapping(self):
        s = two_phase_clock(100.0)
        assert not phases_overlap(s, "phi1", "phi2")

    def test_custom_widths(self):
        s = two_phase_clock(100.0, width1=30.0, width2=40.0, gap=10.0)
        assert s["phi1"].width == 30.0
        assert s["phi2"].start == 40.0
        assert s["phi2"].width == 40.0

    def test_overfull_period_rejected(self):
        with pytest.raises(ClockError):
            two_phase_clock(100.0, width1=60.0, width2=60.0, gap=10.0)

    def test_negative_gap_rejected(self):
        with pytest.raises(ClockError):
            two_phase_clock(100.0, gap=-1.0)


class TestFig3:
    def test_contains_three_schemes(self):
        clocks = fig3_clocks(100.0)
        assert set(clocks) == {"two-phase", "three-phase", "four-phase"}

    def test_all_valid_under_full_k(self):
        # Fig. 3's clocks must satisfy C1-C4 even when every cross-phase
        # pair is an I/O pair (the most demanding nonoverlap requirement
        # for the two-phase case).
        clocks = fig3_clocks(100.0)
        two = clocks["two-phase"]
        assert two.is_valid([[0, 1], [1, 0]])

    def test_phase_counts(self):
        clocks = fig3_clocks()
        assert clocks["two-phase"].k == 2
        assert clocks["three-phase"].k == 3
        assert clocks["four-phase"].k == 4

    def test_single_phase(self):
        s = single_phase_clock(10.0)
        assert s.k == 1 and s["phi1"].width == 5.0

    def test_three_and_four_phase_wrappers(self):
        assert three_phase_clock(90.0).k == 3
        assert four_phase_clock(80.0).k == 4
