"""Global invariant property tests across the whole optimization stack.

These encode facts that must hold for *any* circuit, independent of the
paper's examples: homogeneity of the optimum in the delays, monotonicity
in delays and structure, agreement between the LP view and the analytical
view, and the topological-coefficient property of Section VI.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.generate import random_multiloop_circuit
from repro.core.analysis import analyze
from repro.core.constraints import build_program
from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.designs import example1

FAST = MLPOptions(verify=False)


def circuits():
    return st.builds(
        random_multiloop_circuit,
        n_latches=st.integers(3, 9),
        n_extra_arcs=st.integers(0, 5),
        k=st.integers(2, 4),
        seed=st.integers(0, 99999),
    )


class TestHomogeneity:
    """Tc*(c * all delays) = c * Tc*: the LP is homogeneous of degree 1."""

    @settings(max_examples=20, deadline=None)
    @given(g=circuits(), factor=st.floats(0.25, 4.0))
    def test_scaling(self, g, factor):
        base = minimize_cycle_time(g, mlp=FAST).period
        scaled = minimize_cycle_time(g.scaled_delays(factor), mlp=FAST).period
        assert scaled == pytest.approx(base * factor, rel=1e-7, abs=1e-9)

    def test_example1_scaling(self):
        g = example1(80.0)
        assert minimize_cycle_time(g.scaled_delays(0.001)).period == (
            pytest.approx(0.110)
        )


class TestMonotonicity:
    @settings(max_examples=20, deadline=None)
    @given(g=circuits(), bump=st.floats(0.0, 50.0))
    def test_increasing_any_delay_never_helps(self, g, bump):
        arc = g.arcs[0]
        base = minimize_cycle_time(g, mlp=FAST).period
        slower = g.with_arc_delay(arc.src, arc.dst, arc.delay + bump)
        assert minimize_cycle_time(slower, mlp=FAST).period >= base - 1e-7

    @settings(max_examples=15, deadline=None)
    @given(g=circuits())
    def test_removing_an_arc_never_hurts(self, g):
        # Dropping a constraint (an arc) can only relax the problem.
        base = minimize_cycle_time(g, mlp=FAST).period
        arc = max(g.arcs, key=lambda a: a.delay)
        from repro.circuit.graph import TimingGraph

        reduced = TimingGraph(
            g.phase_names,
            g.synchronizers,
            [a for a in g.arcs if (a.src, a.dst) != (arc.src, arc.dst)],
        )
        assert minimize_cycle_time(reduced, mlp=FAST).period <= base + 1e-7

    @settings(max_examples=15, deadline=None)
    @given(g=circuits(), extra=st.floats(0.1, 20.0))
    def test_setup_margin_monotone(self, g, extra):
        from repro.core.constraints import ConstraintOptions

        base = minimize_cycle_time(g, mlp=FAST).period
        tighter = minimize_cycle_time(
            g, ConstraintOptions(setup_margin=extra), mlp=FAST
        ).period
        assert tighter >= base - 1e-7


class TestConsistency:
    @settings(max_examples=20, deadline=None)
    @given(g=circuits())
    def test_topological_coefficients_always(self, g):
        build_program(g).assert_topological()

    @settings(max_examples=15, deadline=None)
    @given(g=circuits(), stretch=st.floats(1.0, 3.0))
    def test_analysis_feasible_anywhere_at_or_above_optimum(self, g, stretch):
        result = minimize_cycle_time(g, mlp=FAST)
        # Scaling the whole optimal schedule up keeps it feasible: the
        # schedule stretches proportionally while delays stay fixed.
        assert analyze(g, result.schedule.scaled(stretch)).feasible

    @settings(max_examples=15, deadline=None)
    @given(g=circuits())
    def test_paper_constraint_count_formula(self, g):
        smo = build_program(g)
        k, l = g.k, g.l
        arcs = len(g.arcs)
        n_k = len(g.io_phase_pairs())
        expected = (2 * k) + (k - 1) + n_k + l + arcs  # all-latch circuits
        assert smo.explicit_constraint_count == expected
        assert smo.paper_constraint_count == expected + (2 * k + 1) + l
