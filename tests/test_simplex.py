"""Unit and property tests for the from-scratch simplex solver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InfeasibleError, UnboundedError
from repro.lp.backends import available_backends, solve
from repro.lp.expr import var
from repro.lp.model import LinearProgram
from repro.lp.result import LPStatus
from repro.lp.simplex import SimplexOptions, solve_simplex

needs_scipy = pytest.mark.skipif(
    "scipy" not in available_backends(), reason="scipy backend unavailable"
)


class TestBasics:
    def test_bounded_optimum(self):
        lp = LinearProgram()
        x, y = var("x"), var("y")
        lp.minimize(-x - 2 * y)
        lp.add_le(x + y, 4, name="sum")
        lp.add_le(x, 3)
        lp.add_le(y, 2)
        r = solve_simplex(lp)
        assert r.status is LPStatus.OPTIMAL
        assert r.objective == pytest.approx(-6.0)
        assert r.values == pytest.approx({"x": 2.0, "y": 2.0})

    def test_infeasible(self):
        lp = LinearProgram()
        lp.add_le(var("x"), -1)
        assert solve_simplex(lp).status is LPStatus.INFEASIBLE

    def test_unbounded(self):
        lp = LinearProgram()
        lp.minimize(-var("x"))
        lp.add_ge(var("x"), 1)
        assert solve_simplex(lp).status is LPStatus.UNBOUNDED

    def test_equality_constraints(self):
        lp = LinearProgram()
        lp.minimize(var("x") + var("y"))
        lp.add_eq(var("x") + var("y"), 5)
        lp.add_ge(var("x"), 2)
        r = solve_simplex(lp)
        assert r.objective == pytest.approx(5.0)

    def test_free_variable(self):
        lp = LinearProgram()
        lp.set_free("z")
        lp.minimize(var("z"))
        lp.add_ge(var("z"), -7)
        r = solve_simplex(lp)
        assert r.objective == pytest.approx(-7.0)
        assert r.values["z"] == pytest.approx(-7.0)

    def test_no_constraints_bounded(self):
        lp = LinearProgram()
        lp.minimize(var("x"))
        lp.declare("x")
        r = solve_simplex(lp)
        assert r.status is LPStatus.OPTIMAL
        assert r.objective == 0.0

    def test_no_constraints_unbounded(self):
        lp = LinearProgram()
        lp.minimize(-var("x"))
        lp.declare("x")
        assert solve_simplex(lp).status is LPStatus.UNBOUNDED

    def test_objective_constant_carried(self):
        lp = LinearProgram()
        lp.minimize(var("x") + 10)
        lp.add_ge(var("x"), 1)
        assert solve_simplex(lp).objective == pytest.approx(11.0)

    def test_degenerate_does_not_cycle(self):
        # Classic degeneracy: many constraints active at the origin.
        lp = LinearProgram()
        x, y, z = var("x"), var("y"), var("z")
        lp.minimize(-0.75 * x + 150 * y - 0.02 * z)
        lp.add_le(0.25 * x - 60 * y - 0.04 * z, 0)
        lp.add_le(0.5 * x - 90 * y - 0.02 * z, 0)
        lp.add_le(z, 1)
        r = solve_simplex(lp, SimplexOptions(bland_after=0))
        assert r.status is LPStatus.OPTIMAL
        assert r.objective == pytest.approx(-0.05, abs=1e-6)

    def test_raise_for_status(self):
        lp = LinearProgram()
        lp.add_le(var("x"), -1)
        with pytest.raises(InfeasibleError):
            solve_simplex(lp).raise_for_status()
        lp2 = LinearProgram()
        lp2.minimize(-var("x"))
        lp2.add_ge(var("x"), 0)
        with pytest.raises(UnboundedError):
            solve_simplex(lp2).raise_for_status()


class TestDuals:
    def test_shadow_prices_match_finite_difference(self):
        def build(cap):
            lp = LinearProgram()
            x, y = var("x"), var("y")
            lp.minimize(-3 * x - 5 * y)
            lp.add_le(x, 4, name="c1")
            lp.add_le(2 * y, 12, name="c2")
            lp.add_le(3 * x + 2 * y, cap, name="c3")
            return lp

        r = solve_simplex(build(18))
        eps = 1e-6
        lo = solve_simplex(build(18 - eps)).objective
        hi = solve_simplex(build(18 + eps)).objective
        measured = (hi - lo) / (2 * eps)
        assert r.duals["c3"] == pytest.approx(measured, abs=1e-4)

    def test_nonbinding_constraint_has_zero_dual(self):
        lp = LinearProgram()
        lp.minimize(var("x"))
        lp.add_ge(var("x"), 2, name="active")
        lp.add_le(var("x"), 100, name="loose")
        r = solve_simplex(lp)
        assert r.duals["loose"] == pytest.approx(0.0, abs=1e-9)
        assert r.duals["active"] == pytest.approx(1.0, abs=1e-9)

    def test_slacks(self):
        lp = LinearProgram()
        lp.minimize(var("x"))
        lp.add_ge(var("x"), 2, name="lb")
        lp.add_le(var("x"), 5, name="ub")
        r = solve_simplex(lp)
        assert r.slacks["lb"] == pytest.approx(0.0)
        assert r.slacks["ub"] == pytest.approx(3.0)
        assert r.binding_constraints() == ["lb"]


@st.composite
def random_lp(draw):
    """Small random LPs with bounded feasible regions."""
    n = draw(st.integers(1, 4))
    m = draw(st.integers(1, 5))
    coeff = st.integers(-3, 3)
    names = [f"x{i}" for i in range(n)]
    lp = LinearProgram()
    obj = sum((draw(coeff) * var(v) for v in names), var(names[0]) * 0)
    lp.minimize(obj)
    for v in names:
        lp.declare(v)
        lp.add_le(var(v), draw(st.integers(1, 10)), name=f"ub_{v}")
    for j in range(m):
        row = sum((draw(coeff) * var(v) for v in names), var(names[0]) * 0)
        sense = draw(st.sampled_from(["<=", ">="]))
        rhs = draw(st.integers(-5, 15))
        lp.add(row, sense, rhs, name=f"c{j}")
    return lp


@needs_scipy
class TestAgainstScipy:
    @settings(max_examples=60, deadline=None)
    @given(random_lp())
    def test_status_and_objective_agree(self, lp):
        ours = solve_simplex(lp)
        theirs = solve(lp, "scipy")
        assert ours.status == theirs.status
        if ours.status is LPStatus.OPTIMAL:
            assert ours.objective == pytest.approx(theirs.objective, abs=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(random_lp())
    def test_solution_is_feasible(self, lp):
        r = solve_simplex(lp)
        if r.status is not LPStatus.OPTIMAL:
            return
        for con in lp.constraints:
            assert con.violation(r.values) <= 1e-6
        for v in lp.variables:
            if v not in lp.free_variables:
                assert r.values[v] >= -1e-9
