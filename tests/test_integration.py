"""End-to-end integration tests spanning multiple subsystems."""

import pytest

from repro import (
    CircuitBuilder,
    ConstraintOptions,
    analyze,
    binary_search_minimize,
    borrowing_minimize,
    check_hold,
    check_structure,
    clock_diagram,
    critical_segments,
    default_library,
    edge_triggered_minimize,
    extract_timing_graph,
    minimize_cycle_time,
    nrip_minimize,
    parse_circuit,
    schedule_svg,
    simulate,
    strip_diagram,
    sweep_delay,
    write_circuit,
)
from repro.netlist import Netlist


class TestTextToOptimumPipeline:
    """lcd text -> graph -> MLP -> analysis -> simulation -> renderers."""

    TEXT = """
    clock { phase phi1; phase phi2; phase phi3; }
    latch A phase phi1 setup 2 delay 3;
    latch B phase phi2 setup 2 delay 3;
    latch C phase phi3 setup 2 delay 3;
    flipflop F phase phi1 edge rise setup 1 delay 2;
    path A -> B delay 12;
    path B -> C delay 9;
    path C -> A delay 15;
    path B -> F delay 4;
    path F -> B delay 6;
    """

    def test_full_pipeline(self):
        graph = parse_circuit(self.TEXT).to_graph()
        assert check_structure(graph).ok

        result = minimize_cycle_time(graph)
        assert result.period > 0

        report = analyze(graph, result.schedule)
        assert report.feasible

        sim = simulate(graph, result.schedule)
        assert sim.feasible
        for name, d in sim.steady_departures().items():
            assert d == pytest.approx(report.timings[name].departure, abs=1e-6)

        # Renderers accept the real outputs.
        assert "phi3" in clock_diagram(result.schedule)
        assert "F" in strip_diagram(graph, report)
        assert "<svg" in schedule_svg(result.schedule, graph, report)

        # Round-trip including the solved schedule.
        text = write_circuit(graph, result.schedule)
        decl = parse_circuit(text)
        assert decl.to_schedule() == result.schedule

    def test_criticality_consistent_with_sweep(self):
        graph = parse_circuit(self.TEXT).to_graph()
        result = minimize_cycle_time(graph)
        report = critical_segments(result.smo, result.lp_result)
        critical_arcs = {(a.src, a.dst) for a in report.arcs}
        # Perturbing a critical arc's delay changes the optimum; perturbing
        # a deeply noncritical one does not.
        base = result.period
        for src, dst in critical_arcs:
            bumped = graph.with_arc_delay(src, dst, graph.arc(src, dst).delay + 5.0)
            assert minimize_cycle_time(bumped).period >= base - 1e-9


class TestGateLevelToOptimumPipeline:
    """Gate netlist -> STA extraction -> MLP -> verification."""

    def build_netlist(self):
        lib = default_library()
        nl = Netlist("pipe", lib)
        for clk in ("c1", "c2"):
            nl.add_input(clk)
        nl.add("lat_a", "DLATCH", D="wrap", G="c1", Q="qa")
        nl.add("u1", "NAND2", A="qa", B="qa", Z="n1")
        nl.add("u2", "FA_S", A="n1", B="qa", CI="qa", Z="n2")
        nl.add("u3", "INV", A="n2", Z="n3")
        nl.add("lat_b", "DLATCH", D="n3", G="c2", Q="qb")
        nl.add("u4", "MUX2", A="qb", B="qb", S="qb", Z="n4")
        nl.add("u5", "BUF", A="n4", Z="wrap")
        return nl

    def test_extract_optimize_verify(self):
        nl = self.build_netlist()
        assert nl.check() == []
        graph = extract_timing_graph(nl, {"c1": "phi1", "c2": "phi2"})
        result = minimize_cycle_time(graph)
        assert analyze(graph, result.schedule).feasible
        assert simulate(graph, result.schedule).feasible
        # Short-path side: the default library's hold demands are tiny.
        assert check_hold(graph, result.schedule).feasible

    def test_min_delays_propagate_to_hold_analysis(self):
        nl = self.build_netlist()
        graph = extract_timing_graph(nl, {"c1": "phi1", "c2": "phi2"})
        arc = graph.arc("lat_a", "lat_b")
        assert 0 < arc.min_delay < arc.delay


class TestBaselineHierarchy:
    """All five algorithms on one circuit, with the expected ordering."""

    def test_ordering_on_example2(self, ex2):
        opt = minimize_cycle_time(ex2).period
        nrip = nrip_minimize(ex2).period
        borrowed = borrowing_minimize(ex2, iterations=30).period
        bsearch = binary_search_minimize(ex2)
        edge = edge_triggered_minimize(ex2).period
        assert opt <= nrip + 1e-9
        assert opt <= borrowed + 1e-9
        assert opt <= bsearch + 1e-9
        assert opt <= edge + 1e-9
        # Borrowing converges to the symmetric-shape boundary found by the
        # binary search (they share the oracle and the shape).
        assert borrowed == pytest.approx(bsearch, rel=1e-3)


class TestOptionsInteroperate:
    def test_margin_flows_through_analysis_and_mlp(self, ex1):
        options = ConstraintOptions(setup_margin=5.0)
        result = minimize_cycle_time(ex1, options)
        assert result.period >= minimize_cycle_time(ex1).period
        assert analyze(ex1, result.schedule, options).feasible

    def test_sweep_respects_options(self):
        from repro.designs import example1

        plain = sweep_delay(example1(), "L4", "L1", grid=[0.0, 120.0])
        margined = sweep_delay(
            example1(),
            "L4",
            "L1",
            grid=[0.0, 120.0],
            options=ConstraintOptions(setup_margin=5.0),
        )
        assert all(
            m >= p for m, p in zip(margined.periods, plain.periods)
        )


class TestVectorLumpingEndToEnd:
    def test_32bit_bus_costs_one_latch(self):
        from repro.circuit.lump import lump_parallel_latches

        b = CircuitBuilder(["phi1", "phi2"])
        for i in range(32):
            b.latch(f"a{i}", phase="phi1", setup=1, delay=2)
            b.latch(f"b{i}", phase="phi2", setup=1, delay=2)
            b.path(f"a{i}", f"b{i}", 7)
            b.path(f"b{i}", f"a{i}", 9)
        wide = b.build()
        reduced, _ = lump_parallel_latches(wide)
        assert reduced.l == 2
        assert minimize_cycle_time(reduced).period == pytest.approx(
            minimize_cycle_time(wide).period
        )
