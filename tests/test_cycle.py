"""The graph-native minimum-Tc backend (:mod:`repro.cycle`).

Three layers of guarantees are pinned down here:

* **Agreement** -- on every bundled paper design and on randomly
  generated feasible circuits, ``backend="cycle"`` reproduces the revised
  simplex optimum to 1e-9 and its decoded schedule passes the P1
  sanitizer.
* **Fallback** -- whenever the cycle route cannot *certify* its answer
  (missing SMO context, or an LP row the graph lowering skipped that the
  decoded point violates), it transparently re-solves with the revised
  simplex and records why.
* **Plumbing** -- registry capabilities, the shared graph/structure
  caches, jobspec cache-key normalization, and serve-layer backend
  validation.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.generate import random_multiloop_circuit, random_pipeline
from repro.core.constraints import build_program
from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.cycle import (
    clear_cycle_cache,
    compile_cycle_graph,
    cycle_cache_stats,
    minimum_feasible_period,
    solve_cycle,
)
from repro.designs import example1, example2, fig1_circuit, gaas_datapath
from repro.engine.jobspec import mlp_signature
from repro.lint import (
    build_constraint_graph,
    clear_graph_cache,
    constraint_graph_for,
    graph_cache_stats,
    sanitize_solution,
    structure_fingerprint,
)
from repro.lp.backends import (
    available_backends,
    solve,
    supports_context,
    supports_warm_start,
)
from repro.serve.protocol import RequestError, mlp_from_request

DESIGNS = [
    ("example1@80", lambda: example1(80.0)),
    ("example2", example2),
    ("fig1", fig1_circuit),
    ("gaas", gaas_datapath),
]


def _tc(graph, backend, **kw):
    mlp = MLPOptions(backend=backend, verify=False, **kw)
    return minimize_cycle_time(graph, mlp=mlp)


class TestPaperDesigns:
    @pytest.mark.parametrize("name,factory", DESIGNS, ids=[d[0] for d in DESIGNS])
    def test_matches_revised_simplex(self, name, factory):
        graph = factory()
        ref = _tc(graph, "revised")
        res = _tc(graph, "cycle")
        scale = max(1.0, abs(ref.period))
        assert res.period == pytest.approx(ref.period, abs=1e-9 * scale)
        info = res.extra["cycle"]
        # The graph route must actually be taken on the paper designs --
        # a silent fallback would still agree but defeat the point.
        assert info["used"] is True
        assert info["jumps"] >= 1
        report = sanitize_solution(graph, res.schedule, res.departures)
        assert report.ok, report.violations

    @pytest.mark.parametrize("name,factory", DESIGNS, ids=[d[0] for d in DESIGNS])
    def test_check_mode_cross_checks_and_sanitizes(self, name, factory):
        res = _tc(factory(), "cycle+check")
        check = res.extra["cycle"]["check"]
        assert check["backend"] == "revised"
        assert abs(check["delta"]) <= 1e-9 * max(1.0, abs(res.period))
        # cycle+check forces the sanitizer even when not requested.
        assert res.extra["sanitize"].ok


class TestRandomCircuits:
    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=14),
        extra=st.integers(min_value=0, max_value=8),
        k=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_cycle_equals_revised(self, n, extra, k, seed):
        graph = random_multiloop_circuit(n, n_extra_arcs=extra, k=k, seed=seed)
        ref = _tc(graph, "revised")
        res = _tc(graph, "cycle", sanitize=True)
        scale = max(1.0, abs(ref.period))
        assert res.period == pytest.approx(ref.period, abs=1e-9 * scale)
        assert res.extra["sanitize"].ok

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=10),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_pipeline_cycle_equals_revised(self, n, seed):
        graph = random_pipeline(n, k=2, seed=seed)
        ref = _tc(graph, "revised")
        res = _tc(graph, "cycle", sanitize=True)
        scale = max(1.0, abs(ref.period))
        assert res.period == pytest.approx(ref.period, abs=1e-9 * scale)
        assert res.extra["sanitize"].ok


class TestFallback:
    def test_skipped_row_forces_lp_fallback(self):
        # A GE row over two departures is not a difference constraint, so
        # the graph lowering skips it; with a large rhs the cycle optimum
        # strictly under-constrains the LP and certification must fail.
        smo = build_program(example2())
        smo.program.add_row(
            "extra_sum", {"D[A1]": 1.0, "D[A2]": 1.0}, ">=", 1.0e5
        )
        res = solve(smo.program, backend="cycle", context=smo)
        info = res.extra["cycle"]
        assert info["used"] is False
        assert "under-constrains" in info["reason"]
        assert info["fallback_backend"] == "revised"
        # The uncertified graph bound is still a valid lower bound.
        ref = solve(smo.program, backend="revised")
        assert res.objective == pytest.approx(ref.objective, abs=1e-9)
        assert info["bound"] <= res.objective + 1e-9

    def test_missing_context_falls_back(self):
        smo = build_program(fig1_circuit())
        res = solve(smo.program, backend="cycle")
        info = res.extra["cycle"]
        assert info["used"] is False
        assert "context" in info["reason"]
        ref = solve(smo.program, backend="revised")
        assert res.objective == pytest.approx(ref.objective, abs=1e-9)

    def test_foreign_program_falls_back(self):
        smo = build_program(fig1_circuit())
        other = build_program(example2())
        res = solve_cycle(smo.program, context=other)
        assert res.extra["cycle"]["used"] is False


class TestCaches:
    def test_structure_reused_across_rebuilds(self):
        clear_graph_cache()
        clear_cycle_cache()
        smo1 = build_program(example2())
        cg1 = constraint_graph_for(smo1)
        compile_cycle_graph(cg1, key=structure_fingerprint(smo1))
        assert graph_cache_stats()["misses"] == 1
        assert cycle_cache_stats()["misses"] == 1
        # A structurally identical program (same circuit, fresh build)
        # hits both the skeleton and the CSR structure caches.
        smo2 = build_program(example2())
        cg2 = constraint_graph_for(smo2)
        compile_cycle_graph(cg2, key=structure_fingerprint(smo2))
        assert graph_cache_stats()["hits"] >= 1
        assert cycle_cache_stats()["hits"] >= 1

    def test_instance_memo_returns_same_graph(self):
        smo = build_program(fig1_circuit())
        assert constraint_graph_for(smo) is constraint_graph_for(smo)

    def test_cached_graph_matches_direct_build(self):
        smo = build_program(gaas_datapath())
        direct = build_constraint_graph(smo)
        cached = constraint_graph_for(smo)
        assert direct.nodes == cached.nodes
        assert [
            (e.tail, e.head, e.a, e.b, e.constraint) for e in direct.edges
        ] == [(e.tail, e.head, e.a, e.b, e.constraint) for e in cached.edges]
        assert direct.tc_lower == cached.tc_lower
        assert direct.tc_upper == cached.tc_upper
        assert direct.skipped == cached.skipped

    def test_solver_reports_jump_budget(self):
        smo = build_program(example2())
        comp = compile_cycle_graph(constraint_graph_for(smo))
        period = minimum_feasible_period(comp)
        assert period.status == "optimal"
        assert period.jumps >= 1
        assert period.bf_rounds >= 1


class TestPlumbing:
    def test_registry_capabilities(self):
        backends = available_backends()
        assert "cycle" in backends
        assert "cycle+check" in backends
        assert supports_context("cycle")
        assert supports_context("cycle+check")
        assert not supports_context("revised")
        # A supplied basis warm-starts the cycle backends' LP fallback.
        assert supports_warm_start("cycle")

    def test_jobspec_normalizes_check_variant(self):
        plain = mlp_signature(MLPOptions(backend="cycle"))
        checked = mlp_signature(MLPOptions(backend="cycle+check"))
        assert plain == checked
        assert checked["backend"] == "cycle"

    def test_protocol_rejects_unknown_backend(self):
        with pytest.raises(RequestError, match="unknown LP backend"):
            mlp_from_request({"backend": "cplex"})
        mlp = mlp_from_request({"backend": "cycle+check"})
        assert mlp.backend == "cycle+check"
