"""Tests for the repro.lint subsystem (see docs/LINT.md).

Covers the difference-constraint graph construction, Bellman-Ford
infeasibility certificates, the Karp/Lawler Tc lower bound (checked
against the LP optimum), the rule registry, the ``check_structure``
compatibility shim and the ``repro lint`` CLI.
"""

from __future__ import annotations

import glob
import json

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.validate import check_structure
from repro.cli import main
from repro.core.constraints import ConstraintOptions
from repro.core.mlp import minimize_cycle_time
from repro.lang.parser import parse_file
from repro.lint import (
    LintRule,
    Severity,
    build_constraint_graph,
    diagnose,
    find_negative_cycle,
    get_rule,
    registered_rules,
    run_lint,
    run_rules,
    tc_lower_bound,
)
from repro.lint.rules import rule


class TestConstraintGraph:
    def test_example1_encoding_is_complete(self, ex1):
        from repro.core.constraints import build_program

        smo = build_program(ex1, ConstraintOptions())
        cg = build_constraint_graph(smo)
        assert not cg.skipped, "every SMO row should lower to an edge"
        assert not cg.contradictions
        assert "origin" in cg.nodes
        assert any(n.startswith("start[") for n in cg.nodes)
        assert any(n.startswith("dep[") for n in cg.nodes)
        assert cg.tc_floor >= 0.0

    def test_feasibility_threshold_matches_lp(self, ex1):
        """No negative cycle at the optimum; a negative cycle below it."""
        from repro.core.constraints import build_program

        smo = build_program(ex1, ConstraintOptions())
        cg = build_constraint_graph(smo)
        optimum = minimize_cycle_time(ex1).period
        assert find_negative_cycle(cg, optimum) is None
        cycle = find_negative_cycle(cg, optimum - 1.0)
        assert cycle, "below the optimum the graph must have a negative cycle"

    @pytest.mark.parametrize("fixture", ["ex1", "ex2", "gaas", "fig1"])
    def test_karp_bound_equals_lp_optimum(self, fixture, request):
        """On the paper designs the bound is exact: it equals the LP Tc."""
        from repro.core.constraints import build_program

        graph = request.getfixturevalue(fixture)
        smo = build_program(graph, ConstraintOptions())
        cg = build_constraint_graph(smo)
        bound = tc_lower_bound(cg)
        assert bound.exact
        optimum = minimize_cycle_time(graph).period
        assert bound.value == pytest.approx(optimum, abs=1e-9)
        assert bound.cycle, "the critical cycle must be reported"

    def test_karp_bound_never_exceeds_lp_on_examples(self):
        """For every shipped .lcd the bound is a true lower bound."""
        from repro.core.constraints import build_program

        for path in sorted(glob.glob("examples/*.lcd")):
            graph = parse_file(path).to_graph()
            smo = build_program(graph, ConstraintOptions())
            bound = tc_lower_bound(build_constraint_graph(smo))
            optimum = minimize_cycle_time(graph).period
            assert bound.value <= optimum + 1e-9, path


class TestDiagnose:
    def test_period_certificate_names_constraints(self, ex1):
        diagnostics = diagnose(ex1, ConstraintOptions(max_period=50.0))
        certificate = diagnostics.certificate
        assert certificate is not None
        assert certificate.kind == "period"
        assert certificate.constraints
        families = {c.split("[", 1)[0] for c in certificate.constraints}
        assert families & {"C1", "C2", "C3", "L1", "L2R", "L3"}
        assert certificate.required_tc is not None
        assert certificate.required_tc > 50.0
        assert "XP[Tc]" in (certificate.pinned_by or "")

    def test_feasible_cap_has_no_certificate(self, ex1):
        diagnostics = diagnose(ex1, ConstraintOptions(max_period=200.0))
        assert diagnostics.certificate is None
        assert diagnostics.feasible

    def test_certificate_round_trips_to_dict(self, ex1):
        diagnostics = diagnose(ex1, ConstraintOptions(max_period=50.0))
        data = diagnostics.to_dict()
        assert data["certificate"]["kind"] == "period"
        assert data["tc_lower_bound"]["value"] == pytest.approx(110.0)


class TestRuleRegistry:
    def test_known_rules_are_registered(self):
        codes = {r.code for r in registered_rules()}
        assert {"LINT101", "LINT103", "LINT111", "LINT112",
                "LINT201", "LINT202", "LINT210"} <= codes

    def test_get_rule_and_metadata(self):
        r = get_rule("LINT103")
        assert isinstance(r, LintRule)
        assert r.severity is Severity.ERROR
        assert r.legacy

    def test_duplicate_code_rejected(self):
        with pytest.raises(ValueError):
            @rule("LINT101", Severity.INFO, "duplicate")
            def _dup(graph, schedule, options):  # pragma: no cover
                return []

    def test_run_rules_flags_bad_latch(self):
        b = CircuitBuilder(phases=["phi1", "phi2"])
        # setup > delay violates the paper's Delta_DQ >= Delta_DC assumption.
        b.latch("L1", phase="phi1", setup=5, delay=3)
        b.latch("L2", phase="phi2", setup=1, delay=3)
        b.path("L1", "L2", 5)
        b.path("L2", "L1", 5)
        report = run_rules(b.build(), None)
        assert any(f.code == "LINT103" for f in report.findings)


class TestCheckStructureCompat:
    def test_clean_circuit(self, ex1):
        report = check_structure(ex1)
        assert report.ok
        assert not report.errors

    def test_warning_for_unclocked_phase(self):
        b = CircuitBuilder(phases=["phi1", "phi2", "phi3"])
        b.latch("L1", phase="phi1", setup=1, delay=1)
        b.latch("L2", phase="phi2", setup=1, delay=1)
        b.path("L1", "L2", 5)
        b.path("L2", "L1", 5)
        graph = b.build()
        report = check_structure(graph)
        assert report.ok
        assert any("phi3" in w for w in report.warnings)


class TestRunLint:
    def test_clean_design_is_ok(self, ex1):
        report = run_lint(ex1, source="ex1")
        assert report.ok
        assert any(f.code == "LINT310" for f in report.findings)
        assert report.diagnostics is not None

    def test_infeasible_cap_is_error(self, ex1):
        report = run_lint(ex1, options=ConstraintOptions(max_period=50.0))
        assert not report.ok
        assert any(f.code == "LINT302" for f in report.findings)

    def test_no_graph_diagnostics(self, ex1):
        report = run_lint(ex1, graph_diagnostics=False)
        assert report.diagnostics is None
        assert not any(f.code == "LINT310" for f in report.findings)


class TestLintCLI:
    def test_infeasible_fixture_reports_certificate(self, capsys):
        rc = main(["lint", "examples/infeasible_demo.lcd"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "LINT302" in out
        assert "requires Tc >=" in out

    def test_designs_manifest_is_clean(self, capsys):
        assert main(["lint", "examples/designs.txt"]) == 0
        out = capsys.readouterr().out
        assert "Tc lower bound" in out

    def test_json_output(self, capsys):
        rc = main(["lint", "examples/infeasible_demo.lcd",
                   "--format", "json"])
        assert rc == 1
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is False
        assert any(f["code"] == "LINT302" for f in data["findings"])
        assert data["diagnostics"]["certificate"]["kind"] == "period"

    def test_missing_file_exits_2(self, capsys):
        assert main(["lint", "examples/does_not_exist.lcd"]) == 2

    def test_minimize_preflight_certificate(self, tmp_path, capsys):
        from repro.designs import example1
        from repro.lang.writer import write_circuit

        path = tmp_path / "ex1.lcd"
        path.write_text(write_circuit(example1(80.0)))
        rc = main(["minimize", str(path), "--max-period", "50"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "lint" in err and "requires Tc >=" in err

    def test_minimize_no_lint_escape_hatch(self, tmp_path, capsys):
        from repro.designs import example1
        from repro.lang.writer import write_circuit

        path = tmp_path / "ex1.lcd"
        path.write_text(write_circuit(example1(80.0)))
        # With lint disabled, the LP itself reports the infeasibility.
        rc = main(["minimize", str(path), "--max-period", "50", "--no-lint"])
        assert rc != 0
        err = capsys.readouterr().err
        assert "lint" not in err
