"""Tests for the persistent content-addressed result store (repro.serve.store)."""

import json
import multiprocessing
import sqlite3

import pytest

from repro.cli import main
from repro.core.mlp import minimize_cycle_time
from repro.designs import example1
from repro.engine import Engine, MinimizeJob
from repro.engine.jobspec import JobResult, job_key
from repro.lang.writer import write_circuit
from repro.serve.store import (
    ResultStore,
    StoreBackedCache,
    StoreVersionError,
    open_cache,
)


def _result(key: str, value: float = 1.0, ok: bool = True) -> JobResult:
    return JobResult(
        key=key,
        kind="fault",
        ok=ok,
        value=value,
        payload={"value": value},
        metrics={"wall_seconds": 0.0},
        label=f"r{value:g}",
    )


class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.sqlite"))
        store.put("k1", _result("k1", 42.0))
        hit = store.get("k1")
        assert hit is not None
        assert hit.value == 42.0
        assert hit.cached is True
        assert hit.payload == {"value": 42.0}
        assert "k1" in store
        assert len(store) == 1
        store.close()

    def test_failed_results_not_stored(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.sqlite"))
        store.put("bad", _result("bad", ok=False))
        assert store.get("bad") is None
        assert len(store) == 0
        store.close()

    def test_persistence_across_reopen(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        with ResultStore(path) as store:
            store.put("k1", _result("k1", 7.0))
        with ResultStore(path) as store:
            hit = store.get("k1")
            assert hit is not None and hit.value == 7.0
            assert store.stats.hits == 1

    def test_version_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        with ResultStore(path) as store:
            store.put("k1", _result("k1"))
        # A store written under different job-key semantics must refuse to
        # open: its keys hash different job contents.
        with pytest.raises(StoreVersionError):
            ResultStore(path, signature_version=999)
        # The original version still opens and still has the row.
        with ResultStore(path) as store:
            assert store.get("k1") is not None

    def test_corrupted_row_dropped_and_recomputable(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        store = ResultStore(path)
        store.put("k1", _result("k1", 5.0))
        store.put("k2", _result("k2", 6.0))
        store.close()
        # Corrupt one row's JSON behind the store's back.
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE results SET payload = '{not json' WHERE key = 'k1'"
        )
        conn.commit()
        conn.close()
        store = ResultStore(path)
        assert store.get("k1") is None  # dropped, not crashed
        assert store.stats.corrupt_dropped == 1
        assert store.get("k2") is not None  # neighbors unaffected
        assert len(store) == 1  # the bad row is deleted outright
        store.put("k1", _result("k1", 5.0))  # content addressing: re-put is safe
        assert store.get("k1").value == 5.0
        store.close()


def _writer_proc(path: str, start: int, count: int) -> None:
    with ResultStore(path) as store:
        for i in range(start, start + count):
            store.put(f"key{i:03d}", _result(f"key{i:03d}", float(i)))


class TestConcurrentAccess:
    def test_two_processes_write_same_store(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        ResultStore(path).close()  # create schema first (no init race)
        ctx = multiprocessing.get_context()
        procs = [
            ctx.Process(target=_writer_proc, args=(path, 0, 25)),
            ctx.Process(target=_writer_proc, args=(path, 25, 25)),
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=30)
            assert p.exitcode == 0
        with ResultStore(path) as store:
            assert len(store) == 50
            for i in range(50):
                hit = store.get(f"key{i:03d}")
                assert hit is not None and hit.value == float(i)

    def test_two_processes_same_key(self, tmp_path):
        """Identical keys hold identical content, so last-write-wins is safe."""
        path = str(tmp_path / "s.sqlite")
        ResultStore(path).close()
        ctx = multiprocessing.get_context()
        procs = [
            ctx.Process(target=_writer_proc, args=(path, 0, 10)),
            ctx.Process(target=_writer_proc, args=(path, 0, 10)),
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=30)
            assert p.exitcode == 0
        with ResultStore(path) as store:
            assert len(store) == 10
            for i in range(10):
                assert store.get(f"key{i:03d}").value == float(i)


class TestStoreBackedCache:
    def test_memory_layer_promotion(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.sqlite"))
        cache = StoreBackedCache(store)
        cache.put("k1", _result("k1", 3.0))
        # Fresh cache over the same store: first get promotes from disk,
        # second is a pure memory hit.
        cache2 = StoreBackedCache(store)
        assert cache2.get("k1").value == 3.0
        assert store.stats.hits == 1
        assert cache2.get("k1").value == 3.0
        assert store.stats.hits == 1  # memory layer answered
        assert cache2.stats.hits == 2
        store.close()

    def test_open_cache_dispatch(self, tmp_path):
        sq = open_cache(str(tmp_path / "a.sqlite"))
        assert isinstance(sq, StoreBackedCache)
        sq.store.close()
        js = open_cache(str(tmp_path / "a.json"))
        assert not isinstance(js, StoreBackedCache)
        assert open_cache(None) is not None

    def test_engine_restart_serves_from_store(self, tmp_path):
        path = str(tmp_path / "engine.sqlite")
        job = MinimizeJob(graph=example1())
        with Engine(jobs=1, cache=open_cache(path)) as engine:
            first = engine.run_jobs([job])[0]
            assert first.ok and not first.cached
            assert engine.report.lp_solves > 0
            engine.cache.store.close()
        # Restarted engine: the result comes off disk, zero LP work.
        with Engine(jobs=1, cache=open_cache(path)) as engine:
            again = engine.run_jobs([job])[0]
            assert again.cached
            assert again.value == first.value
            assert again.key == job_key(job)
            report = engine.report
            assert report.lp_solves == 0
            assert report.store_hits == 1
            engine.cache.store.close()


class TestBatchCliSqliteCache:
    @pytest.fixture
    def ex1_file(self, tmp_path):
        path = tmp_path / "ex1.lcd"
        path.write_text(write_circuit(example1(80.0)))
        return str(path)

    def test_batch_sqlite_cache_round_trip(self, ex1_file, tmp_path, capsys):
        cache = str(tmp_path / "batch.sqlite")
        assert main(["batch", ex1_file, "--cache", cache]) == 0
        out1 = capsys.readouterr().out
        assert "store: 0 hits, 1 writes" in out1
        assert main(["batch", ex1_file, "--cache", cache]) == 0
        out2 = capsys.readouterr().out
        assert "(cached)" in out2
        assert "store: 1 hits, 0 writes" in out2
        assert "lp: 0 solves" in out2
        # The sqlite store is also readable by the serve layer directly.
        with ResultStore(cache) as store:
            assert len(store) == 1

    def test_batch_json_cache_still_works(self, ex1_file, tmp_path, capsys):
        cache = str(tmp_path / "batch.json")
        assert main(["batch", ex1_file, "--cache", cache]) == 0
        capsys.readouterr()
        data = json.loads((tmp_path / "batch.json").read_text())
        assert data["entries"]
        assert main(["batch", ex1_file, "--cache", cache]) == 0
        assert "(cached)" in capsys.readouterr().out


class TestOptimalScheduleSanity:
    def test_example1_schedule_matches_fixture(self):
        """Guards examples/loadgen_mix.json: the analyze entry hardcodes
        the optimal example1 clock; if the optimum moves, the fixture must
        move with it."""
        result = minimize_cycle_time(example1())
        assert result.period == pytest.approx(110.0)
