"""Regression tests for example 2 (Figs. 8/9) and the Appendix circuit (Fig. 1)."""

import pytest

from repro.baselines.nrip import nrip_minimize
from repro.core.analysis import analyze
from repro.core.constraints import build_program
from repro.core.mlp import minimize_cycle_time
from repro.designs.example2 import (
    EXAMPLE2_NRIP_PERIOD,
    EXAMPLE2_OPTIMAL_PERIOD,
    example2,
)
from repro.designs.fig1 import ARCS, LATCH_PHASES, fig1_circuit, fig1_k_matrix


class TestExample2:
    """Fig. 9: NRIP is 35% above the MLP optimum."""

    def test_optimal_period(self, ex2):
        assert minimize_cycle_time(ex2).period == pytest.approx(
            EXAMPLE2_OPTIMAL_PERIOD
        )

    def test_nrip_period(self, ex2):
        assert nrip_minimize(ex2).period == pytest.approx(EXAMPLE2_NRIP_PERIOD)

    def test_published_35_percent_gap(self, ex2):
        mlp = minimize_cycle_time(ex2).period
        nrip = nrip_minimize(ex2).period
        assert nrip / mlp == pytest.approx(1.35)

    def test_more_complicated_than_example1(self, ex2):
        # "more complicated": multiple coupled loops, four phases.
        assert ex2.k == 4
        assert len(ex2.feedback_loops()) > 2

    def test_both_schedules_verify(self, ex2):
        assert analyze(ex2, minimize_cycle_time(ex2).schedule).feasible
        assert analyze(ex2, nrip_minimize(ex2).schedule).feasible


class TestFig1Appendix:
    """The Appendix lists the complete constraint set of the Fig. 1 circuit."""

    def test_eleven_latches_four_phases(self, fig1):
        assert fig1.l == 11
        assert fig1.k == 4

    def test_phase_assignment(self, fig1):
        groups = {
            "phi1": {1, 2, 8},
            "phi2": {6, 7, 11},
            "phi3": {4, 5, 10},
            "phi4": {3, 9},
        }
        for phase, members in groups.items():
            for idx in members:
                assert fig1[f"L{idx}"].phase == phase

    def test_k_matrix_matches_paper(self, fig1):
        assert fig1.k_matrix() == fig1_k_matrix()

    def test_nine_io_phase_pairs(self, fig1):
        # The Appendix derives nine phase-shift operators, one per pair.
        assert len(fig1.io_phase_pairs()) == 9

    def test_nine_distinct_shift_operators_used(self, fig1):
        pairs = {
            (fig1[a.src].phase, fig1[a.dst].phase) for a in fig1.arcs
        }
        assert len(pairs) == 9

    def test_latch1_has_no_fanin(self, fig1):
        assert fig1.fanin("L1") == ()

    def test_setup_constraint_grouping(self, fig1):
        # Appendix setup listing: D_i + DC_i <= T1 for i in {1,2,8}, etc.
        smo = build_program(fig1)
        t_of = {
            "L1[L1]": "T[phi1]", "L1[L2]": "T[phi1]", "L1[L8]": "T[phi1]",
            "L1[L6]": "T[phi2]", "L1[L7]": "T[phi2]", "L1[L11]": "T[phi2]",
            "L1[L4]": "T[phi3]", "L1[L5]": "T[phi3]", "L1[L10]": "T[phi3]",
            "L1[L3]": "T[phi4]", "L1[L9]": "T[phi4]",
        }
        for name, t_var_name in t_of.items():
            con = smo.program.constraint(name)
            assert con.lhs.terms.get(t_var_name) == -1.0

    def test_propagation_fanins_match_listing(self, fig1):
        fanins = {
            2: {4, 5}, 3: {8}, 4: {1, 2}, 5: {6, 7}, 6: {4, 5},
            7: {9, 10}, 8: {6, 7}, 9: {6, 7}, 10: {3, 11}, 11: {9, 10},
        }
        for dst, srcs in fanins.items():
            got = {int(a.src[1:]) for a in fig1.fanin(f"L{dst}")}
            assert got == srcs, dst

    def test_solvable_and_verified(self, fig1):
        result = minimize_cycle_time(fig1)
        assert result.period > 0
        assert analyze(fig1, result.schedule).feasible

    def test_delay_overrides(self):
        g = fig1_circuit(delays={(4, 2): 99.0})
        assert g.arc("L4", "L2").delay == 99.0

    def test_unknown_delay_override_rejected(self):
        with pytest.raises(ValueError):
            fig1_circuit(delays={(1, 2): 5.0})

    def test_arc_count(self):
        assert len(ARCS) == 19
        assert len(LATCH_PHASES) == 11
