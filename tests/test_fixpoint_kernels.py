"""Agreement tests between the dict and compiled-array fixpoint kernels.

The contract under test (see :mod:`repro.maxplus.compiled`):

* Jacobi and Gauss-Seidel array kernels are *bit-identical* to the dict
  kernels -- same values, same iteration counts, same convergence flags,
  same residuals -- on any system, including randomized circuits.
* The event array kernel agrees on values to within the update tolerance
  (its round-based frontier visits nodes in a different order, so
  ``iterations`` may differ).
* Divergence (positive-weight cycle) is detected by every kernel/method
  combination.
* The structure cache shares index arrays across systems that differ only
  in weights, and the per-instance memo compiles each system once.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.generate import random_multiloop_circuit, random_pipeline
from repro.clocking.phase import ClockPhase
from repro.clocking.schedule import ClockSchedule
from repro.core.constraints import build_maxplus_system
from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.errors import AnalysisError, DivergentTimingError
from repro.maxplus import compiled
from repro.maxplus.cycles import find_positive_cycle
from repro.maxplus.fixpoint import least_fixpoint, slide
from repro.maxplus.system import MaxPlusSystem, WeightedArc

EXACT_METHODS = ("jacobi", "gauss-seidel")
ALL_METHODS = ("jacobi", "gauss-seidel", "event")


@st.composite
def random_system(draw):
    n = draw(st.integers(2, 7))
    nodes = [f"n{i}" for i in range(n)]
    arcs = []
    for _ in range(draw(st.integers(1, 12))):
        a = draw(st.sampled_from(nodes))
        b = draw(st.sampled_from(nodes))
        w = draw(st.integers(-20, 6))
        arcs.append(WeightedArc(a, b, float(w)))
    floors = {
        node: float(draw(st.integers(0, 8)))
        for node in nodes
        if draw(st.booleans())
    }
    frozen = {nodes[0]} if draw(st.booleans()) else set()
    return MaxPlusSystem(nodes=nodes, arcs=arcs, floors=floors, frozen=frozen)


def circuit_system(n=24, seed=0):
    graph = random_multiloop_circuit(n, n_extra_arcs=n // 2, seed=seed)
    period = 4000.0
    half = period / 2
    schedule = ClockSchedule(
        period,
        [
            ClockPhase("phi1", 0.0, half - 10.0),
            ClockPhase("phi2", half, half - 10.0),
        ],
    )
    return build_maxplus_system(graph, schedule)


def assert_identical(a, b):
    """Full FixpointResult equality, values compared bit for bit."""
    assert a.values == b.values
    assert a.iterations == b.iterations
    assert a.method == b.method
    assert a.converged == b.converged
    assert a.residual == b.residual


class TestLeastFixpointAgreement:
    @settings(max_examples=80, deadline=None)
    @given(random_system())
    def test_exact_methods_bit_identical(self, system):
        for method in EXACT_METHODS:
            try:
                ref = least_fixpoint(system, method=method, kernel="dict")
            except DivergentTimingError:
                with pytest.raises(DivergentTimingError):
                    least_fixpoint(system, method=method, kernel="array")
                continue
            out = least_fixpoint(system, method=method, kernel="array")
            assert_identical(out, ref)

    @settings(max_examples=60, deadline=None)
    @given(random_system())
    def test_event_values_agree(self, system):
        try:
            ref = least_fixpoint(system, method="event", kernel="dict")
        except DivergentTimingError:
            with pytest.raises(DivergentTimingError):
                least_fixpoint(system, method="event", kernel="array")
            return
        out = least_fixpoint(system, method="event", kernel="array")
        assert out.values == pytest.approx(ref.values, abs=1e-9)
        assert out.converged and ref.converged

    @settings(max_examples=40, deadline=None)
    @given(random_system())
    def test_divergence_detected_by_every_kernel(self, system):
        if find_positive_cycle(system) is None:
            return
        for method in ALL_METHODS:
            for kernel in ("dict", "array"):
                with pytest.raises(DivergentTimingError):
                    least_fixpoint(system, method=method, kernel=kernel)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("method", EXACT_METHODS)
    def test_generated_circuits_bit_identical(self, method, seed):
        system = circuit_system(seed=seed)
        ref = least_fixpoint(system, method=method, kernel="dict")
        out = least_fixpoint(system, method=method, kernel="array")
        assert_identical(out, ref)

    def test_pipeline_circuit(self):
        graph = random_pipeline(10, seed=4)
        schedule = ClockSchedule(
            2000.0, [ClockPhase("phi1", 0.0, 900.0), ClockPhase("phi2", 1000.0, 900.0)]
        )
        system = build_maxplus_system(graph, schedule)
        for method in EXACT_METHODS:
            assert_identical(
                least_fixpoint(system, method=method, kernel="array"),
                least_fixpoint(system, method=method, kernel="dict"),
            )


class TestSlideAgreement:
    @settings(max_examples=60, deadline=None)
    @given(random_system(), st.integers(0, 50))
    def test_exact_methods_bit_identical(self, system, bump):
        if find_positive_cycle(system) is not None:
            return
        base = least_fixpoint(system).values
        start = {k: v + bump for k, v in base.items()}
        for method in EXACT_METHODS:
            ref = slide(system, start, method=method, kernel="dict")
            out = slide(system, start, method=method, kernel="array")
            if ref.method.endswith("+least-fixpoint"):
                # Sweep-cap fallback: both kernels return the exact least
                # fixpoint via their event worklist, whose update count is
                # order-dependent -- compare everything but iterations.
                assert out.method == ref.method
                assert out.values == pytest.approx(ref.values, abs=1e-9)
                assert out.converged and ref.converged
                assert out.residual == ref.residual == 0.0
            else:
                assert_identical(out, ref)

    @settings(max_examples=40, deadline=None)
    @given(random_system(), st.integers(0, 50))
    def test_event_values_agree(self, system, bump):
        if find_positive_cycle(system) is not None:
            return
        base = least_fixpoint(system).values
        start = {k: v + bump for k, v in base.items()}
        ref = slide(system, start, method="event", kernel="dict")
        out = slide(system, start, method="event", kernel="array")
        assert out.values == pytest.approx(ref.values, abs=1e-9)

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_sweep_cap_falls_back_like_dict(self, method):
        # Geometric slide: decreases by 0.5 per sweep, hits the cap, and
        # both kernels return the exact least fixpoint instead.
        system = MaxPlusSystem(
            nodes=["a", "b"],
            arcs=[WeightedArc("a", "b", 10.0), WeightedArc("b", "a", -10.5)],
        )
        start = {"a": 1000.0, "b": 1010.0}
        ref = slide(system, start, method=method, max_sweeps=5, kernel="dict")
        out = slide(system, start, method=method, max_sweeps=5, kernel="array")
        assert out.method == ref.method == f"{method}+least-fixpoint"
        assert out.values == pytest.approx(ref.values, abs=1e-9)
        assert out.converged and ref.converged

    def test_frozen_nodes_pinned(self):
        system = MaxPlusSystem(
            nodes=["ff", "l"],
            arcs=[WeightedArc("ff", "l", 1.0)],
            floors={"ff": 4.0},
            frozen={"ff"},
        )
        out = slide(system, {"ff": 99.0, "l": 99.0}, kernel="array")
        assert out.values["ff"] == 4.0
        assert out.values["l"] == 5.0


class TestKernelDispatch:
    def test_unknown_kernel_rejected(self):
        system = circuit_system(n=4)
        with pytest.raises(AnalysisError):
            least_fixpoint(system, kernel="voodoo")
        with pytest.raises(AnalysisError):
            slide(system, {n: 0.0 for n in system.nodes}, kernel="voodoo")

    def test_auto_small_system_stays_dict_identical(self):
        system = circuit_system(n=8)
        for method in ALL_METHODS:
            assert_identical(
                least_fixpoint(system, method=method, kernel="auto"),
                least_fixpoint(system, method=method, kernel="dict"),
            )

    def test_auto_large_system_identical(self):
        system = circuit_system(n=compiled.AUTO_ARRAY_MIN_NODES + 8)
        for method in ALL_METHODS:
            assert_identical(
                least_fixpoint(system, method=method, kernel="auto"),
                least_fixpoint(system, method=method, kernel="dict"),
            )

    def test_minimize_cycle_time_kernel_invariant(self):
        graph = random_multiloop_circuit(72, n_extra_arcs=36, seed=7)
        results = {
            kernel: minimize_cycle_time(graph, mlp=MLPOptions(kernel=kernel))
            for kernel in ("dict", "array", "auto")
        }
        ref = results["dict"]
        for result in results.values():
            assert result.period == pytest.approx(ref.period, abs=1e-9)
            assert result.schedule.period == ref.schedule.period
            for node, value in ref.departures.items():
                assert result.departures[node] == pytest.approx(value, abs=1e-9)


class TestEngineKernelHint:
    def test_kernel_never_splits_the_job_cache(self):
        from repro.engine.jobspec import MinimizeJob, job_key, mlp_signature

        graph = random_multiloop_circuit(8, seed=1)
        base = job_key(MinimizeJob(graph=graph))
        for kernel in ("dict", "array", "auto"):
            assert job_key(MinimizeJob(graph=graph, kernel=kernel)) == base
        # MLPOptions.kernel is likewise excluded from the signature.
        assert mlp_signature(MLPOptions(kernel="array")) == mlp_signature(
            MLPOptions(kernel="dict")
        )

    def test_engine_applies_kernel_hint(self):
        from repro.engine.execute import execute_job
        from repro.engine.jobspec import MinimizeJob

        graph = random_multiloop_circuit(8, seed=1)
        ref = execute_job(MinimizeJob(graph=graph, kernel="dict"))
        out = execute_job(MinimizeJob(graph=graph, kernel="array"))
        assert out.ok and ref.ok
        assert out.key == ref.key
        assert out.value == pytest.approx(ref.value, abs=1e-9)
        assert out.payload["departures"] == pytest.approx(
            ref.payload["departures"], abs=1e-9
        )


class TestStructureCache:
    def test_weight_change_hits_structure_cache(self):
        compiled.clear_cache()
        graph = random_multiloop_circuit(16, n_extra_arcs=8, seed=3)
        sched = ClockSchedule(
            4000.0,
            [ClockPhase("phi1", 0.0, 1900.0), ClockPhase("phi2", 2000.0, 1900.0)],
        )
        sched2 = ClockSchedule(
            4400.0,
            [ClockPhase("phi1", 0.0, 2100.0), ClockPhase("phi2", 2200.0, 2100.0)],
        )
        a = build_maxplus_system(graph, sched)
        b = build_maxplus_system(graph, sched2)
        assert a.structure_key == b.structure_key
        compiled.compile_system(a)
        stats = compiled.cache_stats()
        assert stats == {"structure_hits": 0, "structure_misses": 1, "compiles": 1}
        cb = compiled.compile_system(b)
        stats = compiled.cache_stats()
        assert stats == {"structure_hits": 1, "structure_misses": 1, "compiles": 2}
        # Shared structure object, distinct weight vectors.
        assert cb.structure is compiled.compile_system(a).structure
        assert least_fixpoint(a, kernel="array").values == pytest.approx(
            least_fixpoint(a).values, abs=1e-9
        )

    def test_instance_memo_compiles_once(self):
        compiled.clear_cache()
        system = circuit_system(n=8)
        first = compiled.compile_system(system)
        assert compiled.compile_system(system) is first
        assert compiled.cache_stats()["compiles"] == 1

    def test_structure_key_sensitivity(self):
        base = MaxPlusSystem(
            nodes=["a", "b"], arcs=[WeightedArc("a", "b", 1.0)]
        )
        same_weights_differ = MaxPlusSystem(
            nodes=["a", "b"], arcs=[WeightedArc("a", "b", 2.0)]
        )
        different_arcs = MaxPlusSystem(
            nodes=["a", "b"], arcs=[WeightedArc("b", "a", 1.0)]
        )
        different_frozen = MaxPlusSystem(
            nodes=["a", "b"],
            arcs=[WeightedArc("a", "b", 1.0)],
            floors={"a": 0.0},
            frozen={"a"},
        )
        assert base.structure_key == same_weights_differ.structure_key
        assert base.structure_key != different_arcs.structure_key
        assert base.structure_key != different_frozen.structure_key


class TestSystemIndex:
    def test_node_index_matches_order(self):
        system = circuit_system(n=6)
        assert list(system.node_index) == list(system.nodes)
        assert list(system.node_index.values()) == list(range(len(system.nodes)))

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(AnalysisError):
            MaxPlusSystem(nodes=["a", "a"], arcs=[])

    def test_unknown_arc_floor_frozen_rejected(self):
        with pytest.raises(AnalysisError):
            MaxPlusSystem(nodes=["a"], arcs=[WeightedArc("a", "zzz", 1.0)])
        with pytest.raises(AnalysisError):
            MaxPlusSystem(nodes=["a"], arcs=[], floors={"b": 1.0})
        with pytest.raises(AnalysisError):
            MaxPlusSystem(nodes=["a"], arcs=[], frozen={"b"})
