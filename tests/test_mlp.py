"""Unit and property tests for Algorithm MLP (Section IV)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.generate import random_multiloop_circuit
from repro.core.analysis import analyze
from repro.core.constraints import ConstraintOptions, build_maxplus_system
from repro.core.mlp import MLPOptions, minimize_cycle_time
from repro.designs import example1
from repro.errors import AnalysisError, InfeasibleError
from repro.lp.backends import available_backends
from repro.sim import simulate


class TestBasics:
    def test_optimal_period(self, ex1):
        assert minimize_cycle_time(ex1).period == pytest.approx(110.0)

    def test_result_is_verified_by_default(self, ex1):
        result = minimize_cycle_time(ex1)
        assert result.report is not None
        assert result.feasible

    def test_verify_can_be_disabled(self, ex1):
        result = minimize_cycle_time(ex1, mlp=MLPOptions(verify=False))
        assert result.report is None
        assert result.feasible  # vacuously true

    def test_schedule_satisfies_clock_constraints(self, ex1):
        result = minimize_cycle_time(ex1)
        result.schedule.validate(k_matrix=ex1.k_matrix(), tol=1e-6)

    def test_infeasible_options_raise(self, ex1):
        # Demanding Tc = 50 when the optimum is 110 is contradictory.
        with pytest.raises(InfeasibleError):
            minimize_cycle_time(ex1, ConstraintOptions(fixed_period=50.0))

    def test_max_period_feasible(self, ex1):
        result = minimize_cycle_time(ex1, ConstraintOptions(max_period=120.0))
        assert result.period == pytest.approx(110.0)

    def test_min_width_increases_period_when_binding(self, ex1):
        base = minimize_cycle_time(ex1).period
        wide = minimize_cycle_time(ex1, ConstraintOptions(min_width=60.0)).period
        assert wide >= base

    def test_unknown_iteration_method(self, ex1):
        with pytest.raises(AnalysisError):
            minimize_cycle_time(ex1, mlp=MLPOptions(iteration="bogus"))


class TestTheorem1:
    """The slide step never changes the optimal cycle time, and the slid
    departures satisfy the original nonlinear constraints L2 exactly."""

    @pytest.mark.parametrize("d41", [0.0, 40.0, 80.0, 120.0])
    def test_slid_departures_are_a_fixpoint(self, d41):
        g = example1(d41)
        result = minimize_cycle_time(g)
        system = build_maxplus_system(g, result.schedule)
        assert system.residual(result.departures) <= 1e-6

    @pytest.mark.parametrize("d41", [0.0, 40.0, 80.0, 120.0])
    def test_slide_never_increases_departures(self, d41):
        result = minimize_cycle_time(example1(d41))
        for name, after in result.departures.items():
            assert after <= result.lp_departures[name] + 1e-9

    def test_lp_point_is_pre_fixed(self, ex1):
        result = minimize_cycle_time(ex1)
        system = build_maxplus_system(ex1, result.schedule)
        assert system.is_prefixed_point(result.lp_departures, tol=1e-6)

    def test_setup_still_met_after_slide(self, ex1):
        result = minimize_cycle_time(ex1)
        for sync in ex1.latches:
            width = result.schedule[sync.phase].width
            assert result.departures[sync.name] + sync.setup <= width + 1e-6


class TestIterationVariants:
    @pytest.mark.parametrize("method", ["jacobi", "gauss-seidel", "event"])
    def test_all_methods_agree(self, ex1, method):
        ref = minimize_cycle_time(ex1, mlp=MLPOptions(iteration="jacobi"))
        out = minimize_cycle_time(ex1, mlp=MLPOptions(iteration=method))
        assert out.period == pytest.approx(ref.period)
        assert out.departures == pytest.approx(ref.departures)

    def test_slide_terminates_quickly(self, ex1):
        # The paper: "the update process usually terminated in two to three
        # iterations".
        result = minimize_cycle_time(ex1, mlp=MLPOptions(iteration="jacobi"))
        assert result.slide_sweeps <= 5


class TestBackends:
    @pytest.mark.parametrize("backend", available_backends())
    def test_backends_agree_on_period(self, ex1, backend):
        result = minimize_cycle_time(ex1, mlp=MLPOptions(backend=backend))
        assert result.period == pytest.approx(110.0)


class TestCompactPass:
    def test_compact_keeps_optimum(self, ex1):
        a = minimize_cycle_time(ex1, mlp=MLPOptions(compact=True))
        b = minimize_cycle_time(ex1, mlp=MLPOptions(compact=False))
        assert a.period == pytest.approx(b.period)

    def test_compact_starts_first_phase_at_zero(self, ex1):
        result = minimize_cycle_time(ex1)
        assert result.schedule["phi1"].start == pytest.approx(0.0)

    def test_compact_schedule_verifies(self, ex2):
        result = minimize_cycle_time(ex2)
        assert analyze(ex2, result.schedule).feasible


class TestRandomCircuits:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(3, 10),
        extra=st.integers(0, 6),
        k=st.integers(2, 4),
        seed=st.integers(0, 10_000),
    )
    def test_mlp_result_verifies_everywhere(self, n, extra, k, seed):
        g = random_multiloop_circuit(n, n_extra_arcs=extra, k=k, seed=seed)
        result = minimize_cycle_time(g)
        report = analyze(g, result.schedule)
        assert report.feasible
        sim = simulate(g, result.schedule)
        assert sim.feasible

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(3, 8),
        seed=st.integers(0, 10_000),
        shrink=st.floats(0.5, 0.99),
    )
    def test_below_optimum_is_infeasible(self, n, seed, shrink):
        g = random_multiloop_circuit(n, n_extra_arcs=2, k=2, seed=seed)
        result = minimize_cycle_time(g)
        with pytest.raises(InfeasibleError):
            minimize_cycle_time(
                g, ConstraintOptions(max_period=result.period * shrink - 1e-6)
            )
