"""Unit tests for the baseline algorithms and their orderings."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.binary_search import binary_search_minimize
from repro.baselines.borrowing import borrowing_minimize
from repro.baselines.edge_triggered import as_edge_triggered, edge_triggered_minimize
from repro.baselines.nrip import nrip_minimize
from repro.circuit.generate import random_multiloop_circuit
from repro.clocking.library import symmetric_clock
from repro.clocking.schedule import ClockSchedule
from repro.core.analysis import analyze
from repro.core.mlp import minimize_cycle_time
from repro.designs import example1
from repro.errors import AnalysisError, CircuitError


class TestEdgeTriggered:
    def test_conversion_preserves_parameters(self, ex1):
        g = as_edge_triggered(ex1)
        assert len(g.flipflops) == 4
        assert g["L1"].setup == 10.0 and g["L1"].delay == 10.0

    def test_conversion_keeps_existing_ffs(self, gaas):
        g = as_edge_triggered(gaas)
        assert len(g.flipflops) == 18

    def test_example1_edge_period(self, ex1):
        # Chained stage delays with no transparency:
        # s2-s1 >= max(40, 80) = 80 and Tc >= (s2-s1) + max(40, 100).
        assert edge_triggered_minimize(ex1).period == pytest.approx(180.0)

    def test_upper_bounds_mlp(self, ex1):
        assert edge_triggered_minimize(ex1).period >= minimize_cycle_time(ex1).period

    def test_tagged(self, ex1):
        assert edge_triggered_minimize(ex1).extra["baseline"] == "edge-triggered"


class TestNRIP:
    def test_default_initial_phase_is_last(self, ex1):
        assert nrip_minimize(ex1).extra["initial_phase"] == "phi2"

    def test_explicit_initial_phase(self, ex1):
        result = nrip_minimize(ex1, initial_phase="phi1")
        assert result.extra["initial_phase"] == "phi1"
        assert result.period >= minimize_cycle_time(ex1).period - 1e-9

    def test_unknown_initial_phase_rejected(self, ex1):
        with pytest.raises(CircuitError):
            nrip_minimize(ex1, initial_phase="zz")

    def test_phase1_restriction_formula(self):
        # With null retardation imposed on phi1 instead, example 1 obeys
        # Tc = max(60, 80 + Delta_41) (no borrowing across phi1).
        for d41 in (0.0, 40.0, 80.0):
            got = nrip_minimize(example1(d41), initial_phase="phi1").period
            assert got == pytest.approx(max(60.0, 80.0 + d41))


class TestBorrowing:
    def test_monotone_in_iterations(self, ex1):
        periods = [
            borrowing_minimize(ex1, iterations=i).period for i in (0, 1, 2, 4, 16)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(periods, periods[1:]))

    def test_zero_iterations_matches_start(self, ex1):
        r = borrowing_minimize(ex1, iterations=0)
        assert r.iterations_used == 0
        assert r.period >= minimize_cycle_time(ex1).period

    def test_converged_between_mlp_and_edge(self, ex1):
        r = borrowing_minimize(ex1, iterations=40)
        assert minimize_cycle_time(ex1).period <= r.period + 1e-6
        assert r.period <= r.edge_triggered_period + 1e-9

    def test_improvement_metric(self, ex1):
        r = borrowing_minimize(ex1, iterations=40)
        assert 0.0 <= r.improvement < 1.0

    def test_history_recorded(self, ex1):
        r = borrowing_minimize(ex1, iterations=3)
        assert len(r.history) == r.iterations_used

    def test_result_schedule_feasible(self, ex1):
        r = borrowing_minimize(ex1, iterations=10)
        assert analyze(ex1, r.schedule).feasible

    def test_negative_iterations_rejected(self, ex1):
        with pytest.raises(AnalysisError):
            borrowing_minimize(ex1, iterations=-1)


class TestBinarySearch:
    def test_example1_symmetric_shape(self, ex1):
        # The symmetric two-phase shape cannot reach the reshaped optimum.
        period = binary_search_minimize(ex1, tol=1e-4)
        assert period == pytest.approx(136.0, abs=1e-2)
        assert period >= minimize_cycle_time(ex1).period

    def test_result_boundary_is_tight(self, ex1):
        period = binary_search_minimize(ex1, tol=1e-6)
        ref = symmetric_clock(2, 1.0)
        phases = [
            p.renamed(n) for p, n in zip(ref.phases, ex1.phase_names)
        ]
        template = ClockSchedule(1.0, phases)
        assert analyze(ex1, template.scaled(period)).feasible
        assert not analyze(ex1, template.scaled(period - 1e-3)).feasible

    def test_mismatched_reference_rejected(self, ex1):
        bad = symmetric_clock(3, 1.0)
        with pytest.raises(AnalysisError):
            binary_search_minimize(ex1, reference=bad)


class TestOrderingProperty:
    """MLP <= every baseline, on random circuits."""

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(4, 9),
        extra=st.integers(0, 5),
        seed=st.integers(0, 9999),
    )
    def test_mlp_is_never_beaten(self, n, extra, seed):
        g = random_multiloop_circuit(n, n_extra_arcs=extra, k=2, seed=seed)
        opt = minimize_cycle_time(g).period
        assert nrip_minimize(g).period >= opt - 1e-6
        assert edge_triggered_minimize(g).period >= opt - 1e-6
        assert borrowing_minimize(g, iterations=25).period >= opt - 1e-6
        assert binary_search_minimize(g) >= opt - 1e-6
