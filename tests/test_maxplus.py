"""Unit and property tests for the max-plus fixpoint engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AnalysisError, DivergentTimingError
from repro.maxplus.cycles import find_positive_cycle, max_cycle_weight
from repro.maxplus.fixpoint import least_fixpoint, slide
from repro.maxplus.system import MaxPlusSystem, WeightedArc


def chain_system():
    """a -> b -> c with positive weights: a simple longest-path problem."""
    return MaxPlusSystem(
        nodes=["a", "b", "c"],
        arcs=[WeightedArc("a", "b", 3.0), WeightedArc("b", "c", 2.0)],
        floors={"a": 1.0},
    )


def negative_loop_system(weight=-1.0):
    return MaxPlusSystem(
        nodes=["a", "b"],
        arcs=[WeightedArc("a", "b", 5.0), WeightedArc("b", "a", weight - 5.0)],
    )


class TestSystem:
    def test_unknown_arc_node_rejected(self):
        with pytest.raises(AnalysisError):
            MaxPlusSystem(nodes=["a"], arcs=[WeightedArc("a", "zzz", 1.0)])

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(AnalysisError):
            MaxPlusSystem(nodes=["a", "a"], arcs=[])

    def test_unknown_floor_rejected(self):
        with pytest.raises(AnalysisError):
            MaxPlusSystem(nodes=["a"], arcs=[], floors={"b": 1.0})

    def test_apply(self):
        s = chain_system()
        out = s.apply({"a": 1.0, "b": 0.0, "c": 0.0})
        assert out == {"a": 1.0, "b": 4.0, "c": 2.0}

    def test_residual_zero_at_fixpoint(self):
        s = chain_system()
        fix = least_fixpoint(s).values
        assert s.residual(fix) == pytest.approx(0.0)

    def test_prefixed_point(self):
        s = chain_system()
        assert s.is_prefixed_point({"a": 10.0, "b": 20.0, "c": 30.0})
        assert not s.is_prefixed_point({"a": 1.0, "b": 0.0, "c": 0.0})


class TestLeastFixpoint:
    @pytest.mark.parametrize("method", ["jacobi", "gauss-seidel", "event"])
    def test_chain(self, method):
        fix = least_fixpoint(chain_system(), method=method)
        assert fix.values == {"a": 1.0, "b": 4.0, "c": 6.0}

    @pytest.mark.parametrize("method", ["jacobi", "gauss-seidel", "event"])
    def test_negative_cycle_converges(self, method):
        fix = least_fixpoint(negative_loop_system(-1.0), method=method)
        assert fix.values["a"] == pytest.approx(0.0)
        assert fix.values["b"] == pytest.approx(5.0)

    @pytest.mark.parametrize("method", ["jacobi", "gauss-seidel", "event"])
    def test_positive_cycle_diverges(self, method):
        with pytest.raises(DivergentTimingError):
            least_fixpoint(negative_loop_system(+1.0), method=method)

    def test_zero_cycle_converges(self):
        fix = least_fixpoint(negative_loop_system(0.0))
        assert fix.values["b"] == pytest.approx(5.0)

    def test_frozen_node_not_updated(self):
        s = MaxPlusSystem(
            nodes=["ff", "l"],
            arcs=[WeightedArc("l", "ff", 100.0), WeightedArc("ff", "l", 1.0)],
            floors={"ff": 2.0},
            frozen={"ff"},
        )
        fix = least_fixpoint(s)
        assert fix.values["ff"] == 2.0
        assert fix.values["l"] == 3.0

    def test_unknown_method(self):
        with pytest.raises(AnalysisError):
            least_fixpoint(chain_system(), method="voodoo")


class TestSlide:
    @pytest.mark.parametrize("method", ["jacobi", "gauss-seidel", "event"])
    def test_slide_reaches_fixpoint_from_above(self, method):
        s = chain_system()
        start = {"a": 50.0, "b": 50.0, "c": 50.0}
        out = slide(s, start, method=method)
        assert s.residual(out.values) == pytest.approx(0.0, abs=1e-9)
        # The slide never increases values.
        for node in s.nodes:
            assert out.values[node] <= start[node] + 1e-9

    def test_slide_matches_least_fixpoint_on_chains(self):
        s = chain_system()
        slid = slide(s, {"a": 9.0, "b": 9.0, "c": 9.0})
        least = least_fixpoint(s)
        assert slid.values == pytest.approx(least.values)

    def test_slow_geometric_slide_falls_back(self):
        # A negative self-ish cycle makes the slide decrease by 0.5/sweep;
        # the cap triggers the exact least-fixpoint fallback.
        s = MaxPlusSystem(
            nodes=["a", "b"],
            arcs=[WeightedArc("a", "b", 10.0), WeightedArc("b", "a", -10.5)],
        )
        out = slide(s, {"a": 1000.0, "b": 1010.0}, method="jacobi", max_sweeps=5)
        assert out.values["a"] == pytest.approx(0.0)
        assert out.values["b"] == pytest.approx(10.0)

    def test_frozen_nodes_pinned(self):
        s = MaxPlusSystem(
            nodes=["ff", "l"],
            arcs=[WeightedArc("ff", "l", 1.0)],
            floors={"ff": 4.0},
            frozen={"ff"},
        )
        out = slide(s, {"ff": 99.0, "l": 99.0})
        assert out.values["ff"] == 4.0
        assert out.values["l"] == 5.0


class TestCycles:
    def test_max_cycle_weight(self):
        assert max_cycle_weight(negative_loop_system(-2.0)) == pytest.approx(-2.0)
        assert max_cycle_weight(chain_system()) == float("-inf")

    def test_find_positive_cycle(self):
        cycle = find_positive_cycle(negative_loop_system(1.0))
        assert cycle is not None
        assert set(cycle) == {"a", "b"}

    def test_no_positive_cycle(self):
        assert find_positive_cycle(negative_loop_system(-1.0)) is None
        assert find_positive_cycle(chain_system()) is None

    def test_frozen_breaks_cycle(self):
        s = MaxPlusSystem(
            nodes=["a", "b"],
            arcs=[WeightedArc("a", "b", 5.0), WeightedArc("b", "a", 5.0)],
            frozen={"a"},
        )
        assert find_positive_cycle(s) is None
        least_fixpoint(s)  # converges


@st.composite
def random_system(draw):
    n = draw(st.integers(2, 6))
    nodes = [f"n{i}" for i in range(n)]
    arcs = []
    n_arcs = draw(st.integers(1, 10))
    for _ in range(n_arcs):
        a = draw(st.sampled_from(nodes))
        b = draw(st.sampled_from(nodes))
        w = draw(st.integers(-20, 6))
        arcs.append(WeightedArc(a, b, float(w)))
    return MaxPlusSystem(nodes=nodes, arcs=arcs)


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(random_system())
    def test_methods_agree_or_all_diverge(self, system):
        outcomes = {}
        for method in ("jacobi", "gauss-seidel", "event"):
            try:
                outcomes[method] = least_fixpoint(system, method=method).values
            except DivergentTimingError:
                outcomes[method] = "diverged"
        ref = outcomes["jacobi"]
        for method, value in outcomes.items():
            if ref == "diverged":
                assert value == "diverged"
            else:
                assert value != "diverged"
                assert value == pytest.approx(ref, abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(random_system())
    def test_divergence_iff_positive_cycle(self, system):
        has_cycle = find_positive_cycle(system) is not None
        try:
            least_fixpoint(system)
            diverged = False
        except DivergentTimingError:
            diverged = True
        assert diverged == has_cycle

    @settings(max_examples=40, deadline=None)
    @given(random_system(), st.integers(0, 100))
    def test_slide_from_pre_fixed_point_reaches_fixpoint(self, system, bump):
        if find_positive_cycle(system) is not None:
            return
        base = least_fixpoint(system).values
        start = {k: v + bump for k, v in base.items()}
        out = slide(system, start)
        assert system.residual(out.values) <= 1e-6
