"""Tests for hold-fix padding computation and application."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.builder import CircuitBuilder
from repro.clocking.library import two_phase_clock
from repro.core.analysis import analyze
from repro.core.shortpath import apply_padding, check_hold, required_padding


def racing_circuit(min_delay=0.0, hold=30.0):
    """A two-latch loop with an aggressive hold requirement."""
    b = CircuitBuilder(["phi1", "phi2"])
    b.latch("A", phase="phi1", setup=2, delay=3, hold=hold)
    b.latch("B", phase="phi2", setup=2, delay=3, hold=hold)
    b.path("A", "B", 40, min_delay=min_delay)
    b.path("B", "A", 40, min_delay=min_delay)
    return b.build()


class TestRequiredPadding:
    def test_clean_circuit_needs_none(self):
        g = racing_circuit(min_delay=10.0, hold=1.0)
        assert required_padding(g, two_phase_clock(100.0)) == {}

    def test_violating_circuit_gets_positive_padding(self):
        g = racing_circuit(min_delay=0.0, hold=30.0)
        schedule = two_phase_clock(100.0)
        assert not check_hold(g, schedule).feasible
        padding = required_padding(g, schedule)
        assert padding
        assert all(v > 0 for v in padding.values())

    def test_padding_repairs_hold(self):
        g = racing_circuit(min_delay=0.0, hold=30.0)
        schedule = two_phase_clock(100.0)
        padded = apply_padding(g, required_padding(g, schedule))
        assert check_hold(padded, schedule).feasible

    def test_padding_is_minimal_on_the_binding_arc(self):
        g = racing_circuit(min_delay=0.0, hold=30.0)
        schedule = two_phase_clock(100.0)
        padding = required_padding(g, schedule)
        # Shaving any arc's padding below requirement re-breaks hold.
        (key, value) = max(padding.items(), key=lambda kv: kv[1])
        shaved = dict(padding)
        shaved[key] = value - 1.0
        assert not check_hold(apply_padding(g, shaved), schedule).feasible

    def test_apply_padding_preserves_structure(self):
        g = racing_circuit()
        padded = apply_padding(g, {("A", "B"): 5.0})
        assert padded.arc("A", "B").delay == 45.0
        assert padded.arc("A", "B").min_delay == 5.0
        assert padded.arc("B", "A").delay == 40.0
        assert padded.l == g.l

    def test_setup_must_be_rechecked_after_padding(self):
        # Padding slows the max path too: the caller re-verifies setup.
        g = racing_circuit(min_delay=0.0, hold=30.0)
        schedule = two_phase_clock(100.0)
        padded = apply_padding(g, required_padding(g, schedule))
        report = analyze(padded, schedule)
        # Whatever the verdict, the analyzer must produce a verdict --
        # and here the generous 100 ns cycle still absorbs the padding.
        assert report.feasible or report.setup_violations

    @settings(max_examples=20, deadline=None)
    @given(
        hold=st.floats(0.0, 40.0),
        min_delay=st.floats(0.0, 10.0),
        period=st.floats(80.0, 200.0),
    )
    def test_padding_always_sufficient(self, hold, min_delay, period):
        g = racing_circuit(min_delay=min_delay, hold=hold)
        schedule = two_phase_clock(period)
        padding = required_padding(g, schedule)
        padded = apply_padding(g, padding)
        assert check_hold(padded, schedule).feasible
